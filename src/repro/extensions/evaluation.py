"""Study harnesses for the extension mechanisms.

Two studies are provided:

``disjoint_path_study``
    Builds a static Kademlia testbed, compromises a fraction of the nodes
    with the eclipse adversary
    (:class:`~repro.extensions.adversarial.MaliciousKademliaProtocol`) and
    measures how often lookups reach an honest node close to the target as
    the number of node-disjoint lookup paths grows.  This closes the loop
    between the connectivity the paper measures and the lookup resilience
    S/Kademlia [1] derives from it.

``hardening_study``
    Runs one experiment scenario once per :class:`HardeningConfig` and
    reports the connectivity statistics side by side, so the rotation and
    supplemental-links mechanisms can be compared against plain Kademlia
    (and against the "use message loss as a feature" non-solution).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.extensions.adversarial import MaliciousKademliaProtocol
from repro.extensions.disjoint_lookup import disjoint_find_node
from repro.extensions.hardening import HardeningConfig
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import Scenario
from repro.kademlia.config import KademliaConfig
from repro.kademlia.node_id import generate_node_id, sort_by_distance
from repro.kademlia.protocol import KademliaProtocol
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.transport import Transport


# ----------------------------------------------------------------------
# Static testbed
# ----------------------------------------------------------------------
@dataclass
class StaticTestbed:
    """A fully joined Kademlia network outside the event-driven simulator.

    The testbed trades the simulator's notion of time for speed: joins and
    seeding lookups all happen "instantly", which is sufficient for studies
    that only depend on the final routing-table state.
    """

    network: Network
    transport: Transport
    protocols: Dict[int, KademliaProtocol]
    config: KademliaConfig
    compromised: List[int]

    @property
    def honest_ids(self) -> List[int]:
        """Identifiers of the nodes that are not compromised."""
        compromised = set(self.compromised)
        return [node_id for node_id in self.protocols if node_id not in compromised]

    def closest_honest(self, target_id: int, count: int) -> List[int]:
        """The ``count`` honest nodes closest to ``target_id`` (ground truth)."""
        return sort_by_distance(self.honest_ids, target_id)[:count]


def build_static_testbed(
    node_count: int,
    config: Optional[KademliaConfig] = None,
    compromised_count: int = 0,
    seed: int = 0,
    seeding_lookups_per_node: int = 2,
) -> StaticTestbed:
    """Build a joined network in which ``compromised_count`` nodes are malicious.

    The network is built while every node still behaves honestly (the
    adversary only starts poisoning responses once activated below), so the
    routing tables reflect a normally bootstrapped network that an attacker
    subsequently compromises — the paper's system model.
    """
    if node_count <= 1:
        raise ValueError(f"node_count must be at least 2, got {node_count}")
    if not 0 <= compromised_count < node_count:
        raise ValueError(
            "compromised_count must be non-negative and smaller than node_count"
        )
    config = config or KademliaConfig(bit_length=32, bucket_size=8, alpha=3,
                                      staleness_limit=1)
    rng = random.Random(seed)
    network = Network()
    transport = Transport(network, loss_probability=0.0, rng=random.Random(seed + 1))

    node_ids: List[int] = []
    used: set = set()
    for _ in range(node_count):
        node_id = generate_node_id(config.bit_length, rng, exclude=used)
        used.add(node_id)
        node_ids.append(node_id)
    compromised = rng.sample(node_ids, compromised_count) if compromised_count else []
    compromised_set = set(compromised)

    protocols: Dict[int, KademliaProtocol] = {}
    for node_id in node_ids:
        if node_id in compromised_set:
            protocol: KademliaProtocol = MaliciousKademliaProtocol(
                node_id, config, accomplices=compromised_set
            )
            protocol.active = False  # behave honestly while the network forms
        else:
            protocol = KademliaProtocol(node_id, config)
        node = SimNode(node_id)
        protocol.bind(transport, lambda: 0.0)
        node.register_protocol(KademliaProtocol.protocol_name, protocol)
        network.add_node(node)
        protocols[node_id] = protocol

    # Joins: every node bootstraps from a uniformly random earlier node.
    for index, node_id in enumerate(node_ids):
        bootstrap = rng.choice(node_ids[:index]) if index else None
        protocols[node_id].join(bootstrap)
    # Seeding traffic so routing tables are representative of a live network.
    for node_id in node_ids:
        for _ in range(seeding_lookups_per_node):
            protocols[node_id].lookup(rng.randrange(config.id_space_size))

    return StaticTestbed(
        network=network,
        transport=transport,
        protocols=protocols,
        config=config,
        compromised=list(compromised),
    )


# ----------------------------------------------------------------------
# Disjoint-path lookup study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DisjointPathStudyRow:
    """Success statistics for one number of disjoint paths."""

    path_count: int
    lookups: int
    owner_hits: int
    replica_hits: int
    mean_queried: float

    @property
    def owner_hit_rate(self) -> float:
        """Fraction of lookups that reached the honest node closest to the target."""
        return self.owner_hits / self.lookups if self.lookups else 0.0

    @property
    def replica_hit_rate(self) -> float:
        """Fraction of lookups that reached any of the ``k`` closest honest nodes."""
        return self.replica_hits / self.lookups if self.lookups else 0.0

    @property
    def success_rate(self) -> float:
        """Alias for :attr:`replica_hit_rate` (a store/retrieve would succeed)."""
        return self.replica_hit_rate


#: Default protocol parameters of the disjoint-path study.  The network must
#: be much larger than what one routing table can hold, otherwise initiators
#: already know the target region and poisoned referrals are irrelevant.
DISJOINT_STUDY_CONFIG = KademliaConfig(
    bit_length=32, bucket_size=4, alpha=2, staleness_limit=1
)


def disjoint_path_study(
    node_count: int = 300,
    compromised_fraction: float = 0.25,
    path_counts: Sequence[int] = (1, 2, 3, 4),
    lookups: int = 40,
    seed: int = 0,
    config: Optional[KademliaConfig] = None,
) -> List[DisjointPathStudyRow]:
    """Measure lookup success against the eclipse adversary vs. path count.

    Two success criteria are reported per path count: reaching the single
    honest node closest to the target ("owner") and reaching any of the
    ``k`` closest honest nodes ("replica" — the condition under which a
    store or retrieval reaches a legitimate replica holder).
    """
    if not 0.0 <= compromised_fraction < 1.0:
        raise ValueError(
            f"compromised_fraction must be in [0, 1), got {compromised_fraction}"
        )
    config = config or DISJOINT_STUDY_CONFIG
    compromised_count = int(round(node_count * compromised_fraction))
    testbed = build_static_testbed(
        node_count,
        config=config,
        compromised_count=compromised_count,
        seed=seed,
        seeding_lookups_per_node=1,
    )
    # Activate the adversary only after the network has formed.
    for node_id in testbed.compromised:
        testbed.protocols[node_id].active = True

    rng = random.Random(seed + 7)
    honest = testbed.honest_ids
    rows: List[DisjointPathStudyRow] = []
    targets = [rng.randrange(testbed.config.id_space_size) for _ in range(lookups)]
    initiators = [rng.choice(honest) for _ in range(lookups)]

    for path_count in path_counts:
        owner_hits = 0
        replica_hits = 0
        queried_total = 0
        for target, initiator in zip(targets, initiators):
            result = disjoint_find_node(
                testbed.protocols[initiator], target, path_count=path_count
            )
            queried_total += result.queried
            if result.reached(testbed.closest_honest(target, 1)):
                owner_hits += 1
            if result.reached(testbed.closest_honest(target, config.bucket_size)):
                replica_hits += 1
        rows.append(
            DisjointPathStudyRow(
                path_count=path_count,
                lookups=lookups,
                owner_hits=owner_hits,
                replica_hits=replica_hits,
                mean_queried=queried_total / lookups if lookups else 0.0,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Hardening study
# ----------------------------------------------------------------------
def hardening_study(
    scenario: Scenario,
    configs: Mapping[str, HardeningConfig],
    profile: str = "tiny",
    seed: int = 42,
) -> Dict[str, ExperimentResult]:
    """Run ``scenario`` once per hardening configuration and collect results."""
    runner = ExperimentRunner(profile=profile, seed=seed)
    return {
        name: runner.run(scenario, hardening=config)
        for name, config in configs.items()
    }


def hardening_summary(results: Mapping[str, ExperimentResult]) -> List[Dict[str, float]]:
    """Flatten a hardening study into report rows (one per configuration)."""
    rows = []
    for name, result in results.items():
        rows.append(
            {
                "configuration": name,
                "stabilized_min": result.stabilized_minimum(),
                "churn_mean_min": round(result.churn_mean_minimum(), 2),
                "churn_mean_avg": round(result.churn_mean_average(), 2),
                "final_network_size": result.final_network_size(),
            }
        )
    return rows
