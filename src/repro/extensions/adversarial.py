"""An eclipse-style adversarial node for lookup-resilience studies.

The paper's system model (Section 3) assumes a compromised node can "fully
impersonate the node towards the rest of the system", disseminate
information as a legitimate participant and deny requests.  The strongest
routing attack consistent with that model is the classic eclipse behaviour
studied by S/Kademlia (the paper's reference [1]): a compromised node keeps
answering lookups, but only ever refers the requester to *other compromised
nodes*, trying to trap the lookup inside the adversary's subgraph.

:class:`MaliciousKademliaProtocol` implements that behaviour on top of the
normal protocol so the disjoint-path lookup study
(:mod:`repro.extensions.evaluation`) can measure how many node-disjoint
paths are needed before lookups reliably escape the adversary — the
operational pay-off of the connectivity the paper measures.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.kademlia.config import KademliaConfig
from repro.kademlia.messages import (
    FindNodeRequest,
    FindNodeResponse,
    FindValueRequest,
    FindValueResponse,
    StoreRequest,
    StoreResponse,
)
from repro.kademlia.node_id import sort_by_distance
from repro.kademlia.protocol import KademliaProtocol


class MaliciousKademliaProtocol(KademliaProtocol):
    """A compromised node that answers lookups with accomplices only."""

    def __init__(
        self,
        node_id: int,
        config: KademliaConfig,
        accomplices: Optional[Iterable[int]] = None,
    ) -> None:
        super().__init__(node_id, config)
        self._accomplices: Set[int] = set(accomplices or ())
        self._accomplices.discard(node_id)
        #: While False the node behaves honestly — studies use this to let
        #: the network bootstrap normally before the compromise happens.
        self.active = True
        self.poisoned_responses = 0
        self.dropped_stores = 0

    # ------------------------------------------------------------------
    def set_accomplices(self, accomplices: Iterable[int]) -> None:
        """Replace the set of fellow compromised nodes to refer victims to."""
        self._accomplices = {a for a in accomplices if a != self.node_id}

    @property
    def accomplices(self) -> Set[int]:
        """The compromised nodes this node advertises instead of honest ones."""
        return set(self._accomplices)

    # ------------------------------------------------------------------
    def handle_request(self, sender_id: int, request):
        """Answer like a legitimate node, but poison every contact list."""
        if not self.active:
            return super().handle_request(sender_id, request)
        if isinstance(request, FindNodeRequest):
            self.note_contact(sender_id)
            self.poisoned_responses += 1
            return FindNodeResponse(
                responder_id=self.node_id,
                contacts=self._poisoned_contacts(request.target_id),
            )
        if isinstance(request, FindValueRequest):
            self.note_contact(sender_id)
            self.poisoned_responses += 1
            return FindValueResponse(
                responder_id=self.node_id,
                value=None,
                contacts=self._poisoned_contacts(request.key_id),
            )
        if isinstance(request, StoreRequest):
            # Accept the request so the victim believes the store succeeded,
            # but silently discard the data (Section 3: "hinder or prevent
            # information exchange").
            self.note_contact(sender_id)
            self.dropped_stores += 1
            return StoreResponse(responder_id=self.node_id, stored=True)
        return super().handle_request(sender_id, request)

    def _poisoned_contacts(self, target_id: int):
        closest = sort_by_distance(self._accomplices, target_id)
        return tuple(closest[: self.config.bucket_size])
