"""Contact rotation — loss-like reorganisation without message loss.

The paper's central loss finding (Figures 12–14) is that failed round-trips
evict contacts, the freed bucket slots are re-filled by nodes that were
previously shut out, and the minimum connectivity rises well above ``k``.
The obvious downside is that real message loss also hurts lookup latency
and result quality (paper Section 5.8.1).

:class:`ContactRotationPolicy` produces the same bucket turnover
deliberately: every ``interval_minutes`` the policy walks a node's buckets
and, for each *full* bucket, evicts the least-recently-seen contact with
probability ``rotation_fraction`` and immediately looks up a random
identifier in that bucket's range so the freed slot is re-filled from the
current network population.  No message is ever dropped, so lookups keep
their loss-free latency and quality.

``rotation_fraction`` is the connectivity control knob the paper's
conclusion asks for: it tunes how quickly routing tables reorganise,
independently of the bucket size ``k``.
"""

from __future__ import annotations

import random
from typing import Protocol as TypingProtocol

from repro.kademlia.node_id import random_id_in_bucket
from repro.kademlia.protocol import KademliaProtocol


class MaintenancePolicy(TypingProtocol):
    """Periodic per-node maintenance hook run by the simulation.

    Implementations are attached to :class:`KademliaSimulation` via a
    :class:`~repro.extensions.hardening.HardeningConfig`; the simulation
    invokes :meth:`apply` for every alive node once per
    ``interval_minutes``.
    """

    #: Simulated minutes between two applications on the same node.
    interval_minutes: float

    def apply(self, protocol: KademliaProtocol, rng: random.Random) -> int:
        """Run the maintenance step on one node; returns an action count."""
        ...  # pragma: no cover - protocol definition


class ContactRotationPolicy:
    """Rotate the oldest contact out of full buckets at a configurable rate.

    Parameters
    ----------
    rotation_fraction:
        Probability that a full bucket rotates one contact per application.
        ``0.0`` disables rotation, ``1.0`` rotates every full bucket every
        time.
    interval_minutes:
        How often the policy runs per node.
    refill_lookup:
        If True (default), every rotation is followed by a lookup for a
        random identifier in the rotated bucket's range, so the freed slot
        is offered to the current population immediately instead of waiting
        for background traffic.
    """

    def __init__(
        self,
        rotation_fraction: float = 0.25,
        interval_minutes: float = 10.0,
        refill_lookup: bool = True,
    ) -> None:
        if not 0.0 <= rotation_fraction <= 1.0:
            raise ValueError(
                f"rotation_fraction must be in [0, 1], got {rotation_fraction}"
            )
        if interval_minutes <= 0:
            raise ValueError(
                f"interval_minutes must be positive, got {interval_minutes}"
            )
        self.rotation_fraction = rotation_fraction
        self.interval_minutes = interval_minutes
        self.refill_lookup = refill_lookup
        self.rotations_performed = 0

    # ------------------------------------------------------------------
    def apply(self, protocol: KademliaProtocol, rng: random.Random) -> int:
        """Rotate contacts in ``protocol``'s full buckets; returns the count."""
        table = protocol.routing_table
        config = protocol.config
        rotated = 0
        # Snapshot the bucket list first: refill lookups triggered below may
        # create new (empty) buckets while we iterate.
        for bucket in list(table.buckets()):
            if not bucket.is_full:
                continue
            if self.rotation_fraction < 1.0 and rng.random() >= self.rotation_fraction:
                continue
            oldest = bucket.oldest()
            if oldest is None:
                continue
            table.remove_contact(oldest.node_id)
            rotated += 1
            if self.refill_lookup:
                target = random_id_in_bucket(
                    table.owner_id, bucket.index, config.bit_length, rng
                )
                protocol.lookup(target)
        self.rotations_performed += rotated
        return rotated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ContactRotationPolicy(rotation_fraction={self.rotation_fraction}, "
            f"interval_minutes={self.interval_minutes})"
        )
