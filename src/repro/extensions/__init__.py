"""Extensions beyond the paper's evaluation.

The paper's conclusion sketches three directions for future work:

* mechanisms that provide the connectivity improvements observed under
  message loss *without* the negative effects of loss itself;
* an extension of Kademlia that improves the minimum connectivity in all
  scenarios;
* a parameter that controls the connectivity independently of the bucket
  size ``k``.

This package implements concrete, simulatable versions of those ideas plus
the node-disjoint lookup procedure of S/Kademlia (the paper's reference
[1]), which *consumes* the connectivity this library measures:

``rotation``
    :class:`ContactRotationPolicy` — periodic eviction of the
    least-recently-seen contact from full buckets, reproducing the
    "freed-up entries" effect of churn and loss without losing messages.
``supplemental``
    :class:`SupplementalLinksProtocol` — keeps up to ``extra_links``
    contacts that the bucket policy rejected, giving a connectivity control
    knob that is independent of ``k``.
``hardening``
    :class:`HardeningConfig` — bundles the mechanisms above so the
    experiment runner can A/B them against the unmodified protocol.
``disjoint_lookup``
    :func:`disjoint_find_node` — iterative lookups over ``d`` node-disjoint
    paths.
``adversarial``
    :class:`MaliciousKademliaProtocol` — an eclipse-style adversary that
    answers lookups with other compromised nodes only.
``evaluation``
    Study helpers used by the examples and ablation benchmarks.
"""

from repro.extensions.adversarial import MaliciousKademliaProtocol
from repro.extensions.disjoint_lookup import DisjointPathResult, disjoint_find_node
from repro.extensions.hardening import HardeningConfig
from repro.extensions.rotation import ContactRotationPolicy, MaintenancePolicy
from repro.extensions.supplemental import (
    SupplementalLinksProtocol,
    SupplementalPrunePolicy,
)

__all__ = [
    "ContactRotationPolicy",
    "DisjointPathResult",
    "HardeningConfig",
    "MaintenancePolicy",
    "MaliciousKademliaProtocol",
    "SupplementalLinksProtocol",
    "SupplementalPrunePolicy",
    "disjoint_find_node",
]
