"""Supplemental links — a connectivity knob independent of the bucket size.

The minimum connectivity of a plain Kademlia network is tied to ``k``
because a node's in-degree is limited by how many *other* nodes have a free
bucket slot for it; once the relevant buckets are full, latecomers are shut
out (paper Sections 5.5 and 6).  :class:`SupplementalLinksProtocol` keeps
up to ``extra_links`` of the contacts that the normal bucket policy
*rejected* in a bounded, least-recently-refreshed overflow list.  Those
supplemental links are real routing-table entries for every purpose that
matters to the paper's measurements: they are returned by FIND_NODE, they
appear in routing-table snapshots (and therefore in the connectivity
graph), and they are subject to the same staleness eviction as bucket
contacts.

``extra_links`` is therefore a direct connectivity control parameter that
leaves the Kademlia bucket structure — and with it the lookup complexity —
untouched, which is exactly the knob the paper's conclusion calls for.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional

from repro.kademlia.config import KademliaConfig
from repro.kademlia.node_id import sort_by_distance
from repro.kademlia.protocol import KademliaProtocol


class SupplementalLinksProtocol(KademliaProtocol):
    """Kademlia protocol with a bounded overflow list of rejected contacts."""

    protocol_name = KademliaProtocol.protocol_name

    def __init__(
        self, node_id: int, config: KademliaConfig, extra_links: int = 8
    ) -> None:
        if extra_links < 0:
            raise ValueError(f"extra_links must be non-negative, got {extra_links}")
        super().__init__(node_id, config)
        self.extra_links = extra_links
        #: contact id -> last time the contact was seen or refreshed.
        self._supplemental: Dict[int, float] = {}
        #: contact id -> consecutive failures observed via the overflow list.
        self._supplemental_failures: Dict[int, int] = {}
        #: bumped on every overflow-list mutation; part of the snapshot
        #: version stamp so the incremental graph maintainer rebuilds this
        #: node's row when supplemental membership changes.
        self._supplemental_version = 0

    # ------------------------------------------------------------------
    # Overflow bookkeeping
    # ------------------------------------------------------------------
    def supplemental_ids(self) -> List[int]:
        """Return the current supplemental contact ids (oldest first)."""
        return list(self._supplemental)

    def note_contact(self, node_id: int, time=None) -> bool:
        """Insert ``node_id`` into the table, falling back to the overflow list.

        The bucket policy runs first (it is authoritative); only contacts it
        rejects — typically because their bucket is full of live contacts —
        are considered for the supplemental list.
        """
        if node_id == self.node_id:
            return False
        accepted = super().note_contact(node_id, time)
        if accepted:
            # A contact promoted into a bucket must not be double-counted.
            if self._supplemental.pop(node_id, None) is not None:
                self._supplemental_failures.pop(node_id, None)
                self._supplemental_version += 1
            return True
        if self.extra_links == 0:
            return False
        self._remember_supplemental(node_id)
        return True

    def _remember_supplemental(self, node_id: int) -> None:
        if node_id in self._supplemental:
            del self._supplemental[node_id]
        elif len(self._supplemental) >= self.extra_links:
            oldest = next(iter(self._supplemental))
            del self._supplemental[oldest]
            self._supplemental_failures.pop(oldest, None)
        self._supplemental[node_id] = self.now
        self._supplemental_failures[node_id] = 0
        self._supplemental_version += 1

    def record_supplemental_failure(self, node_id: int) -> bool:
        """Record a failed round-trip with a supplemental contact.

        Returns True when the contact crossed the staleness limit and was
        dropped from the overflow list.
        """
        if node_id not in self._supplemental:
            return False
        failures = self._supplemental_failures.get(node_id, 0) + 1
        self._supplemental_failures[node_id] = failures
        if failures >= self.config.staleness_limit:
            del self._supplemental[node_id]
            del self._supplemental_failures[node_id]
            self._supplemental_version += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Protocol overrides
    # ------------------------------------------------------------------
    def rpc(self, target_id: int, request):
        """Round-trip bookkeeping for bucket *and* supplemental contacts."""
        ok, response = super().rpc(target_id, request)
        if ok:
            if target_id in self._supplemental:
                self._supplemental[target_id] = self.now
                self._supplemental_failures[target_id] = 0
        else:
            self.record_supplemental_failure(target_id)
        return ok, response

    def closest_known(self, target_id: int, count: Optional[int] = None) -> List[int]:
        """Return the closest contacts drawn from buckets and overflow list."""
        count = self.config.bucket_size if count is None else count
        pool = set(self.routing_table.contact_ids())
        pool.update(self._supplemental)
        pool.discard(self.node_id)
        return sort_by_distance(pool, target_id)[:count]

    def handle_request(self, sender_id: int, request):
        """Serve requests with the union of bucket and supplemental contacts."""
        response = super().handle_request(sender_id, request)
        if getattr(response, "contacts", None) is not None and self._supplemental:
            target = getattr(request, "target_id", getattr(request, "key_id", sender_id))
            merged = self.closest_known(target, self.config.bucket_size)
            response = dataclasses.replace(response, contacts=tuple(merged))
        return response

    def routing_table_snapshot(self) -> List[int]:
        """Snapshot = bucket contacts plus the supplemental links."""
        contacts = super().routing_table_snapshot()
        merged = dict.fromkeys(contacts)
        merged.update(dict.fromkeys(self._supplemental))
        return list(merged)

    def snapshot_version(self):
        """Extend the stamp with the overflow list (it is part of snapshots)."""
        return (self.routing_table.membership_version, self._supplemental_version)


class SupplementalPrunePolicy:
    """Periodic maintenance for the overflow list.

    Each application pings the least-recently-refreshed supplemental
    contact; a successful ping refreshes it, a failed ping counts towards
    the staleness limit exactly like bucket contacts.  Nodes running the
    plain protocol are left untouched, so the policy can be attached
    unconditionally.
    """

    def __init__(self, interval_minutes: float = 10.0, pings_per_round: int = 1) -> None:
        if interval_minutes <= 0:
            raise ValueError(
                f"interval_minutes must be positive, got {interval_minutes}"
            )
        if pings_per_round <= 0:
            raise ValueError(
                f"pings_per_round must be positive, got {pings_per_round}"
            )
        self.interval_minutes = interval_minutes
        self.pings_per_round = pings_per_round
        self.pings_performed = 0

    def apply(self, protocol: KademliaProtocol, rng: random.Random) -> int:
        if not isinstance(protocol, SupplementalLinksProtocol):
            return 0
        candidates = protocol.supplemental_ids()[: self.pings_per_round]
        for node_id in candidates:
            protocol.ping(node_id)
            self.pings_performed += 1
        return len(candidates)
