"""Bundling of the connectivity-hardening mechanisms for the runner.

A :class:`HardeningConfig` describes which of the extension mechanisms a
simulation should run on top of the plain protocol:

* ``rotation_fraction`` / ``rotation_interval_minutes`` — contact rotation
  (:class:`~repro.extensions.rotation.ContactRotationPolicy`);
* ``supplemental_links`` / ``supplemental_interval_minutes`` — the bounded
  overflow list of rejected contacts
  (:class:`~repro.extensions.supplemental.SupplementalLinksProtocol`).

The config is consumed by :class:`~repro.experiments.runner.ExperimentRunner`
(``runner.run(scenario, hardening=config)``), which forwards the protocol
factory and maintenance policies to the simulation.  ``HardeningConfig()``
with all defaults is the identity: plain protocol, no maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro.extensions.rotation import ContactRotationPolicy, MaintenancePolicy
from repro.extensions.supplemental import (
    SupplementalLinksProtocol,
    SupplementalPrunePolicy,
)
from repro.kademlia.config import KademliaConfig
from repro.kademlia.protocol import KademliaProtocol

ProtocolFactory = Callable[[int, KademliaConfig], KademliaProtocol]


@dataclass(frozen=True)
class HardeningConfig:
    """Selection of connectivity-hardening mechanisms for one run."""

    rotation_fraction: float = 0.0
    rotation_interval_minutes: float = 10.0
    supplemental_links: int = 0
    supplemental_interval_minutes: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rotation_fraction <= 1.0:
            raise ValueError(
                f"rotation_fraction must be in [0, 1], got {self.rotation_fraction}"
            )
        if self.supplemental_links < 0:
            raise ValueError(
                f"supplemental_links must be non-negative, got {self.supplemental_links}"
            )
        if self.rotation_interval_minutes <= 0 or self.supplemental_interval_minutes <= 0:
            raise ValueError("maintenance intervals must be positive")

    # ------------------------------------------------------------------
    @property
    def is_baseline(self) -> bool:
        """True when no mechanism is enabled (plain Kademlia)."""
        return self.rotation_fraction == 0.0 and self.supplemental_links == 0

    def protocol_factory(self) -> ProtocolFactory:
        """Return the protocol constructor the simulation should use."""
        if self.supplemental_links > 0:
            extra = self.supplemental_links

            def factory(node_id: int, config: KademliaConfig) -> KademliaProtocol:
                return SupplementalLinksProtocol(node_id, config, extra_links=extra)

            return factory
        return KademliaProtocol

    def maintenance_policies(self) -> List[MaintenancePolicy]:
        """Return the per-node maintenance policies to schedule."""
        policies: List[MaintenancePolicy] = []
        if self.rotation_fraction > 0.0:
            policies.append(
                ContactRotationPolicy(
                    rotation_fraction=self.rotation_fraction,
                    interval_minutes=self.rotation_interval_minutes,
                )
            )
        if self.supplemental_links > 0:
            policies.append(
                SupplementalPrunePolicy(
                    interval_minutes=self.supplemental_interval_minutes
                )
            )
        return policies

    def describe(self) -> str:
        """Short human-readable label used by reports and benchmarks."""
        parts = []
        if self.rotation_fraction > 0.0:
            parts.append(f"rotation={self.rotation_fraction:g}")
        if self.supplemental_links > 0:
            parts.append(f"extra_links={self.supplemental_links}")
        return "baseline" if not parts else "+".join(parts)


#: The identity configuration (plain Kademlia, no extensions).
BASELINE = HardeningConfig()
