"""Iterative lookups over ``d`` node-disjoint paths (S/Kademlia).

The paper motivates its connectivity measurements with the observation that
``kappa(D)`` node-disjoint paths exist between any node pair (Menger's
theorem, Section 4.3) and cites S/Kademlia [1], which *uses* disjoint paths
to make lookups resilient against adversarial nodes.  This module provides
that lookup procedure so the relationship can be closed experimentally:
given a network with a certain connectivity, how many disjoint lookup paths
are needed before lookups survive a given number of compromised nodes?

The procedure follows S/Kademlia's design: the initiator splits its ``k``
closest known contacts into ``d`` disjoint seed sets and runs one iterative
lookup per seed set.  A shared "used" set guarantees that no node (other
than the initiator) is queried by more than one path, which makes the query
paths node-disjoint; an adversary therefore has to sit on *every* path to
eclipse the lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Set

from repro.kademlia.lookup import LookupResult
from repro.kademlia.messages import FindNodeRequest, FindNodeResponse
from repro.kademlia.node_id import sort_by_distance
from repro.kademlia.protocol import KademliaProtocol


@dataclass
class DisjointPathResult:
    """Outcome of one ``d``-path disjoint lookup.

    Attributes
    ----------
    target_id:
        The identifier that was looked up.
    paths:
        One :class:`LookupResult` per path, in seed order.
    path_count:
        The requested number of disjoint paths ``d``.
    """

    target_id: int
    paths: List[LookupResult] = field(default_factory=list)
    path_count: int = 1

    # ------------------------------------------------------------------
    @property
    def contacted(self) -> List[int]:
        """Union of all successfully contacted nodes, closest first."""
        merged: Set[int] = set()
        for path in self.paths:
            merged.update(path.contacted)
        return sort_by_distance(merged, self.target_id)

    @property
    def succeeded(self) -> bool:
        """True if at least one path contacted at least one node."""
        return any(path.succeeded for path in self.paths)

    @property
    def queried(self) -> int:
        """Total number of round-trips attempted across all paths."""
        return sum(path.queried for path in self.paths)

    @property
    def failures(self) -> int:
        """Total number of failed round-trips across all paths."""
        return sum(path.failures for path in self.paths)

    def reached(self, node_ids: Sequence[int]) -> bool:
        """True if any of ``node_ids`` was successfully contacted."""
        wanted = set(node_ids)
        return any(wanted.intersection(path.contacted) for path in self.paths)


def disjoint_find_node(
    protocol: KademliaProtocol, target_id: int, path_count: int = 2
) -> DisjointPathResult:
    """Run an iterative FIND_NODE over ``path_count`` node-disjoint paths.

    With ``path_count = 1`` the procedure degenerates to the standard
    iterative lookup semantics (single shortlist, ``alpha``-wide batches).
    """
    if path_count <= 0:
        raise ValueError(f"path_count must be positive, got {path_count}")
    config = protocol.config
    result = DisjointPathResult(target_id=target_id, path_count=path_count)

    seeds = protocol.routing_table.closest_contacts(
        target_id, config.bucket_size
    )
    # Deal the seeds round-robin so every path starts with contacts spread
    # over the whole distance range rather than one path getting all the
    # close ones.
    seed_sets: List[Set[int]] = [set() for _ in range(path_count)]
    for rank, node_id in enumerate(seeds):
        seed_sets[rank % path_count].add(node_id)

    used: Set[int] = {protocol.node_id}
    for seed_set in seed_sets:
        result.paths.append(
            _single_disjoint_path(protocol, target_id, seed_set, used)
        )
    return result


def _single_disjoint_path(
    protocol: KademliaProtocol,
    target_id: int,
    seeds: Set[int],
    used: Set[int],
) -> LookupResult:
    """One iterative lookup that never queries a node another path used."""
    config = protocol.config
    result = LookupResult(target_id=target_id)
    candidates: Set[int] = set(seeds) - used
    queried: Set[int] = set()
    responded: Set[int] = set()

    while True:
        frontier = [
            node_id
            for node_id in sort_by_distance(candidates, target_id)
            if node_id not in queried and node_id not in used
        ]
        if not frontier or len(responded) >= config.bucket_size:
            break
        batch = frontier[: config.alpha]
        result.rounds += 1

        for node_id in batch:
            queried.add(node_id)
            used.add(node_id)
            result.queried += 1
            ok, response = protocol.rpc(node_id, FindNodeRequest(target_id=target_id))
            if not ok or not isinstance(response, FindNodeResponse):
                result.failures += 1
                continue
            responded.add(node_id)
            for contact_id in response.contacts:
                if contact_id != protocol.node_id and contact_id not in used:
                    candidates.add(contact_id)
                    if config.learn_from_responses:
                        protocol.note_contact(contact_id)
            if len(responded) >= config.bucket_size:
                break

    result.contacted = sort_by_distance(responded, target_id)[: config.bucket_size]
    return result
