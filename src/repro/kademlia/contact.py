"""Routing-table contact records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(slots=True)
class Contact:
    """One entry of a k-bucket.

    Attributes
    ----------
    node_id:
        The contact's Kademlia identifier.
    last_seen:
        Simulated time of the last successful round-trip with this contact.
    consecutive_failures:
        Number of failed round-trips in a row since the last success; once
        this reaches the staleness limit ``s`` the contact is removed from
        the routing table.
    added_at:
        Simulated time at which the contact first entered the table.
    bucket_contacts:
        Back-reference to the contact dict of the owning k-bucket, set when
        the contact is inserted.  The routing table's flat id→contact index
        uses it to perform the most-recently-seen move without re-deriving
        the bucket from XOR arithmetic (excluded from comparison/repr: it
        contains this contact).
    """

    node_id: int
    last_seen: float = 0.0
    consecutive_failures: int = 0
    added_at: float = 0.0
    bucket_contacts: Optional[Dict[int, "Contact"]] = field(
        default=None, compare=False, repr=False
    )

    def record_success(self, time: float) -> None:
        """Note a successful round-trip: reset the failure streak."""
        self.last_seen = time
        self.consecutive_failures = 0

    def record_failure(self) -> int:
        """Note a failed round-trip; returns the new failure streak length."""
        self.consecutive_failures += 1
        return self.consecutive_failures

    def is_stale(self, staleness_limit: int) -> bool:
        """True if the failure streak has reached the staleness limit."""
        return self.consecutive_failures >= staleness_limit
