"""Routing-table contact records."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Contact:
    """One entry of a k-bucket.

    Attributes
    ----------
    node_id:
        The contact's Kademlia identifier.
    last_seen:
        Simulated time of the last successful round-trip with this contact.
    consecutive_failures:
        Number of failed round-trips in a row since the last success; once
        this reaches the staleness limit ``s`` the contact is removed from
        the routing table.
    added_at:
        Simulated time at which the contact first entered the table.
    """

    node_id: int
    last_seen: float = 0.0
    consecutive_failures: int = 0
    added_at: float = 0.0

    def record_success(self, time: float) -> None:
        """Note a successful round-trip: reset the failure streak."""
        self.last_seen = time
        self.consecutive_failures = 0

    def record_failure(self) -> int:
        """Note a failed round-trip; returns the new failure streak length."""
        self.consecutive_failures += 1
        return self.consecutive_failures

    def is_stale(self, staleness_limit: int) -> bool:
        """True if the failure streak has reached the staleness limit."""
        return self.consecutive_failures >= staleness_limit
