"""The Kademlia routing table: ``b`` k-buckets indexed by XOR distance."""

from __future__ import annotations

import heapq
import random
from typing import Dict, List, Optional

from repro.kademlia.config import KademliaConfig
from repro.kademlia.kbucket import KBucket
from repro.kademlia.node_id import bucket_index, random_id_in_bucket, sort_by_distance


class RoutingTable:
    """Per-node routing state.

    The table owns ``bit_length`` buckets; bucket ``i`` covers contacts at
    XOR distance ``[2**i, 2**(i+1))`` from the owner, so the highest-index
    bucket covers half the identifier space, the next one a quarter, and so
    on (paper Section 4.1).

    ``closest_contacts`` is the hottest function of the whole simulation
    (it runs for every FIND_NODE request a node answers), so the flat list
    of contact ids is cached and only rebuilt when the table's *membership*
    changes — reordering inside a bucket does not invalidate it.
    """

    def __init__(self, owner_id: int, config: KademliaConfig) -> None:
        self.owner_id = owner_id
        self.config = config
        self._buckets: Dict[int, KBucket] = {}
        self._contacts_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------
    def bucket_for(self, node_id: int) -> KBucket:
        """Return (creating lazily) the bucket that covers ``node_id``."""
        index = bucket_index(self.owner_id, node_id)
        if index not in self._buckets:
            self._buckets[index] = KBucket(index, self.config.bucket_size)
        return self._buckets[index]

    def buckets(self) -> List[KBucket]:
        """Return the non-empty (or previously used) buckets, by index."""
        return [self._buckets[index] for index in sorted(self._buckets)]

    # ------------------------------------------------------------------
    def add_contact(self, node_id: int, time: float) -> bool:
        """Try to add ``node_id``; returns True if it is in the table afterwards."""
        if node_id == self.owner_id:
            return False
        bucket = self.bucket_for(node_id)
        already_present = node_id in bucket
        added = bucket.add(node_id, time, self.config.staleness_limit)
        if added and not already_present:
            self._contacts_cache = None
        return added

    def remove_contact(self, node_id: int) -> bool:
        """Remove ``node_id`` from the table; True if it was present."""
        if node_id == self.owner_id:
            return False
        removed = self.bucket_for(node_id).remove(node_id)
        if removed:
            self._contacts_cache = None
        return removed

    def record_failure(self, node_id: int) -> bool:
        """Record a failed round-trip; True if the contact was dropped as stale."""
        if node_id == self.owner_id:
            return False
        dropped = self.bucket_for(node_id).record_failure(
            node_id, self.config.staleness_limit
        )
        if dropped:
            self._contacts_cache = None
        return dropped

    def record_success(self, node_id: int, time: float) -> bool:
        """Record a successful round-trip with an existing contact."""
        if node_id == self.owner_id:
            return False
        return self.bucket_for(node_id).record_success(node_id, time)

    # ------------------------------------------------------------------
    def contains(self, node_id: int) -> bool:
        """True if ``node_id`` is currently in the table."""
        if node_id == self.owner_id:
            return False
        return node_id in self.bucket_for(node_id)

    def contact_ids(self) -> List[int]:
        """Return every contact id in the table (all buckets)."""
        if self._contacts_cache is None:
            ids: List[int] = []
            for index in sorted(self._buckets):
                ids.extend(self._buckets[index].contact_ids())
            self._contacts_cache = ids
        return list(self._contacts_cache)

    def contact_count(self) -> int:
        """Return the number of contacts currently stored."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def closest_contacts(self, target_id: int, count: Optional[int] = None) -> List[int]:
        """Return up to ``count`` contact ids closest to ``target_id``.

        ``count`` defaults to the bucket size ``k`` — the reply size of a
        FIND_NODE RPC.
        """
        count = self.config.bucket_size if count is None else count
        if self._contacts_cache is None:
            self.contact_ids()
        contacts = self._contacts_cache
        if len(contacts) <= count:
            return sort_by_distance(contacts, target_id)
        smallest = heapq.nsmallest(count, contacts, key=lambda c: c ^ target_id)
        return smallest

    # ------------------------------------------------------------------
    def refresh_targets(self, rng: random.Random) -> List[int]:
        """Return the lookup targets of one maintenance bucket refresh.

        One random identifier per refreshed bucket.  With
        ``config.refresh_all_buckets`` every bucket range is refreshed (the
        paper's description); otherwise only buckets that currently hold
        contacts are refreshed, plus one random identifier over the whole
        space so an almost-empty table still explores.
        """
        targets: List[int] = []
        if self.config.refresh_all_buckets:
            indices = range(self.config.bit_length)
        else:
            indices = sorted(self._buckets)
        for index in indices:
            targets.append(
                random_id_in_bucket(
                    self.owner_id, index, self.config.bit_length, rng
                )
            )
        if not self.config.refresh_all_buckets:
            targets.append(rng.randrange(self.config.id_space_size))
        return targets

    def occupancy_by_bucket(self) -> Dict[int, int]:
        """Return ``bucket index -> contact count`` for non-empty buckets."""
        return {
            index: len(bucket)
            for index, bucket in sorted(self._buckets.items())
            if len(bucket) > 0
        }
