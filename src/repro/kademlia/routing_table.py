"""The Kademlia routing table: ``b`` k-buckets indexed by XOR distance."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.kademlia.config import KademliaConfig
from repro.kademlia.contact import Contact
from repro.kademlia.kbucket import KBucket
from repro.kademlia.node_id import random_id_in_bucket


class RoutingTable:
    """Per-node routing state.

    The table owns ``bit_length`` buckets; bucket ``i`` covers contacts at
    XOR distance ``[2**i, 2**(i+1))`` from the owner, so the highest-index
    bucket covers half the identifier space, the next one a quarter, and so
    on (paper Section 4.1).

    This class is the hottest part of the whole simulation — every learned
    contact of every FIND_NODE reply funnels through :meth:`add_contact`,
    and every request a node answers runs :meth:`closest_contacts` — so it
    keeps two auxiliary structures in sync with the buckets:

    * ``_contact_index`` — a flat ``id -> Contact`` dict over all buckets.
      The common case (refreshing an already-known contact) resolves with
      one dict probe; the contact's back-reference to its bucket dict makes
      the most-recently-seen move two more dict operations.  Bucket
      membership mutations mirror into the index (:class:`KBucket` shares
      it), so it is always exact.
    * ``_contacts_cache`` — the flat contact-id list in canonical bucket
      order, rebuilt only when *membership* changes (reordering inside a
      bucket does not invalidate it).  Snapshots read it directly.

    ``membership_version`` increments on every membership change (insert or
    eviction).  The incremental connectivity-graph maintainer uses it to
    skip rebuilding snapshot-graph rows for tables that did not change
    between snapshots.
    """

    __slots__ = (
        "owner_id",
        "config",
        "_buckets",
        "_contact_index",
        "_contacts_cache",
        "_bucket_size",
        "_staleness_limit",
        "membership_version",
    )

    def __init__(self, owner_id: int, config: KademliaConfig) -> None:
        self.owner_id = owner_id
        self.config = config
        self._buckets: Dict[int, KBucket] = {}
        self._contact_index: Dict[int, Contact] = {}
        self._contacts_cache: Optional[List[int]] = None
        # Config lookups are frozen-dataclass attribute chains; cache the two
        # values the per-contact fast paths need.
        self._bucket_size = config.bucket_size
        self._staleness_limit = config.staleness_limit
        self.membership_version = 0

    # ------------------------------------------------------------------
    def bucket_for(self, node_id: int) -> KBucket:
        """Return (creating lazily) the bucket that covers ``node_id``."""
        if node_id == self.owner_id:
            raise ValueError("a node has no bucket for its own identifier")
        if node_id < 0:
            raise ValueError("identifiers must be non-negative")
        index = (self.owner_id ^ node_id).bit_length() - 1
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = KBucket(
                index, self._bucket_size, self._contact_index
            )
        return bucket

    def buckets(self) -> List[KBucket]:
        """Return the non-empty (or previously used) buckets, by index."""
        return [self._buckets[index] for index in sorted(self._buckets)]

    # ------------------------------------------------------------------
    def add_contact(self, node_id: int, time: float) -> bool:
        """Try to add ``node_id``; returns True if it is in the table afterwards."""
        if node_id == self.owner_id:
            return False
        contact = self._contact_index.get(node_id)
        if contact is not None:
            # Most common case by far: the contact is already known — move
            # it to the most-recently-seen slot of its bucket and reset its
            # failure streak.  Membership is unchanged, the cache holds.
            bucket_contacts = contact.bucket_contacts
            del bucket_contacts[node_id]
            bucket_contacts[node_id] = contact
            contact.last_seen = time
            contact.consecutive_failures = 0
            return True
        if node_id < 0:
            raise ValueError("identifiers must be non-negative")
        index = (self.owner_id ^ node_id).bit_length() - 1
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = KBucket(
                index, self._bucket_size, self._contact_index
            )
        added = bucket.add(node_id, time, self._staleness_limit)
        if added:
            self._contacts_cache = None
            self.membership_version += 1
        return added

    def remove_contact(self, node_id: int) -> bool:
        """Remove ``node_id`` from the table; True if it was present."""
        contact = self._contact_index.get(node_id)
        if contact is None:
            return False
        del contact.bucket_contacts[node_id]
        del self._contact_index[node_id]
        self._contacts_cache = None
        self.membership_version += 1
        return True

    def record_failure(self, node_id: int) -> bool:
        """Record a failed round-trip; True if the contact was dropped as stale."""
        contact = self._contact_index.get(node_id)
        if contact is None:
            return False
        contact.consecutive_failures += 1
        if contact.consecutive_failures >= self._staleness_limit:
            del contact.bucket_contacts[node_id]
            del self._contact_index[node_id]
            self._contacts_cache = None
            self.membership_version += 1
            return True
        return False

    def record_success(self, node_id: int, time: float) -> bool:
        """Record a successful round-trip with an existing contact."""
        contact = self._contact_index.get(node_id)
        if contact is None:
            return False
        bucket_contacts = contact.bucket_contacts
        del bucket_contacts[node_id]
        bucket_contacts[node_id] = contact
        contact.last_seen = time
        contact.consecutive_failures = 0
        return True

    # ------------------------------------------------------------------
    def contains(self, node_id: int) -> bool:
        """True if ``node_id`` is currently in the table."""
        return node_id in self._contact_index and node_id != self.owner_id

    def contact_ids(self) -> List[int]:
        """Return every contact id in the table, in canonical bucket order."""
        cache = self._contacts_cache
        if cache is None:
            cache = []
            buckets = self._buckets
            for index in sorted(buckets):
                cache.extend(buckets[index]._contacts)
            self._contacts_cache = cache
        return list(cache)

    def contact_count(self) -> int:
        """Return the number of contacts currently stored — O(1)."""
        return len(self._contact_index)

    def closest_contacts(self, target_id: int, count: Optional[int] = None) -> List[int]:
        """Return up to ``count`` contact ids closest to ``target_id``.

        ``count`` defaults to the bucket size ``k`` — the reply size of a
        FIND_NODE RPC.  A full sort with the bound C method
        ``target_id.__xor__`` as key replaces the previous
        ``heapq.nsmallest`` + Python lambda: tables hold at most a few
        hundred contacts, where one C-keyed sort wins outright, and both
        produce the same ordering (stable smallest-``count`` prefix).

        The sort reads (and, when membership changed, rebuilds) the flat
        contact-id cache rather than the id index.  The sorted *result* is
        the same either way, but the rebuild moment is observable: the
        cache captures the buckets' least-recently-seen order at build
        time, and snapshots persist that order — rebuilding here, on the
        first reply after a membership change, keeps snapshot rows
        bit-identical to the historical behaviour.
        """
        if count is None:
            count = self._bucket_size
        contacts = self._contacts_cache
        if contacts is None:
            self.contact_ids()
            contacts = self._contacts_cache
        ordered = sorted(contacts, key=target_id.__xor__)
        return ordered if len(ordered) <= count else ordered[:count]

    # ------------------------------------------------------------------
    def refresh_targets(self, rng: random.Random) -> List[int]:
        """Return the lookup targets of one maintenance bucket refresh.

        One random identifier per refreshed bucket.  With
        ``config.refresh_all_buckets`` every bucket range is refreshed (the
        paper's description); otherwise only buckets that currently hold
        contacts are refreshed, plus one random identifier over the whole
        space so an almost-empty table still explores.
        """
        targets: List[int] = []
        if self.config.refresh_all_buckets:
            indices = range(self.config.bit_length)
        else:
            indices = sorted(self._buckets)
        for index in indices:
            targets.append(
                random_id_in_bucket(
                    self.owner_id, index, self.config.bit_length, rng
                )
            )
        if not self.config.refresh_all_buckets:
            targets.append(rng.randrange(self.config.id_space_size))
        return targets

    def occupancy_by_bucket(self) -> Dict[int, int]:
        """Return ``bucket index -> contact count`` for non-empty buckets."""
        return {
            index: len(bucket)
            for index, bucket in sorted(self._buckets.items())
            if len(bucket) > 0
        }
