"""Per-node key/value store for disseminated data objects."""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class DataStore:
    """A node's local storage of disseminated data objects.

    The connectivity analysis never inspects stored values — only the
    communication caused by STORE/FIND_VALUE matters — but a real store is
    kept so the examples can demonstrate end-to-end data dissemination and
    retrieval.
    """

    def __init__(self) -> None:
        self._items: Dict[int, Any] = {}
        self._stored_at: Dict[int, float] = {}

    def put(self, key_id: int, value: Any, time: float = 0.0) -> None:
        """Store ``value`` under ``key_id`` (overwrites any previous value)."""
        self._items[key_id] = value
        self._stored_at[key_id] = time

    def get(self, key_id: int) -> Optional[Any]:
        """Return the value stored under ``key_id`` (None if absent)."""
        return self._items.get(key_id)

    def has(self, key_id: int) -> bool:
        """True if a value is stored under ``key_id``."""
        return key_id in self._items

    def keys(self) -> List[int]:
        """Return all stored key identifiers."""
        return list(self._items)

    def stored_at(self, key_id: int) -> Optional[float]:
        """Return the simulated time at which ``key_id`` was stored."""
        return self._stored_at.get(key_id)

    def __len__(self) -> int:
        return len(self._items)
