"""Iterative node lookup.

The lookup procedure (paper Section 4.1): given a target identifier, a node
queries the ``alpha`` contacts from its routing table closest to the target;
each response contributes the responder's own list of closest contacts,
which are then queried in turn, so the requester iteratively gets closer to
the target.  The procedure ends when ``k`` nodes have been successfully
contacted or no progress can be made.

Routing-table maintenance happens as a side effect, and this side effect is
what the paper's connectivity results hinge on:

* the *responder* of every successful round-trip is added to (or refreshed
  in) the requester's routing table;
* the *requester* is added to the responder's table when the request is
  handled (see :meth:`KademliaProtocol.handle_request`);
* every failed round-trip increments the contacted node's failure streak in
  the requester's table, removing it once the streak reaches the staleness
  limit ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import List, Set, TYPE_CHECKING

from repro.kademlia.messages import FindNodeRequest, FindNodeResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.kademlia.protocol import KademliaProtocol


@dataclass(slots=True)
class LookupResult:
    """Outcome of one iterative lookup.

    Attributes
    ----------
    target_id:
        The identifier that was looked up.
    contacted:
        Nodes that answered, sorted by XOR distance to the target (closest
        first), at most ``k`` entries.
    queried:
        Total number of round-trips attempted.
    failures:
        Number of failed round-trips.
    rounds:
        Number of parallel query rounds performed.
    """

    target_id: int
    contacted: List[int] = field(default_factory=list)
    queried: int = 0
    failures: int = 0
    rounds: int = 0

    @property
    def succeeded(self) -> bool:
        """True if at least one node answered."""
        return bool(self.contacted)

    def virtual_latency(
        self, rtt: float = 1.0, timeout_penalty: float = 3.0
    ) -> float:
        """Per-hop virtual-time latency of this lookup, in RTT units.

        The whole lookup executes within one simulator event, so no
        virtual duration can be measured directly — but the per-hop
        structure is fully known: every parallel query round is one
        request/response round-trip deep (one ``rtt``), and every failed
        round-trip additionally waited out a timeout
        (``timeout_penalty``).  Accumulating those per-hop costs yields
        the latency a real deployment would have observed; the default
        constants mirror :mod:`repro.obs.virtualtime`.
        """
        return self.rounds * rtt + self.failures * timeout_penalty

    def closest(self) -> int:
        """Return the contacted node closest to the target.

        Raises ``ValueError`` when nothing was contacted.
        """
        if not self.contacted:
            raise ValueError("lookup contacted no nodes")
        return self.contacted[0]


def iterative_find_node(protocol: "KademliaProtocol", target_id: int) -> LookupResult:
    """Run the iterative FIND_NODE procedure from ``protocol`` for ``target_id``.

    The loop body is the hottest client-side code of the simulation, so
    the invariants over the original formulation are hoisted: one
    :class:`FindNodeRequest` serves every round-trip of the lookup (the
    request is an immutable value object), the distance-sort key is the
    bound C method ``target_id.__xor__``, and the clock is read once —
    the whole lookup runs inside a single simulator event, during which
    simulated time cannot advance.
    """
    config = protocol.config
    result = LookupResult(target_id=target_id)
    k = config.bucket_size
    alpha = config.alpha
    learn = config.learn_from_responses
    own_id = protocol.node_id
    rpc = protocol.rpc
    learn_contacts = protocol.learn_contacts
    now = protocol.now
    distance_to_target = target_id.__xor__
    request = FindNodeRequest(target_id=target_id)

    # The frontier is a lazy min-heap over (distance, id).  Invariant:
    # the heap holds exactly the known-but-unqueried candidates — every
    # popped id is queried immediately, and an id learned again after
    # being queried is kept out by the ``candidates`` dedupe set — so
    # popping ``alpha`` entries yields exactly the ``alpha`` closest
    # unqueried candidates, the same batch the per-round
    # sort-the-whole-frontier formulation selected.  XOR distances to a
    # fixed target are unique per id, so the order admits no ties.
    seeds = protocol.routing_table.closest_contacts(target_id, k)
    candidates: Set[int] = set(seeds)
    frontier = [(node_id ^ target_id, node_id) for node_id in seeds]
    heapify(frontier)
    responded: Set[int] = set()
    queried_count = 0
    failure_count = 0
    round_count = 0

    while len(responded) < k and frontier:
        batch = [heappop(frontier)[1] for _ in range(min(alpha, len(frontier)))]
        round_count += 1

        for node_id in batch:
            queried_count += 1
            ok, response = rpc(node_id, request)
            if not ok or not isinstance(response, FindNodeResponse):
                failure_count += 1
                continue
            responded.add(node_id)
            if learn:
                learn_contacts(
                    response.contacts, candidates, frontier, target_id, now
                )
            else:
                for contact_id in response.contacts:
                    if contact_id != own_id and contact_id not in candidates:
                        candidates.add(contact_id)
                        heappush(frontier, (contact_id ^ target_id, contact_id))
            if len(responded) >= k:
                break

    result.queried = queried_count
    result.failures = failure_count
    result.rounds = round_count
    result.contacted = sorted(responded, key=distance_to_target)[:k]
    return result
