"""Iterative node lookup.

The lookup procedure (paper Section 4.1): given a target identifier, a node
queries the ``alpha`` contacts from its routing table closest to the target;
each response contributes the responder's own list of closest contacts,
which are then queried in turn, so the requester iteratively gets closer to
the target.  The procedure ends when ``k`` nodes have been successfully
contacted or no progress can be made.

Routing-table maintenance happens as a side effect, and this side effect is
what the paper's connectivity results hinge on:

* the *responder* of every successful round-trip is added to (or refreshed
  in) the requester's routing table;
* the *requester* is added to the responder's table when the request is
  handled (see :meth:`KademliaProtocol.handle_request`);
* every failed round-trip increments the contacted node's failure streak in
  the requester's table, removing it once the streak reaches the staleness
  limit ``s``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Set, TYPE_CHECKING

from repro.kademlia.messages import FindNodeRequest, FindNodeResponse
from repro.overlay.base import LookupResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.kademlia.protocol import KademliaProtocol

__all__ = ["LookupResult", "iterative_find_node"]


def iterative_find_node(protocol: "KademliaProtocol", target_id: int) -> LookupResult:
    """Run the iterative FIND_NODE procedure from ``protocol`` for ``target_id``.

    The loop body is the hottest client-side code of the simulation, so
    the invariants over the original formulation are hoisted: one
    :class:`FindNodeRequest` serves every round-trip of the lookup (the
    request is an immutable value object), the distance-sort key is the
    bound C method ``target_id.__xor__``, and the clock is read once —
    the whole lookup runs inside a single simulator event, during which
    simulated time cannot advance.
    """
    config = protocol.config
    result = LookupResult(target_id=target_id)
    k = config.bucket_size
    alpha = config.alpha
    learn = config.learn_from_responses
    own_id = protocol.node_id
    rpc = protocol.rpc
    learn_contacts = protocol.learn_contacts
    now = protocol.now
    distance_to_target = target_id.__xor__
    request = FindNodeRequest(target_id=target_id)

    # The frontier is a lazy min-heap over (distance, id).  Invariant:
    # the heap holds exactly the known-but-unqueried candidates — every
    # popped id is queried immediately, and an id learned again after
    # being queried is kept out by the ``candidates`` dedupe set — so
    # popping ``alpha`` entries yields exactly the ``alpha`` closest
    # unqueried candidates, the same batch the per-round
    # sort-the-whole-frontier formulation selected.  XOR distances to a
    # fixed target are unique per id, so the order admits no ties.
    seeds = protocol.routing_table.closest_contacts(target_id, k)
    candidates: Set[int] = set(seeds)
    frontier = [(node_id ^ target_id, node_id) for node_id in seeds]
    heapify(frontier)
    responded: Set[int] = set()
    queried_count = 0
    failure_count = 0
    round_count = 0

    while len(responded) < k and frontier:
        batch = [heappop(frontier)[1] for _ in range(min(alpha, len(frontier)))]
        round_count += 1

        for node_id in batch:
            queried_count += 1
            ok, response = rpc(node_id, request)
            if not ok or not isinstance(response, FindNodeResponse):
                failure_count += 1
                continue
            responded.add(node_id)
            if learn:
                learn_contacts(
                    response.contacts, candidates, frontier, target_id, now
                )
            else:
                for contact_id in response.contacts:
                    if contact_id != own_id and contact_id not in candidates:
                        candidates.add(contact_id)
                        heappush(frontier, (contact_id ^ target_id, contact_id))
            if len(responded) >= k:
                break

    result.queried = queried_count
    result.failures = failure_count
    result.rounds = round_count
    result.contacted = sorted(responded, key=distance_to_target)[:k]
    return result
