"""Iterative node lookup.

The lookup procedure (paper Section 4.1): given a target identifier, a node
queries the ``alpha`` contacts from its routing table closest to the target;
each response contributes the responder's own list of closest contacts,
which are then queried in turn, so the requester iteratively gets closer to
the target.  The procedure ends when ``k`` nodes have been successfully
contacted or no progress can be made.

Routing-table maintenance happens as a side effect, and this side effect is
what the paper's connectivity results hinge on:

* the *responder* of every successful round-trip is added to (or refreshed
  in) the requester's routing table;
* the *requester* is added to the responder's table when the request is
  handled (see :meth:`KademliaProtocol.handle_request`);
* every failed round-trip increments the contacted node's failure streak in
  the requester's table, removing it once the streak reaches the staleness
  limit ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, TYPE_CHECKING

from repro.kademlia.messages import FindNodeRequest, FindNodeResponse
from repro.kademlia.node_id import sort_by_distance

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.kademlia.protocol import KademliaProtocol


@dataclass
class LookupResult:
    """Outcome of one iterative lookup.

    Attributes
    ----------
    target_id:
        The identifier that was looked up.
    contacted:
        Nodes that answered, sorted by XOR distance to the target (closest
        first), at most ``k`` entries.
    queried:
        Total number of round-trips attempted.
    failures:
        Number of failed round-trips.
    rounds:
        Number of parallel query rounds performed.
    """

    target_id: int
    contacted: List[int] = field(default_factory=list)
    queried: int = 0
    failures: int = 0
    rounds: int = 0

    @property
    def succeeded(self) -> bool:
        """True if at least one node answered."""
        return bool(self.contacted)

    def closest(self) -> int:
        """Return the contacted node closest to the target.

        Raises ``ValueError`` when nothing was contacted.
        """
        if not self.contacted:
            raise ValueError("lookup contacted no nodes")
        return self.contacted[0]


def iterative_find_node(protocol: "KademliaProtocol", target_id: int) -> LookupResult:
    """Run the iterative FIND_NODE procedure from ``protocol`` for ``target_id``."""
    config = protocol.config
    result = LookupResult(target_id=target_id)

    candidates: Set[int] = set(
        protocol.routing_table.closest_contacts(target_id, config.bucket_size)
    )
    queried: Set[int] = set()
    responded: Set[int] = set()

    while True:
        # Closest known candidates that have not been queried yet.
        frontier = [
            node_id
            for node_id in sort_by_distance(candidates, target_id)
            if node_id not in queried
        ]
        if not frontier or len(responded) >= config.bucket_size:
            break
        batch = frontier[: config.alpha]
        result.rounds += 1

        for node_id in batch:
            queried.add(node_id)
            result.queried += 1
            ok, response = protocol.rpc(node_id, FindNodeRequest(target_id=target_id))
            if not ok or not isinstance(response, FindNodeResponse):
                result.failures += 1
                continue
            responded.add(node_id)
            for contact_id in response.contacts:
                if contact_id != protocol.node_id:
                    candidates.add(contact_id)
                    if config.learn_from_responses:
                        protocol.note_contact(contact_id)
            if len(responded) >= config.bucket_size:
                break

    result.contacted = sort_by_distance(responded, target_id)[: config.bucket_size]
    return result
