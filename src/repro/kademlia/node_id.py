"""Node identifiers and the XOR metric.

Identifiers are integers in ``[0, 2**b)``.  The paper (Section 4.1) derives
node ids from network addresses with a cryptographic hash to get a uniform
distribution over the id space; in the simulation we either hash a given
address string (``id_from_key``) or draw ids uniformly at random
(``generate_node_id``), which is distributionally equivalent.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Optional, Set


def xor_distance(id_a: int, id_b: int) -> int:
    """Return the XOR distance ``id_a ^ id_b`` interpreted as an integer."""
    if id_a < 0 or id_b < 0:
        raise ValueError("identifiers must be non-negative")
    return id_a ^ id_b


def bucket_index(own_id: int, other_id: int) -> int:
    """Return the k-bucket index of ``other_id`` relative to ``own_id``.

    The bucket with index ``i`` holds contacts whose distance ``d`` obeys
    ``2**i <= d < 2**(i+1)``, i.e. ``i = floor(log2(d))`` — computed as
    ``bit_length() - 1`` on the XOR distance.  The two ids must differ
    (distance 0 has no bucket).
    """
    if own_id < 0 or other_id < 0:
        raise ValueError("identifiers must be non-negative")
    distance = own_id ^ other_id
    if distance == 0:
        raise ValueError("a node has no bucket for its own identifier")
    return distance.bit_length() - 1


def generate_node_id(
    bit_length: int,
    rng: Optional[random.Random] = None,
    exclude: Optional[Set[int]] = None,
) -> int:
    """Draw a fresh uniformly random identifier.

    ``exclude`` guards against collisions among simulated nodes; with
    ``b = 160`` collisions are practically impossible but with the reduced
    ``b = 80`` (or tiny test values) the guard keeps node ids unique.
    """
    rng = rng or random.Random()
    space = 1 << bit_length
    exclude = exclude or set()
    if len(exclude) >= space:
        raise ValueError("identifier space exhausted")
    while True:
        candidate = rng.randrange(space)
        if candidate not in exclude:
            return candidate


def id_from_key(key: str, bit_length: int) -> int:
    """Hash an arbitrary string key into the identifier space.

    Mirrors how real deployments derive ids for data objects: SHA-256 of the
    key, truncated to ``bit_length`` bits.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big")
    return value & ((1 << bit_length) - 1)


def random_id_in_bucket(
    own_id: int, index: int, bit_length: int, rng: Optional[random.Random] = None
) -> int:
    """Return a random identifier that falls into bucket ``index`` of ``own_id``.

    Used by the bucket-refresh maintenance procedure: the node looks up a
    random id from the id range of each k-bucket (paper Section 5.3,
    "Network Traffic").
    """
    if not 0 <= index < bit_length:
        raise ValueError(f"bucket index {index} out of range for b={bit_length}")
    rng = rng or random.Random()
    # A distance d with 2**index <= d < 2**(index+1).
    distance = (1 << index) + rng.randrange(1 << index)
    return own_id ^ distance


def sort_by_distance(ids: Iterable[int], target: int) -> List[int]:
    """Return ``ids`` sorted by XOR distance to ``target`` (closest first).

    The sort key is the bound C method ``target.__xor__`` — equivalent to
    ``lambda node_id: node_id ^ target`` (XOR commutes) but evaluated
    without a Python frame per element, which matters because this runs
    for every lookup round and every FIND_NODE reply.
    """
    return sorted(ids, key=target.__xor__)


def closest(ids: Iterable[int], target: int, count: int) -> List[int]:
    """Return the ``count`` ids closest to ``target`` by XOR distance."""
    return sort_by_distance(ids, target)[:count]
