"""Kademlia protocol parameters.

The defaults match the values the Kademlia authors chose and the paper
quotes in Section 4.1: ``b = 160``, ``k = 20``, ``alpha = 3``, ``s = 5``.
The evaluation varies ``k in {5, 10, 20, 30}``, ``alpha in {3, 5}``,
``b in {80, 160}`` and ``s in {1, 5}``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict


@dataclass(frozen=True)
class KademliaConfig:
    """Immutable bundle of the protocol parameters.

    Attributes
    ----------
    bit_length:
        ``b`` — number of bits in node and key identifiers.
    bucket_size:
        ``k`` — maximum number of contacts per k-bucket; also the
        replication factor of lookups and disseminations.
    alpha:
        Request parallelism of iterative lookups.
    staleness_limit:
        ``s`` — consecutive failed round-trips after which a contact is
        considered stale and removed from the routing table.
    refresh_interval_minutes:
        Period of the maintenance bucket refresh (paper: 60 minutes).
    learn_from_responses:
        If True (default), contacts listed in FIND_NODE responses are also
        inserted into the requester's routing table (subject to the normal
        bucket policy), in addition to the responder itself.  The original
        Kademlia paper only mandates adding nodes one has directly
        exchanged messages with, but the PeerSim Kademlia module used by
        the paper's evaluation inserts learned neighbours as well, and the
        paper's loss results (Figures 12–14) depend on routing tables being
        refilled quickly after loss-driven evictions.  Setting this to
        False reverts to the strict direct-contact-only rule.
    refresh_all_buckets:
        If True, a bucket refresh looks up a random identifier in *every*
        bucket range, as the paper describes.  If False (default), only
        non-empty buckets and the bucket covering the node's nearest
        neighbours are refreshed — a standard optimisation used by deployed
        implementations that does not change connectivity dynamics but keeps
        pure-Python simulations fast.  The paper-scale profile enables the
        faithful behaviour.
    bootstrap_reseed:
        If True (default), a node keeps its configured bootstrap address
        outside the routing table and falls back to it whenever its table
        has emptied out or it has never completed a successful outgoing
        round-trip.  Deployed implementations behave this way; without it,
        message loss during the join (Simulations J–L) permanently
        partitions the simulated network — see DESIGN.md and the
        ``test_ablation_bootstrap_recovery`` benchmark.
    """

    bit_length: int = 160
    bucket_size: int = 20
    alpha: int = 3
    staleness_limit: int = 5
    refresh_interval_minutes: float = 60.0
    learn_from_responses: bool = True
    refresh_all_buckets: bool = False
    bootstrap_reseed: bool = True

    def __post_init__(self) -> None:
        if self.bit_length <= 0:
            raise ValueError(f"bit_length must be positive, got {self.bit_length}")
        if self.bucket_size <= 0:
            raise ValueError(f"bucket_size must be positive, got {self.bucket_size}")
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.staleness_limit <= 0:
            raise ValueError(
                f"staleness_limit must be positive, got {self.staleness_limit}"
            )
        if self.refresh_interval_minutes <= 0:
            raise ValueError(
                "refresh_interval_minutes must be positive, got "
                f"{self.refresh_interval_minutes}"
            )

    # ------------------------------------------------------------------
    @property
    def id_space_size(self) -> int:
        """Number of distinct identifiers, ``2**bit_length``."""
        return 1 << self.bit_length

    def with_overrides(self, **changes: Any) -> "KademliaConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Return the configuration as a plain dictionary (for reports)."""
        return {
            "bit_length": self.bit_length,
            "bucket_size": self.bucket_size,
            "alpha": self.alpha,
            "staleness_limit": self.staleness_limit,
            "refresh_interval_minutes": self.refresh_interval_minutes,
            "learn_from_responses": self.learn_from_responses,
            "refresh_all_buckets": self.refresh_all_buckets,
            "bootstrap_reseed": self.bootstrap_reseed,
        }

    @classmethod
    def paper_default(cls) -> "KademliaConfig":
        """The default parameter set quoted in the paper (b=160, k=20, alpha=3, s=5)."""
        return cls()
