"""The Kademlia protocol handler attached to every simulation node."""

from __future__ import annotations

import random
from heapq import heappush
from typing import Any, List, Optional, Tuple

from repro.kademlia.config import KademliaConfig
from repro.kademlia.lookup import LookupResult, iterative_find_node
from repro.kademlia.messages import (
    FindNodeRequest,
    FindNodeResponse,
    FindValueRequest,
    FindValueResponse,
    PingRequest,
    PongResponse,
    StoreRequest,
    StoreResponse,
)
from repro.kademlia.routing_table import RoutingTable
from repro.kademlia.storage import DataStore
from repro.obs import active as obs_active
from repro.obs.virtualtime import lookup_virtual_latency
from repro.overlay.base import OverlayProtocol


class KademliaProtocol(OverlayProtocol):
    """Kademlia state machine for one node.

    The protocol is *bound* to a transport and a simulated clock after
    construction (``bind``); the experiment runner owns both.  All
    client-side operations (``join``, ``lookup``, ``disseminate``,
    ``bucket_refresh``) run synchronously at the simulated instant at which
    the runner invokes them — see the design note in
    :mod:`repro.simulator.__init__`.
    """

    protocol_name = "kademlia"

    def __init__(self, node_id: int, config: KademliaConfig) -> None:
        # OverlayProtocol.__init__ sets up the wiring attributes
        # (transport, clock, bootstrap_id, ever_connected).
        super().__init__(node_id)
        self.config = config
        self.routing_table = RoutingTable(node_id, config)
        self.storage = DataStore()
        self.lookups_performed = 0
        self.disseminations_performed = 0
        self.refreshes_performed = 0
        self.reseeds_performed = 0
        #: Metrics registry captured at construction (None = observability
        #: off): protocols are built inside the experiment run's scope, so
        #: every node of one run records into that run's registry.  Purely
        #: write-only — nothing here feeds back into protocol behaviour.
        self._obs = obs_active()

    def note_contact(self, node_id: int, time: Optional[float] = None) -> bool:
        """Record a (successful) interaction with ``node_id`` in the routing table.

        ``time`` defaults to the current simulated time; hot callers that
        record many contacts within one event (e.g. the learn-from-responses
        loop of a lookup) pass the clock value once instead of re-reading it
        per contact — the simulated clock cannot advance inside an event.

        The already-present case (by far the most common: every reply
        refreshes mostly-known contacts) replicates
        :meth:`RoutingTable.add_contact`'s refresh fast path inline, saving
        one call frame on a path taken ~20 times per handled FIND_NODE.
        """
        if node_id == self.node_id:
            return False
        if time is None:
            time = self._clock()
        routing_table = self.routing_table
        contact = routing_table._contact_index.get(node_id)
        if contact is not None:
            bucket_contacts = contact.bucket_contacts
            del bucket_contacts[node_id]
            bucket_contacts[node_id] = contact
            contact.last_seen = time
            contact.consecutive_failures = 0
            return True
        return routing_table.add_contact(node_id, time)

    def learn_contacts(
        self,
        contact_ids: Tuple[int, ...],
        candidates: set,
        frontier: list,
        target_id: int,
        time: float,
    ) -> None:
        """Absorb one FIND_NODE reply: extend the lookup state and the table.

        Batch form of the lookup's learn-from-responses loop — one call per
        reply instead of one :meth:`note_contact` call per listed contact.
        Contacts not seen before in this lookup are added to ``candidates``
        and pushed onto the lookup's distance-keyed ``frontier`` heap; every
        listed contact (new or not) is recorded in the routing table.  A
        subclass that overrides :meth:`note_contact` (e.g. the
        supplemental-list extension) transparently falls back to the
        per-contact path so its hook keeps seeing every learned contact.
        """
        own_id = self.node_id
        if type(self).note_contact is not KademliaProtocol.note_contact:
            note_contact = self.note_contact
            for contact_id in contact_ids:
                if contact_id != own_id:
                    if contact_id not in candidates:
                        candidates.add(contact_id)
                        heappush(
                            frontier, (contact_id ^ target_id, contact_id)
                        )
                    note_contact(contact_id, time)
            return
        routing_table = self.routing_table
        index_get = routing_table._contact_index.get
        add_contact = routing_table.add_contact
        candidates_add = candidates.add
        for contact_id in contact_ids:
            if contact_id == own_id:
                continue
            if contact_id not in candidates:
                candidates_add(contact_id)
                heappush(frontier, (contact_id ^ target_id, contact_id))
            contact = index_get(contact_id)
            if contact is not None:
                # Refresh in place: one flat-index probe resolves the
                # contact, its back-reference the bucket dict for the
                # most-recently-seen move (same ops as RoutingTable.
                # add_contact's fast path, minus the call frame).
                bucket_contacts = contact.bucket_contacts
                del bucket_contacts[contact_id]
                bucket_contacts[contact_id] = contact
                contact.last_seen = time
                contact.consecutive_failures = 0
                continue
            add_contact(contact_id, time)

    def rpc(self, target_id: int, request: Any) -> Tuple[bool, Any]:
        """Send one request/response round-trip and do the table bookkeeping.

        A successful round-trip refreshes (or inserts) the responder in the
        routing table and marks this node as having reached the network; a
        failed one increments the responder's failure streak, evicting it
        once the streak hits the staleness limit ``s``.
        """
        transport = self.transport
        if transport is None:
            self._require_bound()
        ok, response = transport.rpc(self.node_id, target_id, request)
        if ok:
            self._ever_connected = True
            self.note_contact(target_id, self._clock())
        else:
            evicted = self.routing_table.record_failure(target_id)
            if evicted and self._obs is not None:
                self._obs.inc("kademlia.evictions")
        return ok, response

    def _reseed_if_isolated(self) -> bool:
        """Re-insert the configured bootstrap contact when cut off.

        Two situations require falling back to the configured bootstrap
        address, which deployed Kademlia nodes keep outside the routing
        table:

        * the routing table has emptied out (every contact evicted after
          failed round-trips, e.g. under heavy message loss with ``s = 1``);
        * the node has never completed a successful outgoing round-trip —
          its initial join failed, so whatever contacts it has accumulated
          since (other newcomers that bootstrapped *from* it) may form an
          island that is invisible to the rest of the network.

        Without this fallback either situation is permanent: the node (or
        its island) can never re-discover the main network, because lookups
        only traverse already-known contacts.  The paper's simulations rely
        on the corresponding recovery — joining nodes "are not able to
        achieve connectivity immediately" (Section 5.8.2) but every node is
        connected once the network stabilises.
        """
        if not self.config.bootstrap_reseed:
            return False
        if self._ever_connected and self.routing_table.contact_count() > 0:
            return False
        if self.bootstrap_id is None or self.bootstrap_id == self.node_id:
            return False
        if self.note_contact(self.bootstrap_id):
            self.reseeds_performed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Server side: handling incoming RPCs
    # ------------------------------------------------------------------
    def handle_request(self, sender_id: int, request: Any) -> Optional[Any]:
        """Dispatch an incoming RPC and return the response payload.

        Every received request also updates the routing table with the
        sender — "when a Kademlia node receives any message from another
        node, it updates the appropriate k-bucket for the sender's node id".

        FIND_NODE is checked first: lookups make it by far the most common
        request, and the dispatch order is observable only through speed
        (the request types are mutually exclusive).
        """
        self.note_contact(sender_id, self._clock())

        if isinstance(request, FindNodeRequest):
            # count defaults to the table's cached bucket size k.
            closest = self.routing_table.closest_contacts(request.target_id)
            return FindNodeResponse(
                responder_id=self.node_id, contacts=tuple(closest)
            )
        if isinstance(request, PingRequest):
            return PongResponse(responder_id=self.node_id)
        if isinstance(request, StoreRequest):
            self.storage.put(request.key_id, request.value, time=self.now)
            return StoreResponse(responder_id=self.node_id, stored=True)
        if isinstance(request, FindValueRequest):
            value = self.storage.get(request.key_id)
            closest = self.routing_table.closest_contacts(
                request.key_id, self.config.bucket_size
            )
            return FindValueResponse(
                responder_id=self.node_id, value=value, contacts=tuple(closest)
            )
        return None

    # ------------------------------------------------------------------
    # Client side: operations initiated by this node
    # ------------------------------------------------------------------
    def ping(self, target_id: int) -> bool:
        """Ping ``target_id``; update the routing table with the outcome."""
        ok, _response = self.rpc(target_id, PingRequest())
        return ok

    def join(self, bootstrap_id: Optional[int]) -> LookupResult:
        """Join the network via ``bootstrap_id``.

        The very first node of a network has no bootstrap node; it simply
        starts with an empty routing table.  Every other node inserts the
        bootstrap contact and performs a lookup for its own identifier,
        which populates its routing table and announces it to the nodes on
        the lookup path (paper Section 5.3).
        """
        self._require_bound()
        if bootstrap_id is not None and bootstrap_id != self.node_id:
            self.bootstrap_id = bootstrap_id
            self.note_contact(bootstrap_id)
        result = self.lookup(self.node_id)
        return result

    def lookup(self, target_id: int) -> LookupResult:
        """Perform one iterative FIND_NODE lookup.

        Under observability each lookup accumulates its per-hop
        virtual-time latency (rounds x RTT + failures x timeout penalty,
        see :mod:`repro.obs.virtualtime`) into the run's registry —
        identity-free, since :class:`LookupResult` already carries the
        round/failure structure either way.
        """
        self._require_bound()
        self._reseed_if_isolated()
        self.lookups_performed += 1
        result = iterative_find_node(self, target_id)
        registry = self._obs
        if registry is not None:
            registry.inc("kademlia.lookups")
            registry.observe(
                "kademlia.lookup.virtual_latency", lookup_virtual_latency(result)
            )
            registry.observe("kademlia.lookup.rounds", result.rounds)
            if result.failures:
                registry.inc("kademlia.lookup.failed_rpcs", result.failures)
        return result

    def disseminate(self, key_id: int, value: Any) -> Tuple[LookupResult, int]:
        """Store ``value`` on the ``k`` nodes closest to ``key_id``.

        Returns the locating lookup's result and the number of nodes that
        acknowledged the STORE.
        """
        self._require_bound()
        self.disseminations_performed += 1
        locate = self.lookup(key_id)
        stored = 0
        for node_id in locate.contacted:
            ok, response = self.rpc(node_id, StoreRequest(key_id=key_id, value=value))
            if ok and isinstance(response, StoreResponse) and response.stored:
                stored += 1
        return locate, stored

    def retrieve(self, key_id: int) -> Optional[Any]:
        """Look up the value stored under ``key_id`` (None if not found)."""
        self._require_bound()
        if self.storage.has(key_id):
            return self.storage.get(key_id)
        locate = self.lookup(key_id)
        for node_id in locate.contacted:
            ok, response = self.rpc(node_id, FindValueRequest(key_id=key_id))
            if ok and isinstance(response, FindValueResponse) and response.found:
                return response.value
        return None

    def bucket_refresh(self, rng: random.Random) -> int:
        """Perform the periodic maintenance refresh (paper: every 60 minutes).

        Looks up a random identifier in the range of each refreshed bucket so
        the node can "learn about previously unknown contacts and stale
        contacts in its routing table".  Returns the number of lookups done.
        """
        self._require_bound()
        self._reseed_if_isolated()
        self.refreshes_performed += 1
        if self._obs is not None:
            self._obs.inc("kademlia.refreshes")
        targets = self.routing_table.refresh_targets(rng)
        for target in targets:
            iterative_find_node(self, target)
        return len(targets)

    def maintenance_refresh(self, rng: random.Random) -> int:
        """The overlay seam's maintenance hook: Kademlia's bucket refresh."""
        return self.bucket_refresh(rng)

    # ------------------------------------------------------------------
    def routing_table_snapshot(self) -> List[int]:
        """Return the current contact ids (the node's row of the snapshot)."""
        return self.routing_table.contact_ids()

    def snapshot_version(self):
        """Version stamp of :meth:`routing_table_snapshot`'s *membership*.

        The incremental connectivity-graph maintainer skips rebuilding a
        node's row while this value is unchanged.  Subclasses that extend
        the snapshot beyond the routing table (e.g. supplemental links)
        must extend the stamp accordingly.
        """
        return self.routing_table.membership_version
