"""Kademlia protocol implementation.

A from-scratch implementation of the Kademlia distributed hash table
(Maymounkov & Mazières, 2002) with exactly the parameters the paper varies:

* ``b`` — identifier bit-length (default 160),
* ``k`` — bucket size / replication factor (default 20),
* ``alpha`` — request parallelism of iterative lookups (default 3),
* ``s`` — staleness limit: consecutive failed round-trips before a contact
  is dropped from the routing table (default 5).

The protocol plugs into the :mod:`repro.simulator` substrate: RPCs travel
through :class:`repro.simulator.transport.Transport`, which applies the
message-loss model and resolves dead nodes.
"""

from repro.kademlia.config import KademliaConfig
from repro.kademlia.contact import Contact
from repro.kademlia.kbucket import KBucket
from repro.kademlia.messages import (
    FindNodeRequest,
    FindNodeResponse,
    FindValueRequest,
    FindValueResponse,
    PingRequest,
    PongResponse,
    StoreRequest,
    StoreResponse,
)
from repro.kademlia.node_id import (
    bucket_index,
    generate_node_id,
    id_from_key,
    random_id_in_bucket,
    xor_distance,
)
from repro.kademlia.protocol import KademliaProtocol
from repro.kademlia.routing_table import RoutingTable
from repro.kademlia.lookup import LookupResult, iterative_find_node
from repro.kademlia.storage import DataStore

__all__ = [
    "Contact",
    "DataStore",
    "FindNodeRequest",
    "FindNodeResponse",
    "FindValueRequest",
    "FindValueResponse",
    "KBucket",
    "KademliaConfig",
    "KademliaProtocol",
    "LookupResult",
    "PingRequest",
    "PongResponse",
    "RoutingTable",
    "StoreRequest",
    "StoreResponse",
    "bucket_index",
    "generate_node_id",
    "id_from_key",
    "iterative_find_node",
    "random_id_in_bucket",
    "xor_distance",
]
