"""Kademlia RPC message types.

The four RPCs of the original protocol — PING, FIND_NODE, FIND_VALUE and
STORE — plus their responses.  Messages are frozen, slotted dataclasses:
value objects the transport passes by reference (the simulation never
serialises them).  ``slots=True`` keeps per-message memory at a few
machine words and makes field access a fixed-offset load, which matters
because one FIND_NODE round-trip is created for every hop of every lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple


@dataclass(frozen=True, slots=True)
class PingRequest:
    """Liveness probe."""


@dataclass(frozen=True, slots=True)
class PongResponse:
    """Answer to a :class:`PingRequest`."""

    responder_id: int


@dataclass(frozen=True, slots=True)
class FindNodeRequest:
    """Ask for the ``k`` contacts closest to ``target_id``."""

    target_id: int


@dataclass(frozen=True, slots=True)
class FindNodeResponse:
    """Contacts closest to the requested target, from the responder's table."""

    responder_id: int
    contacts: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class StoreRequest:
    """Ask the receiver to store a key/value pair."""

    key_id: int
    value: Any


@dataclass(frozen=True, slots=True)
class StoreResponse:
    """Acknowledgement of a :class:`StoreRequest`."""

    responder_id: int
    stored: bool


@dataclass(frozen=True, slots=True)
class FindValueRequest:
    """Ask for the value stored under ``key_id`` (or the closest contacts)."""

    key_id: int


@dataclass(frozen=True, slots=True)
class FindValueResponse:
    """Either the value (if the responder stores it) or the closest contacts."""

    responder_id: int
    value: Optional[Any]
    contacts: Tuple[int, ...]

    @property
    def found(self) -> bool:
        """True if the responder returned the value itself."""
        return self.value is not None
