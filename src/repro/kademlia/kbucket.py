"""A single k-bucket.

Contacts are kept in least-recently-seen order (head = oldest), the order
the original Kademlia paper prescribes.  A full bucket prefers its existing
contacts: a new contact is only admitted if the bucket has room or if an
existing contact has already been detected as stale (failure streak at or
above the staleness limit).  Stale contacts are otherwise removed when the
owning node's communication with them keeps failing — which is exactly the
mechanism behind the paper's observation that churn and message loss "free
up entries in the k-buckets" and thereby *increase* connectivity.

A bucket optionally maintains an external flat ``id -> Contact`` index
shared by every bucket of one routing table (see
:class:`~repro.kademlia.routing_table.RoutingTable`): membership mutations
mirror into it so the table can resolve any contact with a single dict
probe instead of bucket-index arithmetic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kademlia.contact import Contact


class KBucket:
    """Bounded, least-recently-seen-ordered set of contacts."""

    __slots__ = ("index", "capacity", "_contacts", "_table_index")

    def __init__(
        self,
        index: int,
        capacity: int,
        table_index: Optional[Dict[int, Contact]] = None,
    ) -> None:
        self.index = index
        self.capacity = capacity
        self._contacts: Dict[int, Contact] = {}
        # Stand-alone buckets (tests, direct use) mirror into a private
        # dict; table-owned buckets share the table's flat index.
        self._table_index: Dict[int, Contact] = (
            table_index if table_index is not None else {}
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contacts)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._contacts

    @property
    def is_full(self) -> bool:
        """True if the bucket holds ``capacity`` contacts."""
        return len(self._contacts) >= self.capacity

    def contact_ids(self) -> List[int]:
        """Return contact ids in least-recently-seen order."""
        return list(self._contacts)

    def contacts(self) -> List[Contact]:
        """Return contact records in least-recently-seen order."""
        return list(self._contacts.values())

    def get(self, node_id: int) -> Optional[Contact]:
        """Return the contact record for ``node_id`` (None if absent)."""
        return self._contacts.get(node_id)

    def oldest(self) -> Optional[Contact]:
        """Return the least-recently-seen contact (None if empty)."""
        if not self._contacts:
            return None
        return next(iter(self._contacts.values()))

    # ------------------------------------------------------------------
    def touch(self, node_id: int, time: float) -> None:
        """Move ``node_id`` to the most-recently-seen position."""
        contacts = self._contacts
        contact = contacts.pop(node_id)
        contact.last_seen = time
        contact.consecutive_failures = 0
        contacts[node_id] = contact

    def add(self, node_id: int, time: float, staleness_limit: int) -> bool:
        """Try to insert ``node_id``; returns True if it is now in the bucket.

        Insertion policy:

        1. already present → refresh its position and success state;
        2. bucket has room → append as most-recently-seen;
        3. bucket full but some contact is already stale → evict the stale
           contact (preferring the least recently seen one) and insert;
        4. bucket full of non-stale contacts → reject the new contact.
        """
        contacts = self._contacts
        contact = contacts.pop(node_id, None)
        if contact is not None:
            contact.last_seen = time
            contact.consecutive_failures = 0
            contacts[node_id] = contact
            return True
        if len(contacts) >= self.capacity:
            stale_id = self._first_stale(staleness_limit)
            if stale_id is None:
                return False
            del contacts[stale_id]
            del self._table_index[stale_id]
        contact = Contact(
            node_id=node_id,
            last_seen=time,
            added_at=time,
            bucket_contacts=contacts,
        )
        contacts[node_id] = contact
        self._table_index[node_id] = contact
        return True

    def remove(self, node_id: int) -> bool:
        """Remove ``node_id`` from the bucket; True if it was present."""
        if node_id in self._contacts:
            del self._contacts[node_id]
            del self._table_index[node_id]
            return True
        return False

    def record_failure(self, node_id: int, staleness_limit: int) -> bool:
        """Record a failed round-trip with ``node_id``.

        Returns True if the contact crossed the staleness limit and was
        removed from the bucket.
        """
        contact = self._contacts.get(node_id)
        if contact is None:
            return False
        contact.consecutive_failures += 1
        if contact.consecutive_failures >= staleness_limit:
            del self._contacts[node_id]
            del self._table_index[node_id]
            return True
        return False

    def record_success(self, node_id: int, time: float) -> bool:
        """Record a successful round-trip with ``node_id`` (if present)."""
        if node_id not in self._contacts:
            return False
        self.touch(node_id, time)
        return True

    # ------------------------------------------------------------------
    def _first_stale(self, staleness_limit: int) -> Optional[int]:
        """Return the id of the least-recently-seen stale contact, if any."""
        for node_id, contact in self._contacts.items():
            if contact.consecutive_failures >= staleness_limit:
                return node_id
        return None
