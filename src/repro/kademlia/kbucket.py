"""A single k-bucket.

Contacts are kept in least-recently-seen order (head = oldest), the order
the original Kademlia paper prescribes.  A full bucket prefers its existing
contacts: a new contact is only admitted if the bucket has room or if an
existing contact has already been detected as stale (failure streak at or
above the staleness limit).  Stale contacts are otherwise removed when the
owning node's communication with them keeps failing — which is exactly the
mechanism behind the paper's observation that churn and message loss "free
up entries in the k-buckets" and thereby *increase* connectivity.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kademlia.contact import Contact


class KBucket:
    """Bounded, least-recently-seen-ordered set of contacts."""

    __slots__ = ("index", "capacity", "_contacts")

    def __init__(self, index: int, capacity: int) -> None:
        self.index = index
        self.capacity = capacity
        self._contacts: Dict[int, Contact] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._contacts)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._contacts

    @property
    def is_full(self) -> bool:
        """True if the bucket holds ``capacity`` contacts."""
        return len(self._contacts) >= self.capacity

    def contact_ids(self) -> List[int]:
        """Return contact ids in least-recently-seen order."""
        return list(self._contacts)

    def contacts(self) -> List[Contact]:
        """Return contact records in least-recently-seen order."""
        return list(self._contacts.values())

    def get(self, node_id: int) -> Optional[Contact]:
        """Return the contact record for ``node_id`` (None if absent)."""
        return self._contacts.get(node_id)

    def oldest(self) -> Optional[Contact]:
        """Return the least-recently-seen contact (None if empty)."""
        if not self._contacts:
            return None
        return next(iter(self._contacts.values()))

    # ------------------------------------------------------------------
    def touch(self, node_id: int, time: float) -> None:
        """Move ``node_id`` to the most-recently-seen position."""
        contact = self._contacts.pop(node_id)
        contact.record_success(time)
        self._contacts[node_id] = contact

    def add(self, node_id: int, time: float, staleness_limit: int) -> bool:
        """Try to insert ``node_id``; returns True if it is now in the bucket.

        Insertion policy:

        1. already present → refresh its position and success state;
        2. bucket has room → append as most-recently-seen;
        3. bucket full but some contact is already stale → evict the stale
           contact (preferring the least recently seen one) and insert;
        4. bucket full of non-stale contacts → reject the new contact.
        """
        if node_id in self._contacts:
            self.touch(node_id, time)
            return True
        if not self.is_full:
            self._contacts[node_id] = Contact(
                node_id=node_id, last_seen=time, added_at=time
            )
            return True
        stale_id = self._first_stale(staleness_limit)
        if stale_id is not None:
            del self._contacts[stale_id]
            self._contacts[node_id] = Contact(
                node_id=node_id, last_seen=time, added_at=time
            )
            return True
        return False

    def remove(self, node_id: int) -> bool:
        """Remove ``node_id`` from the bucket; True if it was present."""
        if node_id in self._contacts:
            del self._contacts[node_id]
            return True
        return False

    def record_failure(self, node_id: int, staleness_limit: int) -> bool:
        """Record a failed round-trip with ``node_id``.

        Returns True if the contact crossed the staleness limit and was
        removed from the bucket.
        """
        contact = self._contacts.get(node_id)
        if contact is None:
            return False
        contact.record_failure()
        if contact.is_stale(staleness_limit):
            del self._contacts[node_id]
            return True
        return False

    def record_success(self, node_id: int, time: float) -> bool:
        """Record a successful round-trip with ``node_id`` (if present)."""
        if node_id not in self._contacts:
            return False
        self.touch(node_id, time)
        return True

    # ------------------------------------------------------------------
    def _first_stale(self, staleness_limit: int) -> Optional[int]:
        """Return the id of the least-recently-seen stale contact, if any."""
        for node_id, contact in self._contacts.items():
            if contact.is_stale(staleness_limit):
                return node_id
        return None
