"""Empirical validation of the resilience claim (Equation 2).

Given a connectivity graph and an adversary, remove the compromised
vertices and check whether every pair of surviving nodes can still reach
each other.  If the graph's vertex connectivity exceeds the attacker's
budget, Equation 2 guarantees the answer is yes; the evaluation makes that
guarantee testable on concrete snapshots and quantifies how much head-room
a given network has against the different attacker strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.attack.adversary import Adversary
from repro.core.vertex_connectivity import connectivity_statistics
from repro.graph.algorithms.components import strongly_connected_components
from repro.graph.digraph import DiGraph

Vertex = Hashable


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack evaluation.

    Attributes
    ----------
    budget:
        The attacker's node budget ``a``.
    strategy:
        Name of the targeting strategy.
    compromised:
        The nodes that were actually compromised.
    survivors:
        Number of nodes left un-compromised.
    connected:
        True if every ordered pair of surviving nodes still has a directed
        path (the surviving subgraph is strongly connected).
    largest_component_fraction:
        Size of the largest strongly connected component of the surviving
        subgraph divided by the number of survivors — 1.0 when ``connected``.
    predicted_safe:
        The prediction of Equation 2 from the pre-attack connectivity:
        ``kappa(D) > budget``.
    """

    budget: int
    strategy: str
    compromised: List[Vertex]
    survivors: int
    connected: bool
    largest_component_fraction: float
    predicted_safe: Optional[bool] = None

    @property
    def prediction_held(self) -> Optional[bool]:
        """Whether Equation 2's prediction matched the observed outcome.

        ``None`` when no prediction was made.  Note the implication is
        one-directional: ``predicted_safe`` guarantees ``connected``, while
        a network predicted unsafe may still survive a particular attack.
        """
        if self.predicted_safe is None:
            return None
        if self.predicted_safe:
            return self.connected
        return True


def _surviving_subgraph(graph: DiGraph, compromised: Sequence[Vertex]) -> DiGraph:
    """Return a copy of ``graph`` with the compromised vertices removed."""
    removed = set(compromised)
    survivor_graph = DiGraph()
    for vertex in graph.vertices():
        if vertex not in removed:
            survivor_graph.add_vertex(vertex)
    for source, target, capacity in graph.edges():
        if source not in removed and target not in removed:
            survivor_graph.add_edge(source, target, capacity=capacity)
    return survivor_graph


def evaluate_attack(
    graph: DiGraph,
    adversary: Adversary,
    pre_attack_connectivity: Optional[int] = None,
) -> AttackOutcome:
    """Run one attack on ``graph`` and report the outcome.

    Parameters
    ----------
    graph:
        The connectivity graph of a snapshot.
    adversary:
        The attacker (budget + strategy).
    pre_attack_connectivity:
        Optionally the already-computed ``kappa(D)``; when given, the
        outcome also records whether Equation 2 predicted survival.
    """
    compromised = adversary.choose_targets(graph)
    survivors_graph = _surviving_subgraph(graph, compromised)
    survivor_count = survivors_graph.number_of_vertices()

    if survivor_count == 0:
        connected = False
        largest_fraction = 0.0
    elif survivor_count == 1:
        connected = True
        largest_fraction = 1.0
    else:
        components = strongly_connected_components(survivors_graph)
        largest = max(len(component) for component in components)
        connected = largest == survivor_count
        largest_fraction = largest / survivor_count

    predicted = (
        None
        if pre_attack_connectivity is None
        else pre_attack_connectivity > adversary.budget
    )
    return AttackOutcome(
        budget=adversary.budget,
        strategy=adversary.strategy_name,
        compromised=list(compromised),
        survivors=survivor_count,
        connected=connected,
        largest_component_fraction=largest_fraction,
        predicted_safe=predicted,
    )


def resilience_curve(
    graph: DiGraph,
    budgets: Sequence[int],
    strategy: str = "random",
    trials: int = 5,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Survival probability as a function of the attacker budget.

    For every budget the attack is repeated ``trials`` times with different
    attacker seeds; the returned rows contain the fraction of trials in
    which the surviving network stayed strongly connected and the mean size
    of the largest surviving component.  The paper's Equation 2 predicts a
    survival probability of 1.0 for every budget strictly below ``kappa(D)``
    regardless of the strategy.
    """
    kappa = connectivity_statistics(graph, use_cutoff=True, sample_fraction=None).minimum
    rows: List[Dict[str, float]] = []
    for budget in budgets:
        survived = 0
        fractions = []
        for trial in range(trials):
            adversary = Adversary(budget=budget, strategy=strategy,
                                  seed=seed * 1000 + trial)
            outcome = evaluate_attack(graph, adversary, pre_attack_connectivity=kappa)
            survived += int(outcome.connected)
            fractions.append(outcome.largest_component_fraction)
        rows.append(
            {
                "budget": budget,
                "strategy": strategy,
                "survival_rate": survived / trials,
                "mean_largest_component": sum(fractions) / len(fractions),
                "predicted_safe": kappa > budget,
                "connectivity": kappa,
            }
        )
    return rows
