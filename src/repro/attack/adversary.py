"""Adversary strategies: which nodes does the attacker compromise?

The paper only bounds the attacker's budget ``a`` and derives the worst case
from the graph connectivity (any ``a`` nodes can be compromised).  For the
empirical validation it is useful to instantiate concrete strategies:

* ``random`` — the baseline corresponding to uncorrelated failures
  (maintenance, defects, power outages; Section 3 notes these are
  indistinguishable from attacks);
* ``highest-degree`` — a strong heuristic attacker going after the
  best-connected nodes;
* ``lowest-degree`` — targets poorly connected nodes (cheap to isolate);
* ``min-cut`` — the strongest attacker considered here: compromises an
  actual minimum vertex cut between some weakly connected pair, i.e. it
  realises the bound of Equation 2 with equality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Hashable, List

from repro.core.vertex_connectivity import (
    lowest_in_degree_vertices,
    lowest_out_degree_vertices,
)
from repro.graph.digraph import DiGraph
from repro.graph.maxflow.dinic import dinic_on_network
from repro.graph.maxflow.residual import ResidualNetwork
from repro.graph.transform.even_transform import even_transform

Vertex = Hashable
Strategy = Callable[[DiGraph, int, random.Random], List[Vertex]]


def random_strategy(graph: DiGraph, budget: int, rng: random.Random) -> List[Vertex]:
    """Compromise ``budget`` uniformly random nodes."""
    vertices = graph.vertices()
    budget = min(budget, len(vertices))
    return rng.sample(vertices, budget)


def highest_degree_strategy(
    graph: DiGraph, budget: int, rng: random.Random
) -> List[Vertex]:
    """Compromise the nodes with the highest total (in + out) degree."""
    ranked = sorted(
        graph.vertices(),
        key=lambda v: graph.in_degree(v) + graph.out_degree(v),
        reverse=True,
    )
    return ranked[:budget]


def lowest_degree_strategy(
    graph: DiGraph, budget: int, rng: random.Random
) -> List[Vertex]:
    """Compromise the nodes with the lowest total degree."""
    ranked = sorted(
        graph.vertices(), key=lambda v: graph.in_degree(v) + graph.out_degree(v)
    )
    return ranked[:budget]


def min_cut_strategy(graph: DiGraph, budget: int, rng: random.Random) -> List[Vertex]:
    """Compromise a minimum vertex cut (up to ``budget`` nodes).

    The strategy picks the weakest-looking source/target pair (smallest
    out-degree source, smallest in-degree target, non-adjacent), computes a
    minimum vertex cut between them via the Even-transformed max flow, and
    compromises the cut vertices.  If the cut is larger than the budget the
    lexicographically first ``budget`` cut vertices are taken (the attack is
    then expected to fail, which the evaluation will report).
    """
    n = graph.number_of_vertices()
    if n < 3 or budget <= 0:
        return []
    # Vertices with no outgoing (or incoming) edges are already cut off; a
    # cut between them and anyone else is empty and not worth attacking.
    sources = [
        v for v in lowest_out_degree_vertices(graph, max(3, n // 10) + n)
        if graph.out_degree(v) > 0
    ][: max(3, n // 10)]
    targets = [
        v for v in lowest_in_degree_vertices(graph, max(3, n // 10) + n)
        if graph.in_degree(v) > 0
    ][: max(3, n // 10)]
    pair = None
    for source in sources:
        for target in targets:
            if source != target and not graph.has_edge(source, target):
                pair = (source, target)
                break
        if pair:
            break
    if pair is None:
        return random_strategy(graph, budget, rng)

    source, target = pair
    transform = even_transform(graph)
    # For *extracting* the cut (not just its size) the original edges get an
    # effectively infinite capacity so the minimum cut consists of internal
    # (v' -> v'') edges only, i.e. of vertices.
    for edge_source, edge_target, _capacity in graph.edges():
        transform.graph.add_edge(
            transform.outgoing[edge_source],
            transform.incoming[edge_target],
            capacity=float(n),
        )
    network = ResidualNetwork(transform.graph)
    flow_source = network.index_of(transform.outgoing[source])
    flow_target = network.index_of(transform.incoming[target])
    dinic_on_network(network, flow_source, flow_target)

    # Vertices whose internal edge (v' -> v'') is saturated and that lie on
    # the source side of the residual cut form a minimum vertex cut.
    reachable = set(network.min_cut_reachable(flow_source))
    cut: List[Vertex] = []
    for vertex in graph.vertices():
        if vertex in (source, target):
            continue
        v_in = network.index_of(transform.incoming[vertex])
        v_out = network.index_of(transform.outgoing[vertex])
        if v_in in reachable and v_out not in reachable:
            cut.append(vertex)
    if not cut:
        return random_strategy(graph, budget, rng)
    return cut[:budget]


_STRATEGIES = {
    "random": random_strategy,
    "highest-degree": highest_degree_strategy,
    "lowest-degree": lowest_degree_strategy,
    "min-cut": min_cut_strategy,
}


@dataclass
class Adversary:
    """An attacker with a node budget and a target-selection strategy.

    Parameters
    ----------
    budget:
        Maximum number of nodes the attacker can compromise at any time
        (the paper's ``a``).
    strategy:
        Either a strategy name (``"random"``, ``"highest-degree"``,
        ``"lowest-degree"``, ``"min-cut"``) or a callable
        ``(graph, budget, rng) -> list of vertices``.
    seed:
        Seed of the attacker's own random stream.
    """

    budget: int
    strategy: object = "random"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError(f"attacker budget must be non-negative, got {self.budget}")
        if isinstance(self.strategy, str):
            if self.strategy not in _STRATEGIES:
                raise ValueError(
                    f"unknown strategy {self.strategy!r}; "
                    f"available: {sorted(_STRATEGIES)}"
                )
            self._select: Strategy = _STRATEGIES[self.strategy]
        elif callable(self.strategy):
            self._select = self.strategy  # type: ignore[assignment]
        else:
            raise TypeError("strategy must be a name or a callable")
        self._rng = random.Random(self.seed)

    @property
    def strategy_name(self) -> str:
        """Human-readable strategy name."""
        return self.strategy if isinstance(self.strategy, str) else getattr(
            self.strategy, "__name__", "custom"
        )

    def choose_targets(self, graph: DiGraph) -> List[Vertex]:
        """Return the nodes the adversary compromises on ``graph``."""
        if self.budget == 0 or graph.number_of_vertices() == 0:
            return []
        targets = self._select(graph, self.budget, self._rng)
        return targets[: self.budget]
