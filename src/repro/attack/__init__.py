"""Attacker model and empirical resilience validation.

The paper's system model (Section 3) assumes an attacker who can compromise
up to ``a`` nodes at any time; a compromised node can impersonate the node
and refuse to forward or answer requests.  Equation 2 states that a network
whose connectivity graph has vertex connectivity ``kappa(D) > a`` still
offers a communication path between every pair of un-compromised nodes.

This package makes that claim executable:

* :mod:`repro.attack.adversary` — strategies for choosing which nodes to
  compromise (random, highest-degree, lowest-degree, targeted cut);
* :mod:`repro.attack.evaluation` — remove the compromised vertices from a
  connectivity graph and check whether the surviving nodes can still reach
  each other, empirically validating (or falsifying) the resilience
  prediction for concrete snapshots.
"""

from repro.attack.adversary import (
    Adversary,
    highest_degree_strategy,
    lowest_degree_strategy,
    min_cut_strategy,
    random_strategy,
)
from repro.attack.evaluation import AttackOutcome, evaluate_attack, resilience_curve

__all__ = [
    "Adversary",
    "AttackOutcome",
    "evaluate_attack",
    "highest_degree_strategy",
    "lowest_degree_strategy",
    "min_cut_strategy",
    "random_strategy",
    "resilience_curve",
]
