"""Message-loss scenarios (paper Table 1).

The paper defines loss in terms of the probability that a *two-way*
request/response exchange fails, and derives the per-one-way-message
probability from it: ``P_2way = 1 - (1 - P_1way)**2``.  The four scenarios:

=========  ============  ============
scenario   P_loss 1-way  P_loss 2-way
=========  ============  ============
none            0.0 %          0 %
low             2.5 %          5 %
medium         13.4 %         25 %
high           29.3 %         50 %
=========  ============  ============
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MessageLossModel:
    """A named per-one-way-message Bernoulli loss probability."""

    name: str
    one_way_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.one_way_probability < 1.0:
            raise ValueError(
                f"one_way_probability must be in [0, 1), got {self.one_way_probability}"
            )

    @property
    def two_way_probability(self) -> float:
        """Probability that a request/response round-trip fails due to loss."""
        return 1.0 - (1.0 - self.one_way_probability) ** 2

    @classmethod
    def from_two_way(cls, name: str, two_way_probability: float) -> "MessageLossModel":
        """Build a model from the two-way failure probability.

        Inverts ``P_2way = 1 - (1 - P_1way)**2``, which is how the paper's
        Table 1 derives the 2.5 / 13.4 / 29.3 % one-way values from the
        5 / 25 / 50 % two-way targets.
        """
        if not 0.0 <= two_way_probability < 1.0:
            raise ValueError(
                f"two_way_probability must be in [0, 1), got {two_way_probability}"
            )
        one_way = 1.0 - math.sqrt(1.0 - two_way_probability)
        return cls(name=name, one_way_probability=one_way)


#: The paper's four loss scenarios, keyed by name.  One-way probabilities are
#: quoted exactly as printed in Table 1 (rounded to 0.1 %).
LOSS_SCENARIOS: Dict[str, MessageLossModel] = {
    "none": MessageLossModel("none", 0.0),
    "low": MessageLossModel("low", 0.025),
    "medium": MessageLossModel("medium", 0.134),
    "high": MessageLossModel("high", 0.293),
}


def get_loss_model(name: str) -> MessageLossModel:
    """Return the named loss scenario; raises ``KeyError`` with guidance."""
    try:
        return LOSS_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown loss scenario {name!r}; available: {sorted(LOSS_SCENARIOS)}"
        ) from None
