"""Data-traffic model.

In the paper's "with data traffic" scenarios every node performs 10 lookup
procedures and 1 dissemination procedure per minute, at random points in
time within the minute (Section 5.3).  Without data traffic only the
periodic bucket refresh generates messages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

#: Action kinds produced by :meth:`TrafficModel.minute_actions`.
LOOKUP = "lookup"
DISSEMINATE = "disseminate"


@dataclass(frozen=True)
class TrafficModel:
    """Per-node, per-minute traffic rates.

    Attributes
    ----------
    enabled:
        False models the paper's "without data traffic" scenarios.
    lookups_per_node_per_minute / disseminations_per_node_per_minute:
        Rates used when traffic is enabled.  The paper uses 10 and 1; the
        scaled benchmark profiles reduce the lookup rate proportionally to
        the compressed time axis (see ``repro.experiments.profiles``).
    """

    enabled: bool = True
    lookups_per_node_per_minute: float = 10.0
    disseminations_per_node_per_minute: float = 1.0

    def __post_init__(self) -> None:
        if self.lookups_per_node_per_minute < 0:
            raise ValueError("lookup rate must be non-negative")
        if self.disseminations_per_node_per_minute < 0:
            raise ValueError("dissemination rate must be non-negative")

    @classmethod
    def disabled(cls) -> "TrafficModel":
        """The paper's "without data traffic" scenario."""
        return cls(enabled=False, lookups_per_node_per_minute=0.0,
                   disseminations_per_node_per_minute=0.0)

    @classmethod
    def paper_default(cls) -> "TrafficModel":
        """10 lookups and 1 dissemination per node and minute."""
        return cls(enabled=True)

    def minute_actions(
        self, minute_start: float, rng: random.Random
    ) -> List[Tuple[float, str]]:
        """Return one node's traffic actions for one minute, time-ordered.

        Fractional rates are handled stochastically: a rate of 2.5 performs
        2 actions plus a third with probability 0.5, which is how the scaled
        profiles keep the *expected* per-minute load proportional.
        """
        if not self.enabled:
            return []
        actions: List[Tuple[float, str]] = []
        for rate, kind in (
            (self.lookups_per_node_per_minute, LOOKUP),
            (self.disseminations_per_node_per_minute, DISSEMINATE),
        ):
            count = int(rate)
            if rng.random() < rate - count:
                count += 1
            actions.extend((minute_start + rng.random(), kind) for _ in range(count))
        actions.sort(key=lambda pair: pair[0])
        return actions
