"""Bootstrap (network setup) procedure.

The paper's final setup procedure (Section 5.3): every node joins at a
random point in time uniformly distributed over the setup phase (0 to 30
minutes), and its bootstrap node is chosen uniformly at random from the
nodes that have already joined.  The very first node to join has no
bootstrap node.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.simulator.network import Network


@dataclass(frozen=True)
class BootstrapSchedule:
    """Join times for the initial network population."""

    join_times: List[float]

    @classmethod
    def uniform(
        cls, node_count: int, setup_duration: float, rng: random.Random
    ) -> "BootstrapSchedule":
        """Draw ``node_count`` join times uniformly over ``[0, setup_duration)``.

        The returned times are sorted, so the i-th joining node can be
        bootstrapped from any of the previous ``i - 1`` nodes.
        """
        if node_count <= 0:
            raise ValueError("node_count must be positive")
        if setup_duration <= 0:
            raise ValueError("setup_duration must be positive")
        times = sorted(rng.uniform(0.0, setup_duration) for _ in range(node_count))
        return cls(join_times=times)

    def __len__(self) -> int:
        return len(self.join_times)


class RandomBootstrapPolicy:
    """Pick a uniformly random already-joined node as the bootstrap contact."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def select(self, network: Network, joining_id: int) -> Optional[int]:
        """Return the bootstrap node id for ``joining_id`` (None for the first node)."""
        candidate = network.random_alive_node(self._rng, exclude=joining_id)
        return candidate.node_id if candidate is not None else None
