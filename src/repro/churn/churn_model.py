"""Churn scenarios.

The paper uses three churn scenarios, written ``adds/removes`` per simulated
minute: ``0/1`` (one node leaves per minute, none join), ``1/1`` and
``10/10``.  Actions happen "at random points in time within each minute
range" (Section 5.3); :meth:`ChurnScenario.minute_actions` reproduces that by
drawing one uniform time per action inside the minute and interleaving joins
and leaves in time order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Action kinds produced by :meth:`ChurnScenario.minute_actions`.
JOIN = "join"
LEAVE = "leave"


@dataclass(frozen=True)
class ChurnScenario:
    """A per-minute node join/leave rate."""

    name: str
    joins_per_minute: int
    leaves_per_minute: int

    def __post_init__(self) -> None:
        if self.joins_per_minute < 0 or self.leaves_per_minute < 0:
            raise ValueError("churn rates must be non-negative")

    @property
    def is_active(self) -> bool:
        """True if the scenario adds or removes any nodes at all."""
        return self.joins_per_minute > 0 or self.leaves_per_minute > 0

    def minute_actions(
        self, minute_start: float, rng: random.Random
    ) -> List[Tuple[float, str]]:
        """Return the churn actions of one minute as ``(time, kind)`` pairs.

        Times are uniform in ``[minute_start, minute_start + 1)`` and the
        returned list is sorted by time, so joins and leaves interleave the
        way they would in a real deployment.
        """
        actions = [
            (minute_start + rng.random(), JOIN) for _ in range(self.joins_per_minute)
        ]
        actions.extend(
            (minute_start + rng.random(), LEAVE)
            for _ in range(self.leaves_per_minute)
        )
        actions.sort(key=lambda pair: pair[0])
        return actions

    @classmethod
    def parse(cls, spec: str) -> "ChurnScenario":
        """Parse an ``"adds/removes"`` string such as ``"10/10"``."""
        parts = spec.split("/")
        if len(parts) != 2:
            raise ValueError(f"churn spec must look like 'adds/removes', got {spec!r}")
        joins, leaves = int(parts[0]), int(parts[1])
        return cls(name=spec, joins_per_minute=joins, leaves_per_minute=leaves)


#: The paper's churn scenarios plus the churn-free baseline used by
#: Simulation J.
CHURN_SCENARIOS: Dict[str, ChurnScenario] = {
    "none": ChurnScenario("none", 0, 0),
    "0/1": ChurnScenario("0/1", 0, 1),
    "1/1": ChurnScenario("1/1", 1, 1),
    "10/10": ChurnScenario("10/10", 10, 10),
}


def get_churn_scenario(name: str) -> ChurnScenario:
    """Return a named (or parseable) churn scenario."""
    if name in CHURN_SCENARIOS:
        return CHURN_SCENARIOS[name]
    return ChurnScenario.parse(name)
