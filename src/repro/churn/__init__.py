"""Environment models: bootstrap, churn, traffic and message loss.

These correspond to the "dimensions" of the paper's evaluation
(Section 5.3): network churn, network traffic and message loss, plus the
random bootstrap procedure used during the setup phase.
"""

from repro.churn.bootstrap import BootstrapSchedule, RandomBootstrapPolicy
from repro.churn.churn_model import (
    CHURN_SCENARIOS,
    ChurnScenario,
    get_churn_scenario,
)
from repro.churn.loss import LOSS_SCENARIOS, MessageLossModel, get_loss_model
from repro.churn.traffic import TrafficModel

__all__ = [
    "BootstrapSchedule",
    "CHURN_SCENARIOS",
    "ChurnScenario",
    "LOSS_SCENARIOS",
    "MessageLossModel",
    "RandomBootstrapPolicy",
    "TrafficModel",
    "get_churn_scenario",
    "get_loss_model",
]
