"""Text rendering of figure data.

The paper's figures are line charts; the benchmark harness regenerates the
underlying series and prints them as aligned tables (one row per snapshot
time, one column per curve) plus an optional coarse ASCII chart, so the
shape of each curve can be eyeballed directly from the benchmark output.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence


def render_series_table(
    times: Sequence[float],
    series: Mapping[str, Sequence[float]],
    float_format: str = "{:.1f}",
    time_label: str = "time (min)",
) -> str:
    """Render aligned columns: time plus one column per named series.

    All series must have the same length as ``times``.
    """
    for name, values in series.items():
        if len(values) != len(times):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(times)} times"
            )
    headers = [time_label] + list(series)
    rows: List[List[str]] = []
    for i, t in enumerate(times):
        row = [float_format.format(t)]
        for name in series:
            row.append(float_format.format(series[name][i]))
        rows.append(row)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.rjust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_ascii_chart(
    values: Sequence[float],
    height: int = 10,
    label: str = "",
) -> str:
    """Render a single series as a coarse ASCII bar chart (one column per value)."""
    if height <= 0:
        raise ValueError("height must be positive")
    if not values:
        return f"{label}(empty series)"
    top = max(values)
    if top <= 0:
        top = 1.0
    lines: List[str] = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        row = "".join("█" if value >= threshold else " " for value in values)
        lines.append(f"{threshold:8.1f} |{row}")
    lines.append(" " * 9 + "+" + "-" * len(values))
    if label:
        lines.insert(0, label)
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a generic table with string conversion and right alignment."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in str_rows)) if str_rows else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(headers[i].rjust(widths[i]) for i in range(len(headers))),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
