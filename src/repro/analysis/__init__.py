"""Statistics and reporting helpers for the evaluation."""

from repro.analysis.statistics import (
    mean,
    population_variance,
    relative_variance,
    sample_variance,
    standard_deviation,
    summarize,
)
from repro.analysis.figures import render_series_table, render_ascii_chart

__all__ = [
    "mean",
    "population_variance",
    "relative_variance",
    "render_ascii_chart",
    "render_series_table",
    "sample_variance",
    "standard_deviation",
    "summarize",
]
