"""Structural metrics of connectivity graphs.

The paper's related work (Salah & Strufe; Salah, Roos & Strufe) characterises
KAD/Kademlia connectivity graphs statistically instead of computing the
exact vertex connectivity.  These metrics complement the exact analysis in
:mod:`repro.core`: they are cheap, they explain *why* a snapshot has low or
high connectivity (degree floors, asymmetry, unreachable nodes), and the
examples print them next to the connectivity report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

from repro.analysis.statistics import mean
from repro.graph.algorithms.components import strongly_connected_components
from repro.graph.algorithms.traversal import bfs_distances
from repro.graph.digraph import DiGraph

Vertex = Hashable


@dataclass(frozen=True)
class DegreeDistribution:
    """Summary of a degree sequence."""

    minimum: int
    maximum: int
    average: float
    median: float
    percentile_5: float
    percentile_95: float

    @classmethod
    def from_degrees(cls, degrees: Sequence[int]) -> "DegreeDistribution":
        """Summarise a non-empty degree sequence."""
        if not degrees:
            return cls(0, 0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(degrees)
        return cls(
            minimum=ordered[0],
            maximum=ordered[-1],
            average=mean(ordered),
            median=_percentile(ordered, 0.5),
            percentile_5=_percentile(ordered, 0.05),
            percentile_95=_percentile(ordered, 0.95),
        )


def _percentile(ordered: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return float(ordered[index])


@dataclass(frozen=True)
class GraphMetrics:
    """Structural snapshot metrics reported next to the connectivity."""

    vertex_count: int
    edge_count: int
    in_degrees: DegreeDistribution
    out_degrees: DegreeDistribution
    reciprocity: float
    strongly_connected_components: int
    largest_scc_fraction: float
    estimated_average_path_length: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary representation (for reports)."""
        return {
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "min_in_degree": self.in_degrees.minimum,
            "mean_in_degree": round(self.in_degrees.average, 2),
            "max_in_degree": self.in_degrees.maximum,
            "min_out_degree": self.out_degrees.minimum,
            "mean_out_degree": round(self.out_degrees.average, 2),
            "max_out_degree": self.out_degrees.maximum,
            "reciprocity": round(self.reciprocity, 3),
            "strongly_connected_components": self.strongly_connected_components,
            "largest_scc_fraction": round(self.largest_scc_fraction, 3),
            "estimated_average_path_length": (
                None
                if self.estimated_average_path_length is None
                else round(self.estimated_average_path_length, 2)
            ),
        }


def compute_graph_metrics(
    graph: DiGraph,
    path_length_samples: int = 20,
    rng: Optional[random.Random] = None,
) -> GraphMetrics:
    """Compute :class:`GraphMetrics` for a connectivity graph.

    ``path_length_samples`` BFS runs from random sources estimate the
    average shortest-path hop count (``None`` for graphs with fewer than two
    vertices); Kademlia's design goal is O(log n) hops, which the examples
    use as a sanity check of the simulated networks.
    """
    vertices = graph.vertices()
    n = len(vertices)
    in_degrees = [graph.in_degree(v) for v in vertices]
    out_degrees = [graph.out_degree(v) for v in vertices]

    if n == 0:
        scc_count = 0
        largest_fraction = 0.0
    else:
        components = strongly_connected_components(graph)
        scc_count = len(components)
        largest_fraction = max(len(c) for c in components) / n

    average_path_length = _estimate_average_path_length(
        graph, path_length_samples, rng or random.Random(0)
    )

    return GraphMetrics(
        vertex_count=n,
        edge_count=graph.number_of_edges(),
        in_degrees=DegreeDistribution.from_degrees(in_degrees),
        out_degrees=DegreeDistribution.from_degrees(out_degrees),
        reciprocity=graph.symmetry_ratio(),
        strongly_connected_components=scc_count,
        largest_scc_fraction=largest_fraction,
        estimated_average_path_length=average_path_length,
    )


def _estimate_average_path_length(
    graph: DiGraph, samples: int, rng: random.Random
) -> Optional[float]:
    """Mean hop distance over BFS trees from up to ``samples`` random sources."""
    vertices = graph.vertices()
    if len(vertices) < 2 or samples <= 0:
        return None
    sources = vertices if len(vertices) <= samples else rng.sample(vertices, samples)
    distances: List[int] = []
    for source in sources:
        reached = bfs_distances(graph, source)
        distances.extend(d for target, d in reached.items() if target != source)
    if not distances:
        return None
    return mean(distances)


def routing_table_occupancy(
    routing_tables: Dict[int, Sequence[int]], bucket_capacity: int
) -> Dict[str, float]:
    """Occupancy statistics of a snapshot's routing tables.

    Reports how full the tables are relative to a single bucket's capacity
    ``k`` — the quantity the paper's connectivity levels track ("the network
    connectivity strongly correlates with the bucket size k").
    """
    if bucket_capacity <= 0:
        raise ValueError("bucket_capacity must be positive")
    sizes = [len(contacts) for contacts in routing_tables.values()]
    if not sizes:
        return {"nodes": 0, "mean_contacts": 0.0, "min_contacts": 0,
                "max_contacts": 0, "mean_buckets_worth": 0.0}
    return {
        "nodes": len(sizes),
        "mean_contacts": mean(sizes),
        "min_contacts": min(sizes),
        "max_contacts": max(sizes),
        "mean_buckets_worth": mean(sizes) / bucket_capacity,
    }
