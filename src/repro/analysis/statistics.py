"""Basic statistics used by the evaluation tables.

The only non-standard quantity is the *relative variance* (RV), defined by
the paper as variance divided by mean (Table 2).  The paper uses it to show
that stronger churn increases the variability of the minimum connectivity
relative to its level.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def population_variance(values: Sequence[float]) -> float:
    """Population variance (divide by N)."""
    if not values:
        raise ValueError("variance of an empty sequence is undefined")
    mu = mean(values)
    return sum((value - mu) ** 2 for value in values) / len(values)


def sample_variance(values: Sequence[float]) -> float:
    """Sample variance (divide by N - 1); needs at least two values."""
    if len(values) < 2:
        raise ValueError("sample variance needs at least two values")
    mu = mean(values)
    return sum((value - mu) ** 2 for value in values) / (len(values) - 1)


def standard_deviation(values: Sequence[float]) -> float:
    """Population standard deviation."""
    return math.sqrt(population_variance(values))


def relative_variance(values: Sequence[float]) -> float:
    """Variance divided by mean — the paper's "RV" statistic (Table 2).

    Defined as 0.0 when the sequence is empty or its mean is 0; the paper
    reports RV = 0.00 for the size-2500, k=5 rows whose minimum
    connectivity is zero throughout the churn phase.
    """
    if not values:
        return 0.0
    mu = mean(values)
    if mu == 0:
        return 0.0
    return population_variance(values) / mu


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return a small summary dictionary (count/mean/min/max/variance/RV)."""
    if not values:
        return {
            "count": 0,
            "mean": 0.0,
            "min": 0.0,
            "max": 0.0,
            "variance": 0.0,
            "relative_variance": 0.0,
        }
    return {
        "count": len(values),
        "mean": mean(values),
        "min": min(values),
        "max": max(values),
        "variance": population_variance(values),
        "relative_variance": relative_variance(values),
    }
