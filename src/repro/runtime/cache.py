"""Content-addressed on-disk cache of experiment results.

Every entry is one JSON document named after the task's content hash
(:meth:`repro.runtime.task.ExperimentTask.key`) and contains both the task
fingerprint and the result serialised through
:mod:`repro.experiments.persistence`.  Storing the fingerprint alongside the
result lets :meth:`ResultCache.get` verify that an entry really belongs to
the requesting task (guarding against fingerprint-format drift) and lets
``cache info`` describe what is in the cache without re-deriving anything.

The cache can be size-capped (``max_bytes``): after every store the
least-recently-used entries are evicted until the directory fits the cap
again.  Recency is tracked through file modification times — a hit
(``get``) *and* a positive existence probe (``contains``) touch the
entry — so the policy survives process restarts without any index file.
Cumulative eviction / dropped-store counters are persisted in a
``_meta.json`` sidecar (never counted as an entry) and surfaced by
``cache info``.  The campaign scheduler's cost model lives in a sibling
``_costs.json`` sidecar (see :mod:`repro.runtime.costmodel`), equally
outside the entry namespace.

Integrity tier: every entry written by :meth:`ResultCache.put` carries a
``checksum`` field — SHA-256 over the canonical serialisation of the
rest of the document — verified by :meth:`ResultCache.get`.  An entry
that fails the checksum, fails to parse, or mismatches the requesting
fingerprint is **quarantined** (moved into a ``quarantine/``
subdirectory, counted in the persistent ``corrupt_entries`` stat) and
treated as a miss: the campaign recomputes and overwrites instead of
crashing, and the corrupt bytes stay available for post-mortems.
``repro cache verify`` scans a whole directory through
:meth:`ResultCache.verify`.  Entries predating the checksum field are
accepted as legacy (structure-checked only).

Shared tier: a cache constructed with ``remote=`` (any object with
``get_raw``/``put_raw``, e.g. :class:`repro.runtime.distributed.
RemoteCacheTier`) uses its own directory as the L1 and the remote as a
second tier — local misses consult the remote, verified hits are
re-checksummed and filled into the L1 atomically, and every local store
is pushed best-effort.  A corrupt or unreachable remote can never fail
a lookup: the worst case is a recompute.  ``shard_depth`` spreads
entries over ``key[:depth]/`` subdirectories so a shared directory
written by a whole fleet does not collapse into one giant flat dir;
reads fall back to the flat layout, so enabling sharding on an existing
directory is safe.  Concurrent writers need no lock in either layout:
the key is a content hash (two writers of one key write identical
bytes) and the atomic tmp-file + ``rename`` publish means readers see
either nothing or a complete entry.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.runner import ExperimentResult
from repro.runtime import faults
from repro.runtime.task import ExperimentTask

PathLike = Union[str, Path]

#: Suffix of every cache entry file.
ENTRY_SUFFIX = ".json"

#: Sidecar file holding cumulative cache metadata (eviction counter).
META_FILENAME = "_meta.json"

#: Entry field holding the SHA-256 over the rest of the document.
CHECKSUM_FIELD = "checksum"

#: Subdirectory corrupt entries are moved into (outside the entry
#: namespace: ``_entry_paths`` never descends into directories).
QUARANTINE_DIRNAME = "quarantine"

#: Temporary-file patterns of the cache's own atomic writers (entries,
#: ``_meta.json``, ``_costs.json``).
TMP_PATTERNS = ("*.tmp", "*.metatmp", "*.coststmp")

#: Age (mtime seconds) past which a leftover temporary file is considered
#: the debris of a dead writer and swept on :class:`ResultCache` open.
#: Live writers hold their temp files for milliseconds; an hour-old one
#: belongs to a process that crashed mid-put.
STALE_TMP_SECONDS = 3600.0

#: Counters batched by :meth:`ResultCache.sync_persistent_stats` instead
#: of being written per event: ``get`` is a hot path (one lookup per
#: campaign task), so its counters flush once per campaign run rather
#: than once per hit.  ``evictions``/``stores_dropped`` keep their
#: per-event persistence — they are rare and must survive crashes.
SYNCED_STAT_NAMES = ("hits", "misses", "stores", "bytes_served")

logger = logging.getLogger("repro.runtime.cache")


def _verify_entry_bytes(raw: bytes) -> str:
    """Classify raw entry bytes: ``"ok"`` / ``"legacy"`` / ``"corrupt"``.

    The shared verification core of :meth:`ResultCache._verify_entry`
    (local scans) and the shared-tier raw path (remote reads and
    writes), so every tier applies byte-identical acceptance rules.
    """
    try:
        document = json.loads(raw)
    except ValueError:
        return "corrupt"
    if not isinstance(document, dict):
        return "corrupt"
    checksum = document.pop(CHECKSUM_FIELD, None)
    if "task" not in document or "result" not in document:
        return "corrupt"
    if checksum is None:
        return "legacy"
    if checksum != _document_checksum(document):
        return "corrupt"
    return "ok"


def _document_checksum(document: dict) -> str:
    """SHA-256 over the canonical serialisation of an entry document.

    Computed before the ``checksum`` field is added (and after it is
    popped, on read).  Canonical form — sorted keys, no whitespace — so
    the digest is independent of the field order the file happened to be
    written with.
    """
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance.

    ``stores_dropped`` counts stores whose entry exceeded the size cap on
    its own and therefore never persisted (see :meth:`ResultCache.put`);
    such a store is *not* counted as an eviction.  ``bytes_served`` is
    the cumulative on-disk size of every entry served by a hit — the
    simulation work the cache saved, in bytes read instead of re-run.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    stores_dropped: int = 0
    bytes_served: int = 0
    corrupt_entries: int = 0
    remote_hits: int = 0
    remote_misses: int = 0
    remote_puts: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@dataclass(frozen=True)
class CacheInfo:
    """Summary of the on-disk state of a cache directory.

    ``evictions`` is the cumulative number of size-cap evictions ever
    performed on this directory and ``stores_dropped`` the cumulative
    number of stores whose single entry exceeded the cap (both persisted
    across processes); ``max_bytes`` echoes the cap of the inspecting
    cache instance (``None`` = uncapped).
    """

    path: str
    entries: int
    total_bytes: int
    evictions: int = 0
    stores_dropped: int = 0
    max_bytes: Optional[int] = None
    hits: int = 0
    misses: int = 0
    bytes_served: int = 0
    corrupt_entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of lookups served from this directory."""
        lookups = self.hits + self.misses
        if not lookups:
            return 0.0
        return self.hits / lookups


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of a :meth:`ResultCache.verify` integrity scan.

    ``legacy`` counts structurally valid entries written before the
    checksum field existed; ``quarantined`` names the files moved to
    ``quarantine/`` by this scan (empty with ``repair=False``).
    """

    path: str
    checked: int
    ok: int
    legacy: int
    corrupt: int
    quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the scan found no corruption."""
        return self.corrupt == 0


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` documents.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) on first use.
    max_bytes:
        Optional size cap.  After every store, least-recently-used entries
        are evicted until the total entry size fits the cap.  A single
        entry larger than the cap on its own is dropped up front with a
        warning and counted in ``stats.stores_dropped`` (see
        :meth:`put`); it never displaces the existing entries.
    shard_depth:
        Hex-prefix length used to spread entries over subdirectories
        (``0`` keeps the flat layout).  Reads fall back to the flat
        path, so raising the depth on a populated directory never loses
        entries.  Purely a placement knob — never part of a fingerprint.
    remote:
        Optional shared-tier client (``get_raw``/``put_raw``) consulted
        on local misses and pushed to on stores; see the module
        docstring.
    """

    def __init__(
        self,
        directory: PathLike,
        max_bytes: Optional[int] = None,
        *,
        shard_depth: int = 0,
        remote: Optional[object] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if not 0 <= shard_depth <= 8:
            raise ValueError(
                f"shard_depth must be in [0, 8], got {shard_depth}"
            )
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.shard_depth = shard_depth
        self.remote = remote
        self.stats = CacheStats()
        # Snapshot of the stats already flushed to the ``_meta.json``
        # sidecar; sync_persistent_stats() persists only the delta since
        # the previous flush, so calling it repeatedly never double-counts.
        self._synced: Dict[str, int] = {name: 0 for name in SYNCED_STAT_NAMES}
        self._sweep_stale_tmp()

    def _sweep_stale_tmp(self) -> int:
        """Remove aged temp files left behind by writers that died mid-put.

        ``cache prune`` and :meth:`clear` sweep them too, but a crashed
        run whose cache is only ever opened (never pruned) would grow the
        directory unboundedly.  The age gate keeps the sweep safe under
        concurrency: a live writer's temp file is milliseconds old.
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - STALE_TMP_SECONDS
        removed = 0
        for pattern in TMP_PATTERNS + tuple(
            f"[0-9a-f]*/{suffix}" for suffix in TMP_PATTERNS
        ):
            for stale in self.directory.glob(pattern):
                try:
                    if stale.stat().st_mtime <= cutoff:
                        stale.unlink()
                        removed += 1
                except OSError:  # pragma: no cover - raced with another sweep
                    continue
        if removed:
            logger.info(
                "swept %d stale temporary file(s) from %s",
                removed,
                self.directory,
            )
        return removed

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        """Where an entry for ``key`` is *written* under this layout."""
        if self.shard_depth and len(key) > self.shard_depth:
            return (
                self.directory / key[: self.shard_depth]
                / f"{key}{ENTRY_SUFFIX}"
            )
        return self.directory / f"{key}{ENTRY_SUFFIX}"

    def _existing_entry_path(self, key: str) -> Path:
        """Where an entry for ``key`` is *read* from.

        This instance's layout when the entry exists there, otherwise
        any other depth's placement of the same key — so a directory
        populated before sharding was enabled (or by a peer with a
        different depth) keeps serving every entry to every reader.
        """
        preferred = self._entry_path(key)
        if preferred.exists():
            return preferred
        name = f"{key}{ENTRY_SUFFIX}"
        candidates = [self.directory / name] + [
            self.directory / key[:depth] / name
            for depth in range(1, min(8, len(key) - 1) + 1)
        ]
        for candidate in candidates:
            if candidate != preferred and candidate.exists():
                return candidate
        return preferred

    def _entry_paths(self) -> List[Path]:
        # The directory is created lazily by put(), so a cache that never
        # stored anything (e.g. ``cache info`` on a typo'd path) does not
        # leave an empty directory behind.  Sidecar files (``_``-prefixed)
        # are metadata, not entries.  Shard subdirectories are scanned
        # regardless of this instance's shard_depth, so info/verify/prune
        # see every entry of a directory written at any depth; the
        # quarantine/ subdirectory stays outside the entry namespace.
        if not self.directory.is_dir():
            return []
        paths = [
            path
            for path in self.directory.glob(f"*{ENTRY_SUFFIX}")
            if not path.name.startswith("_")
        ]
        for subdir in self.directory.iterdir():
            if (
                not subdir.is_dir()
                or subdir.name == QUARANTINE_DIRNAME
                or subdir.name.startswith("_")
            ):
                continue
            paths.extend(
                path
                for path in subdir.glob(f"*{ENTRY_SUFFIX}")
                if not path.name.startswith("_")
            )
        return sorted(paths)

    # ------------------------------------------------------------------
    def contains(self, task: ExperimentTask) -> bool:
        """Return whether an entry for ``task`` exists (no stats update).

        A positive answer refreshes the entry's LRU recency exactly like
        :meth:`get` — callers pre-scanning a batch (``contains`` now,
        ``get`` later) and the eviction policy must agree on what was
        recently used, otherwise a size-cap prune between the scan and
        the read can evict an entry the scan just promised.
        """
        path = self._existing_entry_path(task.key())
        if not path.exists():
            return False
        try:
            os.utime(path)  # refresh LRU recency, same as a hit
        except OSError:  # pragma: no cover - entry raced away
            pass
        return True

    def get(self, task: ExperimentTask) -> Optional[ExperimentResult]:
        """Return the cached result of ``task``, or ``None`` on a miss.

        A corrupt or mismatching entry — failed checksum, malformed or
        truncated JSON, incompatible fingerprint format — counts as a
        miss and is quarantined (see :meth:`_quarantine`) so the caller
        re-runs and overwrites it while the bad bytes stay inspectable.

        With a shared tier attached, a local miss (including a
        quarantined-corrupt local entry) consults the remote; remote
        bytes are verified with exactly the same checks and, when valid,
        filled into the local L1 atomically.  Remote failures of any
        kind degrade to a plain miss.
        """
        path = self._existing_entry_path(task.key())
        faults.maybe_corrupt_file(path)
        raw: Optional[bytes] = None
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            pass
        if raw is not None:
            result = self._decode_entry(raw, task)
            if result is not None:
                self.stats.hits += 1
                self.stats.bytes_served += len(raw)
                try:
                    os.utime(path)  # refresh LRU recency
                except OSError:  # pragma: no cover - entry raced away
                    pass
                return result
            # Any malformed document shape (non-object JSON, wrong field
            # types, truncated entries, checksum mismatches) is treated
            # the same way: quarantine and fall through to the remote
            # tier (or a recompute).
            self._quarantine(path)
        result = self._get_remote(task)
        if result is not None:
            return result
        self.stats.misses += 1
        return None

    def _decode_entry(
        self, raw: bytes, task: ExperimentTask
    ) -> Optional[ExperimentResult]:
        """Parse + verify raw entry bytes against ``task``; None if invalid."""
        try:
            document = json.loads(raw)
            if not isinstance(document, dict):
                raise ValueError("cache entry is not a JSON object")
            checksum = document.pop(CHECKSUM_FIELD, None)
            if checksum is not None and checksum != _document_checksum(document):
                raise ValueError("cache entry failed its payload checksum")
            if document.get("task") != task.fingerprint():
                raise ValueError("cache entry does not match task fingerprint")
            return result_from_dict(document["result"])
        except (ValueError, KeyError, TypeError, AttributeError,
                json.JSONDecodeError):
            return None

    def _get_remote(self, task: ExperimentTask) -> Optional[ExperimentResult]:
        """Consult the shared tier after a local miss (never raises)."""
        if self.remote is None:
            return None
        key = task.key()
        try:
            raw = self.remote.get_raw(key)
        except Exception:  # noqa: BLE001 — a broken tier must not fail a get
            logger.warning("shared cache tier lookup failed", exc_info=True)
            raw = None
        if raw is None:
            self.stats.remote_misses += 1
            return None
        result = self._decode_entry(raw, task)
        if result is None:
            # The serving side quarantines on read; count the corruption
            # here too so a poisoned tier is visible from the client.
            self.stats.corrupt_entries += 1
            self.stats.remote_misses += 1
            logger.warning(
                "shared cache tier served a corrupt entry for %s", key[:12]
            )
            return None
        self.stats.remote_hits += 1
        self.stats.hits += 1
        self.stats.bytes_served += len(raw)
        self._fill_local(key, raw)
        return result

    def _fill_local(self, key: str, raw: bytes) -> None:
        """Atomically install verified remote bytes as the L1 entry."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self._entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
            tmp_path.write_bytes(raw)
            tmp_path.replace(path)
        except OSError:  # pragma: no cover - L1 fill is best-effort
            logger.warning("failed to fill local cache from shared tier")

    def put(self, task: ExperimentTask, result: ExperimentResult) -> Path:
        """Store ``result`` under the content hash of ``task``.

        Snapshots are always included so a cached result is as faithful as a
        fresh run; the write goes through a temporary file so a concurrent
        reader never sees a partial entry.

        An entry larger than ``max_bytes`` on its own can never fit the
        cap.  Handing it to the LRU prune would first evict every *older*
        entry and then the new one — silently emptying the cache for a
        store that fails anyway — so the oversized entry is dropped
        directly instead: a warning is emitted, ``stats.stores_dropped``
        (and the persistent counter surfaced by ``cache info``) is
        incremented, and the other entries are left untouched.  The
        returned path does not exist in that case.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(task.key())
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "key": task.key(),
            "task": task.fingerprint(),
            "result": result_to_dict(result, include_snapshots=True),
        }
        document[CHECKSUM_FIELD] = _document_checksum(document)
        payload = faults.maybe_corrupt_bytes(
            faults.KIND_CORRUPT_WRITE, json.dumps(document).encode("utf-8")
        )
        # Unique per-process temp name: concurrent writers of the same task
        # never interleave into one file, and replace() stays atomic.
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        tmp_path.write_bytes(payload)
        if self.max_bytes is not None:
            entry_bytes = tmp_path.stat().st_size
            if entry_bytes > self.max_bytes:
                tmp_path.unlink(missing_ok=True)
                self.stats.stores_dropped += 1
                self._bump_persistent_counter("stores_dropped", 1)
                logger.warning(
                    "result of task %s is %d bytes, larger than the cache "
                    "cap of %d bytes; the store was dropped (raise "
                    "max_bytes to cache results of this size)",
                    task.key()[:12],
                    entry_bytes,
                    self.max_bytes,
                )
                return path
        tmp_path.replace(path)
        self.stats.stores += 1
        if self.remote is not None:
            # Best-effort push to the shared tier: the serving side
            # re-verifies the checksum before its own atomic write, so a
            # payload corrupted in flight (or by a corrupt-write fault
            # above) can never poison the tier.
            try:
                if self.remote.put_raw(task.key(), payload):
                    self.stats.remote_puts += 1
            except Exception:  # noqa: BLE001 — a broken tier must not fail a put
                logger.warning("shared cache tier push failed", exc_info=True)
        if self.max_bytes is not None:
            self.prune()
        return path

    # ------------------------------------------------------------------
    # Raw-bytes access — the serving side of the shared tier (and the
    # client's transport payloads).  Always checksum-verified: a remote
    # peer is never served (or allowed to store) bytes that do not
    # verify, so corruption cannot propagate between tiers.
    # ------------------------------------------------------------------
    def get_raw(self, key: str) -> Optional[bytes]:
        """Return verified raw entry bytes for ``key``, or ``None``.

        Corrupt entries are quarantined exactly like a local ``get``
        would; legacy (pre-checksum) entries are *not* served — a shared
        tier only ever hands out bytes it can prove.
        """
        path = self._existing_entry_path(key)
        faults.maybe_corrupt_file(path)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        status = _verify_entry_bytes(raw)
        if status == "corrupt":
            self._quarantine(path)
            return None
        if status == "legacy":
            return None
        self.stats.bytes_served += len(raw)
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:  # pragma: no cover - entry raced away
            pass
        return raw

    def put_raw(self, key: str, raw: bytes) -> bool:
        """Verify and store raw entry bytes under ``key`` (atomic).

        Rejects payloads that fail the checksum or whose embedded key
        does not match ``key`` (a peer cannot overwrite entry A with a
        valid entry B).  Concurrent writers of one key are safe without
        a lock: identical content by construction, atomic rename either
        way.
        """
        status = _verify_entry_bytes(raw)
        if status != "ok":
            self.stats.corrupt_entries += 1
            self._bump_persistent_counter("corrupt_entries", 1)
            logger.warning(
                "rejected %s shared-tier store for %s", status, key[:12]
            )
            return False
        try:
            document = json.loads(raw)
        except ValueError:  # pragma: no cover - verified above
            return False
        if document.get("key") != key:
            logger.warning(
                "rejected shared-tier store whose payload key %r does not "
                "match the requested key %r",
                str(document.get("key"))[:12], key[:12],
            )
            return False
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        tmp_path.write_bytes(raw)
        tmp_path.replace(path)
        self.stats.stores += 1
        if self.max_bytes is not None:
            self.prune()
        return True

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupt entry into ``quarantine/`` and count it.

        Returns the quarantine destination (``None`` when the move
        failed and the entry was unlinked instead — the cache must never
        keep serving a corrupt file).  Counted in the in-memory stats
        and the persistent ``corrupt_entries`` counter; like evictions,
        corruption is rare and must survive crashes, so it is persisted
        per event rather than batched.
        """
        destination: Optional[Path] = None
        try:
            quarantine_dir = self.directory / QUARANTINE_DIRNAME
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            destination = quarantine_dir / path.name
            path.replace(destination)
        except OSError:
            destination = None
            path.unlink(missing_ok=True)
        self.stats.corrupt_entries += 1
        self._bump_persistent_counter("corrupt_entries", 1)
        logger.warning(
            "quarantined corrupt or mismatching cache entry %s%s",
            path.name,
            f" -> {destination}" if destination is not None else " (unlinked)",
        )
        return destination

    def verify(self, repair: bool = True) -> "VerifyReport":
        """Scan every entry; validate JSON structure and payload checksum.

        With ``repair`` (the default) corrupt entries are quarantined;
        otherwise the scan only reports.  Entries written before the
        checksum field are reported as ``legacy`` and accepted.  Backs
        the ``repro cache verify`` subcommand — the periodic trust check
        a cache directory shared between machines needs.
        """
        checked = ok = legacy = corrupt = 0
        quarantined: List[str] = []
        for path in self._entry_paths():
            status = self._verify_entry(path)
            if status == "missing":  # raced away mid-scan
                continue
            checked += 1
            if status == "ok":
                ok += 1
            elif status == "legacy":
                legacy += 1
            else:
                corrupt += 1
                if repair and self._quarantine(path) is not None:
                    quarantined.append(path.name)
        return VerifyReport(
            path=str(self.directory),
            checked=checked,
            ok=ok,
            legacy=legacy,
            corrupt=corrupt,
            quarantined=quarantined,
        )

    def _verify_entry(self, path: Path) -> str:
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return "missing"
        except OSError:
            return "corrupt"
        return _verify_entry_bytes(raw)

    # ------------------------------------------------------------------
    def evict(self, task: ExperimentTask) -> bool:
        """Remove the entry of ``task``; returns whether one existed."""
        path = self._existing_entry_path(task.key())
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also sweeps up ``*.tmp`` leftovers of writers that died mid-put
        and the ``quarantine/`` subdirectory (neither is counted as an
        entry).
        """
        removed = 0
        shard_dirs = set()
        for path in self._entry_paths():
            if path.parent != self.directory:
                shard_dirs.add(path.parent)
            path.unlink()
            removed += 1
        if self.directory.is_dir():
            for pattern in TMP_PATTERNS + tuple(
                f"[0-9a-f]*/{suffix}" for suffix in TMP_PATTERNS
            ):
                for stale in self.directory.glob(pattern):
                    stale.unlink()
            for shard_dir in shard_dirs:
                try:
                    shard_dir.rmdir()
                except OSError:  # pragma: no cover - not empty / raced
                    pass
            quarantine_dir = self.directory / QUARANTINE_DIRNAME
            if quarantine_dir.is_dir():
                for item in quarantine_dir.iterdir():
                    try:
                        item.unlink()
                    except OSError:  # pragma: no cover - raced away
                        pass
                try:
                    quarantine_dir.rmdir()
                except OSError:  # pragma: no cover - raced away
                    pass
        return removed

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits the cap.

        ``max_bytes`` overrides the instance cap for this call (the
        ``cache prune`` CLI passes it explicitly).  Returns the number of
        entries evicted; with no cap configured at all, prunes nothing.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        if cap < 0:
            raise ValueError(f"max_bytes must be >= 0, got {cap}")
        aged: List[tuple] = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:  # concurrent eviction
                continue
            aged.append((stat.st_mtime, path.name, path, stat.st_size))
            total += stat.st_size
        aged.sort()  # oldest first; name breaks mtime ties deterministically
        evicted = 0
        for _, _, path, size in aged:
            if total <= cap:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            self._bump_persistent_counter("evictions", evicted)
            logger.info(
                "pruned %d least-recently-used cache entr%s to fit %d bytes",
                evicted,
                "y" if evicted == 1 else "ies",
                cap,
            )
        return evicted

    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / META_FILENAME

    def _read_meta(self) -> dict:
        try:
            meta = json.loads(self._meta_path().read_text(encoding="utf-8"))
            return meta if isinstance(meta, dict) else {}
        except (OSError, ValueError):
            return {}

    def _read_persistent_counter(self, name: str) -> int:
        try:
            return int(self._read_meta().get(name, 0))
        except (ValueError, TypeError):
            return 0

    def _bump_persistent_counter(self, name: str, count: int) -> None:
        self._bump_persistent_counters({name: count})

    def _bump_persistent_counters(self, counts: Dict[str, int]) -> None:
        # The read-modify-write is guarded by an advisory lock so two
        # processes pruning one shared directory cannot lose increments;
        # everything here is best-effort (the counters are diagnostics,
        # the cache itself never depends on them).
        lock_path = self.directory / "_meta.lock"
        try:
            import fcntl

            with open(lock_path, "a+", encoding="utf-8") as lock_file:
                fcntl.flock(lock_file, fcntl.LOCK_EX)
                self._write_meta_counters(counts)
        except (ImportError, OSError):  # pragma: no cover - lockless platform
            self._write_meta_counters(counts)

    def _write_meta_counters(self, counts: Dict[str, int]) -> None:
        meta = self._read_meta()
        for name, count in counts.items():
            try:
                current = int(meta.get(name, 0))
            except (TypeError, ValueError):
                current = 0
            meta[name] = current + count
        tmp = self._meta_path().with_suffix(f".{os.getpid()}.metatmp")
        try:
            tmp.write_text(json.dumps(meta), encoding="utf-8")
            tmp.replace(self._meta_path())
        except OSError:  # pragma: no cover - metadata is best-effort
            tmp.unlink(missing_ok=True)

    def sync_persistent_stats(self) -> None:
        """Flush the hit/miss/store/bytes-served deltas to ``_meta.json``.

        Called at the end of a campaign run (and by ``cache info``) so the
        hot lookup path never touches the sidecar.  Only the delta since
        the previous flush is written, under one lock acquisition, and a
        directory that was never created stays absent.
        """
        deltas = {}
        for name in SYNCED_STAT_NAMES:
            delta = getattr(self.stats, name) - self._synced[name]
            if delta:
                deltas[name] = delta
        if not deltas or not self.directory.is_dir():
            return
        self._bump_persistent_counters(deltas)
        for name, delta in deltas.items():
            self._synced[name] += delta

    def info(self) -> CacheInfo:
        """Describe the on-disk state (entry count, size, evictions)."""
        entries = 0
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except FileNotFoundError:  # concurrently evicted by another process
                continue
            entries += 1
        return CacheInfo(
            path=str(self.directory),
            entries=entries,
            total_bytes=total,
            evictions=self._read_persistent_counter("evictions"),
            stores_dropped=self._read_persistent_counter("stores_dropped"),
            max_bytes=self.max_bytes,
            hits=self._read_persistent_counter("hits"),
            misses=self._read_persistent_counter("misses"),
            bytes_served=self._read_persistent_counter("bytes_served"),
            corrupt_entries=self._read_persistent_counter("corrupt_entries"),
        )
