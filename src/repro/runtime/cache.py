"""Content-addressed on-disk cache of experiment results.

Every entry is one JSON document named after the task's content hash
(:meth:`repro.runtime.task.ExperimentTask.key`) and contains both the task
fingerprint and the result serialised through
:mod:`repro.experiments.persistence`.  Storing the fingerprint alongside the
result lets :meth:`ResultCache.get` verify that an entry really belongs to
the requesting task (guarding against fingerprint-format drift) and lets
``cache info`` describe what is in the cache without re-deriving anything.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.runner import ExperimentResult
from repro.runtime.task import ExperimentTask

PathLike = Union[str, Path]

#: Suffix of every cache entry file.
ENTRY_SUFFIX = ".json"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@dataclass(frozen=True)
class CacheInfo:
    """Summary of the on-disk state of a cache directory."""

    path: str
    entries: int
    total_bytes: int


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` documents.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) on first use.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}{ENTRY_SUFFIX}"

    def _entry_paths(self) -> List[Path]:
        # The directory is created lazily by put(), so a cache that never
        # stored anything (e.g. ``cache info`` on a typo'd path) does not
        # leave an empty directory behind.
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob(f"*{ENTRY_SUFFIX}"))

    # ------------------------------------------------------------------
    def contains(self, task: ExperimentTask) -> bool:
        """Return whether an entry for ``task`` exists (no stats update)."""
        return self._entry_path(task.key()).exists()

    def get(self, task: ExperimentTask) -> Optional[ExperimentResult]:
        """Return the cached result of ``task``, or ``None`` on a miss.

        A corrupt or mismatching entry (e.g. written by an incompatible
        fingerprint format) counts as a miss and is evicted so the caller
        re-runs and overwrites it.
        """
        path = self._entry_path(task.key())
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document.get("task") != task.fingerprint():
                raise ValueError("cache entry does not match task fingerprint")
            result = result_from_dict(document["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, AttributeError,
                json.JSONDecodeError):
            # Any malformed document shape (non-object JSON, wrong field
            # types, truncated entries) is treated the same way: evict and
            # re-run.
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, task: ExperimentTask, result: ExperimentResult) -> Path:
        """Store ``result`` under the content hash of ``task``.

        Snapshots are always included so a cached result is as faithful as a
        fresh run; the write goes through a temporary file so a concurrent
        reader never sees a partial entry.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(task.key())
        document = {
            "key": task.key(),
            "task": task.fingerprint(),
            "result": result_to_dict(result, include_snapshots=True),
        }
        # Unique per-process temp name: concurrent writers of the same task
        # never interleave into one file, and replace() stays atomic.
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        tmp_path.write_text(json.dumps(document), encoding="utf-8")
        tmp_path.replace(path)
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    def evict(self, task: ExperimentTask) -> bool:
        """Remove the entry of ``task``; returns whether one existed."""
        path = self._entry_path(task.key())
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also sweeps up ``*.tmp`` leftovers of writers that died mid-put
        (they are not counted as entries).
        """
        removed = 0
        for path in self._entry_paths():
            path.unlink()
            removed += 1
        if self.directory.is_dir():
            for stale in self.directory.glob("*.tmp"):
                stale.unlink()
        return removed

    def info(self) -> CacheInfo:
        """Describe the on-disk state (entry count, total size)."""
        paths = self._entry_paths()
        return CacheInfo(
            path=str(self.directory),
            entries=len(paths),
            total_bytes=sum(path.stat().st_size for path in paths),
        )
