"""Content-addressed on-disk cache of experiment results.

Every entry is one JSON document named after the task's content hash
(:meth:`repro.runtime.task.ExperimentTask.key`) and contains both the task
fingerprint and the result serialised through
:mod:`repro.experiments.persistence`.  Storing the fingerprint alongside the
result lets :meth:`ResultCache.get` verify that an entry really belongs to
the requesting task (guarding against fingerprint-format drift) and lets
``cache info`` describe what is in the cache without re-deriving anything.

The cache can be size-capped (``max_bytes``): after every store the
least-recently-used entries are evicted until the directory fits the cap
again.  Recency is tracked through file modification times — a hit
(``get``) *and* a positive existence probe (``contains``) touch the
entry — so the policy survives process restarts without any index file.
Cumulative eviction / dropped-store counters are persisted in a
``_meta.json`` sidecar (never counted as an entry) and surfaced by
``cache info``.  The campaign scheduler's cost model lives in a sibling
``_costs.json`` sidecar (see :mod:`repro.runtime.costmodel`), equally
outside the entry namespace.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.persistence import result_from_dict, result_to_dict
from repro.experiments.runner import ExperimentResult
from repro.runtime.task import ExperimentTask

PathLike = Union[str, Path]

#: Suffix of every cache entry file.
ENTRY_SUFFIX = ".json"

#: Sidecar file holding cumulative cache metadata (eviction counter).
META_FILENAME = "_meta.json"

#: Counters batched by :meth:`ResultCache.sync_persistent_stats` instead
#: of being written per event: ``get`` is a hot path (one lookup per
#: campaign task), so its counters flush once per campaign run rather
#: than once per hit.  ``evictions``/``stores_dropped`` keep their
#: per-event persistence — they are rare and must survive crashes.
SYNCED_STAT_NAMES = ("hits", "misses", "stores", "bytes_served")

logger = logging.getLogger("repro.runtime.cache")


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance.

    ``stores_dropped`` counts stores whose entry exceeded the size cap on
    its own and therefore never persisted (see :meth:`ResultCache.put`);
    such a store is *not* counted as an eviction.  ``bytes_served`` is
    the cumulative on-disk size of every entry served by a hit — the
    simulation work the cache saved, in bytes read instead of re-run.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    stores_dropped: int = 0
    bytes_served: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups


@dataclass(frozen=True)
class CacheInfo:
    """Summary of the on-disk state of a cache directory.

    ``evictions`` is the cumulative number of size-cap evictions ever
    performed on this directory and ``stores_dropped`` the cumulative
    number of stores whose single entry exceeded the cap (both persisted
    across processes); ``max_bytes`` echoes the cap of the inspecting
    cache instance (``None`` = uncapped).
    """

    path: str
    entries: int
    total_bytes: int
    evictions: int = 0
    stores_dropped: int = 0
    max_bytes: Optional[int] = None
    hits: int = 0
    misses: int = 0
    bytes_served: int = 0

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of lookups served from this directory."""
        lookups = self.hits + self.misses
        if not lookups:
            return 0.0
        return self.hits / lookups


class ResultCache:
    """Content-addressed store of :class:`ExperimentResult` documents.

    Parameters
    ----------
    directory:
        Cache root; created (with parents) on first use.
    max_bytes:
        Optional size cap.  After every store, least-recently-used entries
        are evicted until the total entry size fits the cap.  A single
        entry larger than the cap on its own is dropped up front with a
        warning and counted in ``stats.stores_dropped`` (see
        :meth:`put`); it never displaces the existing entries.
    """

    def __init__(self, directory: PathLike, max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.directory = Path(directory)
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        # Snapshot of the stats already flushed to the ``_meta.json``
        # sidecar; sync_persistent_stats() persists only the delta since
        # the previous flush, so calling it repeatedly never double-counts.
        self._synced: Dict[str, int] = {name: 0 for name in SYNCED_STAT_NAMES}

    # ------------------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}{ENTRY_SUFFIX}"

    def _entry_paths(self) -> List[Path]:
        # The directory is created lazily by put(), so a cache that never
        # stored anything (e.g. ``cache info`` on a typo'd path) does not
        # leave an empty directory behind.  Sidecar files (``_``-prefixed)
        # are metadata, not entries.
        if not self.directory.is_dir():
            return []
        return sorted(
            path
            for path in self.directory.glob(f"*{ENTRY_SUFFIX}")
            if not path.name.startswith("_")
        )

    # ------------------------------------------------------------------
    def contains(self, task: ExperimentTask) -> bool:
        """Return whether an entry for ``task`` exists (no stats update).

        A positive answer refreshes the entry's LRU recency exactly like
        :meth:`get` — callers pre-scanning a batch (``contains`` now,
        ``get`` later) and the eviction policy must agree on what was
        recently used, otherwise a size-cap prune between the scan and
        the read can evict an entry the scan just promised.
        """
        path = self._entry_path(task.key())
        if not path.exists():
            return False
        try:
            os.utime(path)  # refresh LRU recency, same as a hit
        except OSError:  # pragma: no cover - entry raced away
            pass
        return True

    def get(self, task: ExperimentTask) -> Optional[ExperimentResult]:
        """Return the cached result of ``task``, or ``None`` on a miss.

        A corrupt or mismatching entry (e.g. written by an incompatible
        fingerprint format) counts as a miss and is evicted so the caller
        re-runs and overwrites it.
        """
        path = self._entry_path(task.key())
        try:
            raw = path.read_bytes()
            document = json.loads(raw)
            if document.get("task") != task.fingerprint():
                raise ValueError("cache entry does not match task fingerprint")
            result = result_from_dict(document["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, AttributeError,
                json.JSONDecodeError):
            # Any malformed document shape (non-object JSON, wrong field
            # types, truncated entries) is treated the same way: evict and
            # re-run.
            logger.warning(
                "evicting corrupt or mismatching cache entry %s", path.name
            )
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self.stats.bytes_served += len(raw)
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:  # pragma: no cover - entry raced away
            pass
        return result

    def put(self, task: ExperimentTask, result: ExperimentResult) -> Path:
        """Store ``result`` under the content hash of ``task``.

        Snapshots are always included so a cached result is as faithful as a
        fresh run; the write goes through a temporary file so a concurrent
        reader never sees a partial entry.

        An entry larger than ``max_bytes`` on its own can never fit the
        cap.  Handing it to the LRU prune would first evict every *older*
        entry and then the new one — silently emptying the cache for a
        store that fails anyway — so the oversized entry is dropped
        directly instead: a warning is emitted, ``stats.stores_dropped``
        (and the persistent counter surfaced by ``cache info``) is
        incremented, and the other entries are left untouched.  The
        returned path does not exist in that case.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._entry_path(task.key())
        document = {
            "key": task.key(),
            "task": task.fingerprint(),
            "result": result_to_dict(result, include_snapshots=True),
        }
        # Unique per-process temp name: concurrent writers of the same task
        # never interleave into one file, and replace() stays atomic.
        tmp_path = path.with_suffix(f".{os.getpid()}.tmp")
        tmp_path.write_text(json.dumps(document), encoding="utf-8")
        if self.max_bytes is not None:
            entry_bytes = tmp_path.stat().st_size
            if entry_bytes > self.max_bytes:
                tmp_path.unlink(missing_ok=True)
                self.stats.stores_dropped += 1
                self._bump_persistent_counter("stores_dropped", 1)
                logger.warning(
                    "result of task %s is %d bytes, larger than the cache "
                    "cap of %d bytes; the store was dropped (raise "
                    "max_bytes to cache results of this size)",
                    task.key()[:12],
                    entry_bytes,
                    self.max_bytes,
                )
                return path
        tmp_path.replace(path)
        self.stats.stores += 1
        if self.max_bytes is not None:
            self.prune()
        return path

    # ------------------------------------------------------------------
    def evict(self, task: ExperimentTask) -> bool:
        """Remove the entry of ``task``; returns whether one existed."""
        path = self._entry_path(task.key())
        if path.exists():
            path.unlink()
            return True
        return False

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also sweeps up ``*.tmp`` leftovers of writers that died mid-put
        (they are not counted as entries).
        """
        removed = 0
        for path in self._entry_paths():
            path.unlink()
            removed += 1
        if self.directory.is_dir():
            for stale in self.directory.glob("*.tmp"):
                stale.unlink()
            for stale in self.directory.glob("*.metatmp"):
                stale.unlink()
            for stale in self.directory.glob("*.coststmp"):
                stale.unlink()
        return removed

    def prune(self, max_bytes: Optional[int] = None) -> int:
        """Evict least-recently-used entries until the cache fits the cap.

        ``max_bytes`` overrides the instance cap for this call (the
        ``cache prune`` CLI passes it explicitly).  Returns the number of
        entries evicted; with no cap configured at all, prunes nothing.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return 0
        if cap < 0:
            raise ValueError(f"max_bytes must be >= 0, got {cap}")
        aged: List[tuple] = []
        total = 0
        for path in self._entry_paths():
            try:
                stat = path.stat()
            except FileNotFoundError:  # concurrent eviction
                continue
            aged.append((stat.st_mtime, path.name, path, stat.st_size))
            total += stat.st_size
        aged.sort()  # oldest first; name breaks mtime ties deterministically
        evicted = 0
        for _, _, path, size in aged:
            if total <= cap:
                break
            path.unlink(missing_ok=True)
            total -= size
            evicted += 1
        if evicted:
            self.stats.evictions += evicted
            self._bump_persistent_counter("evictions", evicted)
            logger.info(
                "pruned %d least-recently-used cache entr%s to fit %d bytes",
                evicted,
                "y" if evicted == 1 else "ies",
                cap,
            )
        return evicted

    # ------------------------------------------------------------------
    def _meta_path(self) -> Path:
        return self.directory / META_FILENAME

    def _read_meta(self) -> dict:
        try:
            meta = json.loads(self._meta_path().read_text(encoding="utf-8"))
            return meta if isinstance(meta, dict) else {}
        except (OSError, ValueError):
            return {}

    def _read_persistent_counter(self, name: str) -> int:
        try:
            return int(self._read_meta().get(name, 0))
        except (ValueError, TypeError):
            return 0

    def _bump_persistent_counter(self, name: str, count: int) -> None:
        self._bump_persistent_counters({name: count})

    def _bump_persistent_counters(self, counts: Dict[str, int]) -> None:
        # The read-modify-write is guarded by an advisory lock so two
        # processes pruning one shared directory cannot lose increments;
        # everything here is best-effort (the counters are diagnostics,
        # the cache itself never depends on them).
        lock_path = self.directory / "_meta.lock"
        try:
            import fcntl

            with open(lock_path, "a+", encoding="utf-8") as lock_file:
                fcntl.flock(lock_file, fcntl.LOCK_EX)
                self._write_meta_counters(counts)
        except (ImportError, OSError):  # pragma: no cover - lockless platform
            self._write_meta_counters(counts)

    def _write_meta_counters(self, counts: Dict[str, int]) -> None:
        meta = self._read_meta()
        for name, count in counts.items():
            try:
                current = int(meta.get(name, 0))
            except (TypeError, ValueError):
                current = 0
            meta[name] = current + count
        tmp = self._meta_path().with_suffix(f".{os.getpid()}.metatmp")
        try:
            tmp.write_text(json.dumps(meta), encoding="utf-8")
            tmp.replace(self._meta_path())
        except OSError:  # pragma: no cover - metadata is best-effort
            tmp.unlink(missing_ok=True)

    def sync_persistent_stats(self) -> None:
        """Flush the hit/miss/store/bytes-served deltas to ``_meta.json``.

        Called at the end of a campaign run (and by ``cache info``) so the
        hot lookup path never touches the sidecar.  Only the delta since
        the previous flush is written, under one lock acquisition, and a
        directory that was never created stays absent.
        """
        deltas = {}
        for name in SYNCED_STAT_NAMES:
            delta = getattr(self.stats, name) - self._synced[name]
            if delta:
                deltas[name] = delta
        if not deltas or not self.directory.is_dir():
            return
        self._bump_persistent_counters(deltas)
        for name, delta in deltas.items():
            self._synced[name] += delta

    def info(self) -> CacheInfo:
        """Describe the on-disk state (entry count, size, evictions)."""
        entries = 0
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except FileNotFoundError:  # concurrently evicted by another process
                continue
            entries += 1
        return CacheInfo(
            path=str(self.directory),
            entries=entries,
            total_bytes=total,
            evictions=self._read_persistent_counter("evictions"),
            stores_dropped=self._read_persistent_counter("stores_dropped"),
            max_bytes=self.max_bytes,
            hits=self._read_persistent_counter("hits"),
            misses=self._read_persistent_counter("misses"),
            bytes_served=self._read_persistent_counter("bytes_served"),
        )
