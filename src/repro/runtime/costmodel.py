"""Persistent cost models for cost-aware scheduling.

The paper's evaluation grid mixes tasks whose wall-clock costs differ by
orders of magnitude (a 16-node no-churn run finishes in well under a
second; a large 10/10-churn run takes minutes).  Dispatching such a batch
in submission order means the first figure appears only after whichever
task happens to be first — often the most expensive one.  This module
supplies the *cost side* of the scheduler:

* :class:`CostModel` — a keyed running mean of observed costs with an
  optional JSON sidecar, so observations survive across processes;
* :class:`TaskCostModel` — the experiment-task instantiation: wall-clock
  seconds keyed by a coarse *task shape fingerprint* (profile, scenario
  size class, churn, traffic, algorithm), stored in a ``_costs.json``
  sidecar beside the result cache (the ``_`` prefix keeps it out of the
  cache's entry namespace, like ``_meta.json``);
* :class:`PairCostTracker` — an in-memory per-pair max-flow cost
  estimate fed by :class:`~repro.runtime.pairflow.PairFlowEngine`
  evaluations, from which the engine derives its adaptive shard size.

Cost models are **scheduling hints only**.  They order and group work;
they never enter a task fingerprint, a cache key, or any recorded
statistic, so a missing, stale or corrupt sidecar can change how long a
campaign takes but never what it computes (the order-invariance guarantee
asserted by the determinism digest suite).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.runtime.task import ExperimentTask

PathLike = Union[str, Path]

#: Sidecar file holding observed task costs (lives beside the result
#: cache; ``_``-prefixed so the cache never mistakes it for an entry).
COSTS_FILENAME = "_costs.json"

#: Layout version of the sidecar document.
COSTS_FORMAT_VERSION = 1

#: Observation-count clamp of the running mean.  Keeping the effective
#: sample size bounded turns the mean into a slow EWMA, so the model
#: adapts when the host (or the code) gets faster instead of averaging
#: over stale history forever.
MAX_OBSERVATIONS = 64


class CostModel:
    """Keyed running mean of observed costs, optionally persisted.

    Parameters
    ----------
    path:
        JSON sidecar location.  ``None`` keeps the model in-memory only.
        Loading is best-effort: a missing or corrupt sidecar yields an
        empty model (scheduling degrades to submission order, results are
        unaffected).
    """

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: Dict[str, Dict[str, float]] = {}
        self._dirty = False
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if self.path is None:
            return
        try:
            document = json.loads(self.path.read_text(encoding="utf-8"))
            entries = document["entries"]
            loaded: Dict[str, Dict[str, float]] = {}
            for key, entry in entries.items():
                loaded[str(key)] = {
                    "mean": float(entry["mean"]),
                    "count": int(entry["count"]),
                }
            self._entries = loaded
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Missing or malformed sidecar: start empty.  The model is a
            # scheduling hint, never a correctness dependency.
            self._entries = {}

    def save(self) -> None:
        """Persist the model atomically (no-op when in-memory or clean)."""
        if self.path is None or not self._dirty:
            return
        document = {
            "format": COSTS_FORMAT_VERSION,
            "entries": self._entries,
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp = self.path.with_suffix(f".{os.getpid()}.coststmp")
            tmp.write_text(
                json.dumps(document, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(self.path)
            self._dirty = False
        except OSError:  # pragma: no cover - persistence is best-effort
            pass

    # ------------------------------------------------------------------
    def observe(self, key: str, seconds: float) -> None:
        """Fold one observed cost into the running mean of ``key``."""
        if seconds < 0:
            return
        entry = self._entries.get(key)
        if entry is None:
            self._entries[key] = {"mean": float(seconds), "count": 1}
        else:
            count = min(int(entry["count"]), MAX_OBSERVATIONS - 1)
            entry["mean"] += (seconds - entry["mean"]) / (count + 1)
            entry["count"] = count + 1
        self._dirty = True

    def estimate(self, key: str) -> Optional[float]:
        """Mean observed cost of ``key`` in seconds, or ``None`` if unseen."""
        entry = self._entries.get(key)
        return None if entry is None else float(entry["mean"])

    def observations(self, key: str) -> int:
        """Number of folded observations of ``key`` (clamped)."""
        entry = self._entries.get(key)
        return 0 if entry is None else int(entry["count"])

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
def task_shape_key(task: ExperimentTask) -> str:
    """Coarse cost fingerprint of an experiment task.

    Deliberately much coarser than the task's content hash: it names only
    the dimensions that dominate wall-clock cost (profile and network
    size class fix the node count and time axis, churn fixes the
    simulation length, traffic fixes the event rate, the algorithm fixes
    the per-flow cost).  Seeds and swept protocol parameters (``k``,
    ``alpha``, ``s``, loss) fold into one bucket, which is what lets a
    fresh sweep be ordered by costs observed on *previous* sweeps.
    """
    scenario = task.scenario
    return "/".join(
        (
            "task",
            task.profile.name,
            scenario.size_class,
            scenario.churn,
            "traffic" if scenario.traffic else "quiet",
            task.algorithm,
        )
    )


class TaskCostModel(CostModel):
    """Cost model over :class:`ExperimentTask` shapes.

    The campaign driver observes ``result.wall_seconds`` after every
    executed (non-cached) task and orders pending batches cheapest-first
    when ``schedule="cheapest"`` is selected.
    """

    @classmethod
    def for_cache(cls, cache) -> "TaskCostModel":
        """Model persisted in a ``_costs.json`` sidecar beside ``cache``.

        ``cache`` is a :class:`~repro.runtime.cache.ResultCache`; the
        sidecar shares its directory but sits outside the entry namespace
        (``_`` prefix), so ``cache clear`` — like the ``_meta.json``
        counters — deliberately leaves it alone: observations describe
        task *shapes*, not cached entries, and stay valid when the
        results are purged.  Delete the file by hand to reset the model.
        """
        return cls(Path(cache.directory) / COSTS_FILENAME)

    # ------------------------------------------------------------------
    def observe_task(self, task: ExperimentTask, seconds: float) -> None:
        """Record the observed wall-clock of one executed task."""
        self.observe(task_shape_key(task), seconds)

    def estimate_task(self, task: ExperimentTask) -> Optional[float]:
        """Estimated wall-clock of ``task``, or ``None`` for unseen shapes."""
        return self.estimate(task_shape_key(task))

    def estimate_batch_seconds(
        self, tasks: Sequence[ExperimentTask]
    ) -> Optional[float]:
        """Predicted wall-clock of running ``tasks`` back to back.

        The campaign's straggler detection derives each dispatched
        batch's soft deadline from this.  ``None`` when *any* shape is
        unseen: a deadline extrapolated from nothing would hedge every
        batch of a cold model (or none), so unknown batches simply get
        no deadline.
        """
        total = 0.0
        for task in tasks:
            estimate = self.estimate_task(task)
            if estimate is None:
                return None
            total += estimate
        return total

    def cheapest_first(self, tasks: Sequence[ExperimentTask]) -> List[int]:
        """Return a permutation of ``range(len(tasks))``, cheapest first.

        Tasks with a known estimate run in ascending estimated cost;
        unseen shapes keep submission order *after* the known ones (they
        are a gamble — a known-cheap task streams a figure sooner).  Ties
        break on the submission index, so the permutation is a pure
        function of (tasks, model state) and therefore deterministic.
        """

        def sort_key(index: int):
            estimate = self.estimate_task(tasks[index])
            if estimate is None:
                return (1, 0.0, index)
            return (0, estimate, index)

        return sorted(range(len(tasks)), key=sort_key)

    def pack_batches(
        self, tasks: Sequence[ExperimentTask], batch_count: int
    ) -> List[List[int]]:
        """Pack task positions into ``batch_count`` near-equal-cost batches.

        Greedy LPT (longest-processing-time-first): tasks are placed in
        descending estimated cost onto the currently lightest batch, so
        one expensive task cannot straggle behind a batch that also holds
        half the cheap ones while other workers idle.  Unseen task shapes
        are costed at the median known estimate (1.0 when the model is
        empty — packing then degrades to an even round-robin split).

        Returns groups of positions into ``tasks``; every group is sorted
        ascending and groups are ordered by their first position, so the
        packing is a pure function of (tasks, model state) — like
        :meth:`cheapest_first`, a scheduling hint that can never reorder
        recorded results.  Empty groups (more batches than tasks) are
        dropped.
        """
        if batch_count < 1:
            raise ValueError(f"batch_count must be >= 1, got {batch_count}")
        count = min(batch_count, len(tasks))
        if count <= 1:
            return [list(range(len(tasks)))] if tasks else []
        estimates = [self.estimate_task(task) for task in tasks]
        known = sorted(e for e in estimates if e is not None)
        fallback = known[len(known) // 2] if known else 1.0
        costs = [fallback if e is None else e for e in estimates]
        placement = sorted(
            range(len(tasks)), key=lambda pos: (-costs[pos], pos)
        )
        loads = [0.0] * count
        groups: List[List[int]] = [[] for _ in range(count)]
        for pos in placement:
            lightest = min(range(count), key=lambda b: (loads[b], b))
            groups[lightest].append(pos)
            loads[lightest] += costs[pos]
        packed = sorted((sorted(group) for group in groups if group),
                        key=lambda group: group[0])
        return packed


# ----------------------------------------------------------------------
class PairCostTracker:
    """Running per-pair cost estimate of the pair-flow hot path.

    One tracker is shared by all engines of a run (the analyzer owns it,
    like the shared worker pool), so the shard size observed on one
    snapshot's evaluation feeds the next snapshot's scheduling.  Keys are
    the max-flow algorithm name: per-pair cost differs far more across
    algorithms than across the similarly-shaped graphs of one run.
    """

    def __init__(self, model: Optional[CostModel] = None) -> None:
        self._model = model if model is not None else CostModel()

    def observe(self, algorithm: str, pairs: int, seconds: float) -> None:
        """Fold the cost of one evaluation (``pairs`` flows) into the model."""
        if pairs > 0 and seconds >= 0:
            self._model.observe(f"pairflow/{algorithm}", seconds / pairs)

    def seconds_per_pair(self, algorithm: str) -> Optional[float]:
        """Estimated seconds per max-flow pair, or ``None`` if unobserved."""
        return self._model.estimate(f"pairflow/{algorithm}")
