"""``repro.runtime.distributed`` — a fault-tolerant TCP executor backend.

The ROADMAP's remote-backend note said it outright: *"a remote backend
only has to map transport errors onto the existing retryable
classification."*  This module is that mapping, engineered for failure
first.  A :class:`DistributedExecutor` runs a small TCP **coordinator**
in the campaign driver and dispatches :func:`execute_task_batch` calls
to worker processes started via the ``repro worker`` CLI entrypoint —
by default loopback subprocesses the executor spawns and supervises
itself, but any reachable process that connects speaks the same
protocol.

Robustness model (every layer assumes the one below it lies):

* **Frames** — every message is a length-prefixed frame carrying a
  sha256 checksum of its payload.  A mismatch raises
  :class:`FrameChecksumError`, a :class:`ConnectionError` subclass, so
  the link is dropped and the work re-dispatched: a corrupt frame is
  indistinguishable from a lost one, by design.
* **Leases** — a dispatched batch is a *lease*, renewed by worker
  heartbeats.  A dead, stalled or partitioned worker stops renewing;
  the coordinator requeues the batch for reassignment.  Duplicate
  results (a partitioned worker finishing late) are deduped
  first-result-wins — safe because tasks are deterministic, so
  duplicates are identical by construction.
* **Retry ladder** — every transport failure surfaces as a retryable
  error (:class:`ConnectionError` / ``TimeoutError`` / errors with
  ``retryable=True``), healed by :class:`Campaign`'s existing
  retry/bisect/hedge machinery with no distributed special-casing.
* **Degrade ladder** — a worker process that dies is respawned within
  a bounded budget; once the budget is exhausted and the fleet is gone
  the coordinator breaks (pending work fails with ``BrokenExecutor``)
  and the *next* ``open_task_session()`` returns a local
  :class:`ParallelExecutor` session, so a campaign never strands.

The same frame codec also carries a **shared cache tier**: a
:class:`RemoteCacheTier` client gives a local :class:`ResultCache` a
remote get/put back end (the local directory is the L1), and
:func:`serve_cache` / the coordinator's cache role serve a directory to
remote peers.  Every remote read is checksum-verified before use and
corrupt entries are quarantined exactly like local ones, so a shared
tier can be written by any number of concurrent, crashing peers without
a lock.

Security note: frames carry pickled payloads, which can execute
arbitrary code when loaded.  The protocol authenticates nothing — run
it only on loopback or a trusted private network, like
``multiprocessing`` itself.

Like every scheduling knob, none of this enters task fingerprints:
worker placement, lease timeouts and cache tiers may change *when and
where* a task runs, never a bit of its result.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    wait,
)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import obs
from repro.experiments.runner import ExperimentResult
from repro.runtime import faults
from repro.runtime.cache import ResultCache
from repro.runtime.executor import (
    ExecutionSession,
    Executor,
    ParallelExecutor,
    ResultCallback,
    TaskSession,
)
from repro.runtime.task import ExperimentTask

logger = logging.getLogger("repro.runtime.distributed")

# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
#: Magic prefix of every frame (protocol/version tag).
FRAME_MAGIC = b"RPF1"

#: Bytes of the sha256 digest carried per frame.
FRAME_CHECKSUM_BYTES = 16

#: Header layout: magic, payload length, checksum prefix.
_HEADER = struct.Struct(f"!4sQ{FRAME_CHECKSUM_BYTES}s")

#: Upper bound on a single frame payload (a batch of tiny-profile tasks
#: is a few KiB; anything near this limit is a protocol error, not work).
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Exit code of a worker that exhausted its reconnect budget.
WORKER_LOST_EXIT_CODE = 1


class FrameError(ConnectionError):
    """A frame-level protocol failure.

    Subclasses :class:`ConnectionError` so :func:`is_retryable` — and
    every ``except OSError`` transport handler — treats a mangled link
    exactly like a dropped one.
    """

    retryable = True


class FrameChecksumError(FrameError):
    """A received frame failed its sha256 verification."""


class FrameProtocolError(FrameError):
    """A received frame was structurally invalid (bad magic/length/pickle)."""


class WorkerLostError(ConnectionError):
    """A batch exhausted its lease-reassignment budget.

    Retryable: the campaign charges an attempt and re-dispatches (after
    bisection, if the batch had survivors), which is the correct
    escalation when every worker that leased the batch died.
    """

    retryable = True


class RemoteTaskError(RuntimeError):
    """A worker-side task error whose exception object did not survive
    pickling; carries the remote traceback summary instead.

    ``retryable`` mirrors the remote classification so the campaign
    treats the stand-in exactly like the original.
    """

    def __init__(self, message: str, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


def _checksum(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()[:FRAME_CHECKSUM_BYTES]


def send_frame(
    sock: socket.socket,
    message: Dict[str, Any],
    *,
    lock: Optional[threading.Lock] = None,
    inject: bool = True,
) -> None:
    """Serialise ``message`` and send it as one checksummed frame.

    ``inject=True`` routes the send through the fault plan's frame site
    (``conn-drop`` / ``frame-corrupt`` / ``delay`` / ``partition``);
    heartbeats pass ``inject=False`` so occurrence numbering never
    depends on wall-clock heartbeat cadence.  ``lock`` serialises sends
    when a heartbeat thread shares the socket.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    checksum = _checksum(payload)
    if inject:
        # May sleep, raise InjectedConnectionError, or corrupt the
        # payload *after* the checksum was computed — the receiver then
        # detects the mismatch, which is the point.
        payload = faults.maybe_inject_frame_fault(payload)
    frame = _HEADER.pack(FRAME_MAGIC, len(payload), checksum) + payload
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame; verify and deserialise its payload.

    Raises :class:`FrameChecksumError` on digest mismatch and
    :class:`FrameProtocolError` on structural damage; both are
    :class:`ConnectionError` subclasses — callers drop the link and let
    the lease/retry machinery re-dispatch.
    """
    header = _recv_exact(sock, _HEADER.size)
    magic, length, checksum = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameProtocolError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise FrameProtocolError(f"frame of {length} bytes exceeds limit")
    payload = _recv_exact(sock, length)
    if _checksum(payload) != checksum:
        raise FrameChecksumError("frame checksum mismatch")
    try:
        message = pickle.loads(payload)
    except Exception as error:
        raise FrameProtocolError(f"undecodable frame payload: {error!r}")
    if not isinstance(message, dict):
        raise FrameProtocolError(
            f"frame payload is {type(message).__name__}, expected dict"
        )
    return message


def parse_address(text: str) -> Tuple[str, int]:
    """Parse a ``host:port`` string (the ``--connect`` CLI format)."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"invalid port in {text!r}") from None
    if not 0 < port < 65536:
        raise ValueError(f"port out of range in {text!r}")
    return host, port


def _portable_error(error: BaseException) -> BaseException:
    """Return ``error`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        from repro.runtime.resilience import is_retryable

        return RemoteTaskError(
            f"{type(error).__name__}: {error}", retryable=is_retryable(error)
        )


# ----------------------------------------------------------------------
# Coordinator (driver side)
# ----------------------------------------------------------------------
@dataclass
class _Call:
    """One leased unit of work (a whole task batch per lease)."""

    call_id: int
    fn: Callable[[Any], Any]
    item: Any
    future: Future = field(default_factory=Future)
    assignments: int = 0
    started: bool = False


class _LeaseExpired(ConnectionError):
    """Internal: a worker stopped renewing its lease."""


class Coordinator:
    """TCP work-queue server living in the campaign driver process.

    Accepts ``worker`` connections (leased batch dispatch, heartbeat
    liveness) and ``cache`` connections (shared-tier get/put against
    ``cache``, when given).  Thread-per-connection: the scale target is
    a fleet of workers, not C10K.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        heartbeat_interval: float = 0.25,
        lease_timeout: float = 2.0,
        max_assignments: int = 4,
        poll_interval: float = 0.1,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if lease_timeout <= heartbeat_interval:
            raise ValueError(
                f"lease_timeout ({lease_timeout}) must exceed "
                f"heartbeat_interval ({heartbeat_interval})"
            )
        if max_assignments < 1:
            raise ValueError(
                f"max_assignments must be >= 1, got {max_assignments}"
            )
        self._host = host
        self._requested_port = port
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self._max_assignments = max_assignments
        self._poll_interval = poll_interval
        self._cache = cache
        self._obs = obs.active()

        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._closing = threading.Event()
        self._broken = threading.Event()
        self._broken_reason = ""

        self._queue: deque = deque()
        self._queue_lock = threading.Lock()
        self._queue_cond = threading.Condition(self._queue_lock)
        self._settle_lock = threading.Lock()
        self._next_call_id = 0
        self._live_workers = 0
        self._last_worker_seen = time.monotonic()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._requested_port))
        listener.listen(64)
        listener.settimeout(self._poll_interval)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-coordinator-accept",
            daemon=True,
        )
        self._accept_thread.start()
        logger.debug("coordinator listening on %s:%d", *self.address)

    @property
    def address(self) -> Tuple[str, int]:
        assert self._listener is not None, "coordinator not started"
        host, port = self._listener.getsockname()[:2]
        return host, port

    @property
    def broken(self) -> bool:
        return self._broken.is_set()

    @property
    def live_workers(self) -> int:
        return self._live_workers

    @property
    def last_worker_seen(self) -> float:
        return self._last_worker_seen

    def close(self) -> None:
        """Stop accepting, release workers, settle abandoned futures."""
        if self._closing.is_set():
            return
        self._closing.set()
        with self._queue_cond:
            self._queue_cond.notify_all()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if self._listener is not None:
            self._listener.close()
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)
        # Futures the caller abandoned (e.g. a campaign tearing down
        # after an error) must still settle — a waiter blocked on one
        # would otherwise hang forever.
        with self._queue_lock:
            leftovers = list(self._queue)
            self._queue.clear()
        for call in leftovers:
            if not call.future.done() and not call.future.cancel():
                call.future.set_exception(
                    BrokenExecutor("coordinator closed with work pending")
                )

    def mark_broken(self, reason: str) -> None:
        """Fail pending work; subsequent submits raise ``BrokenExecutor``.

        Called by the worker supervisor when the respawn budget is
        exhausted and the fleet is gone — the distributed equivalent of
        a broken process pool, healed by the same campaign ladder.
        """
        if self._broken.is_set():
            return
        self._broken_reason = reason
        self._broken.set()
        self._inc("distributed.broken_sessions")
        logger.warning("distributed session broken: %s", reason)
        with self._queue_lock:
            pending = list(self._queue)
            self._queue.clear()
        for call in pending:
            if not call.future.done():
                call.future.set_exception(BrokenExecutor(reason))
        with self._queue_cond:
            self._queue_cond.notify_all()

    # -- work queue -----------------------------------------------------
    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        """Queue one call for lease-based dispatch; return its future."""
        if self._broken.is_set():
            raise BrokenExecutor(
                self._broken_reason or "distributed session broken"
            )
        if self._closing.is_set():
            raise RuntimeError("coordinator is closed")
        with self._queue_lock:
            call = _Call(call_id=self._next_call_id, fn=fn, item=item)
            self._next_call_id += 1
            self._queue.append(call)
            self._queue_cond.notify()
        return call.future

    def _next_call(self) -> Optional[_Call]:
        """Block until a dispatchable call is available (or shutdown)."""
        with self._queue_cond:
            while not self._closing.is_set() and not self._broken.is_set():
                while self._queue:
                    call = self._queue.popleft()
                    if call.future.done():
                        continue
                    if not call.started:
                        if not call.future.set_running_or_notify_cancel():
                            continue
                        call.started = True
                    return call
                self._queue_cond.wait(timeout=self._poll_interval)
        return None

    def _requeue(self, call: _Call) -> None:
        """Return a leased call to the queue after its worker was lost."""
        if call.future.done():
            return
        if self._broken.is_set():
            call.future.set_exception(
                BrokenExecutor(self._broken_reason or "session broken")
            )
            return
        self._inc("distributed.leases_reassigned")
        if call.assignments >= self._max_assignments:
            # Escalate to the campaign: retryable, charged an attempt,
            # bisected if the batch had more than one task.
            call.future.set_exception(
                WorkerLostError(
                    f"batch lost after {call.assignments} lease "
                    f"assignments (workers died or partitioned)"
                )
            )
            return
        logger.info(
            "reassigning call %d (assignment %d)",
            call.call_id, call.assignments + 1,
        )
        with self._queue_cond:
            self._queue.appendleft(call)
            self._queue_cond.notify()

    def _settle(self, call: _Call, message: Dict[str, Any]) -> None:
        """Deliver a worker result — first result wins, duplicates drop."""
        with self._settle_lock:
            if call.future.done():
                # A partitioned worker finished late after reassignment;
                # results are identical by construction, so dropping the
                # duplicate is sound.
                self._inc("distributed.duplicate_results")
                return
            if message.get("ok"):
                call.future.set_result(message.get("value"))
            else:
                error = message.get("error")
                if not isinstance(error, BaseException):
                    error = RemoteTaskError("worker reported an opaque failure")
                call.future.set_exception(error)

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                conn, addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._handle_connection, args=(conn, addr),
                name=f"repro-coordinator-conn-{addr[1]}", daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _handle_connection(
        self, conn: socket.socket, addr: Tuple[str, int]
    ) -> None:
        try:
            conn.settimeout(self.lease_timeout)
            hello = recv_frame(conn)
            role = hello.get("role", "worker")
            send_frame(
                conn,
                {"kind": "welcome",
                 "heartbeat_interval": self.heartbeat_interval},
            )
            if role == "cache":
                self._serve_cache_conn(conn)
            else:
                self._serve_worker_conn(conn, hello)
        except (OSError, EOFError) as error:
            logger.debug("connection %s dropped: %s", addr, error)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _serve_worker_conn(
        self, conn: socket.socket, hello: Dict[str, Any]
    ) -> None:
        self._inc("distributed.workers_connected")
        with self._queue_lock:
            self._live_workers += 1
            self._last_worker_seen = time.monotonic()
        current: Optional[_Call] = None
        lease_deadline = 0.0
        ready_deadline = time.monotonic() + 2.0 * self.lease_timeout
        conn.settimeout(self._poll_interval)
        try:
            while not self._closing.is_set() and not self._broken.is_set():
                if current is None:
                    try:
                        message = recv_frame(conn)
                    except TimeoutError:
                        if time.monotonic() > ready_deadline:
                            raise _LeaseExpired("worker never became ready")
                        continue
                    if message.get("kind") != "ready":
                        continue
                    call = self._next_call()
                    if call is None:
                        break  # closing or broken
                    call.assignments += 1
                    try:
                        send_frame(
                            conn,
                            {"kind": "call", "call_id": call.call_id,
                             "fn": call.fn, "item": call.item},
                        )
                    except BaseException:
                        current = call
                        raise
                    current = call
                    lease_deadline = time.monotonic() + self.lease_timeout
                    self._inc("distributed.leases_assigned")
                else:
                    try:
                        message = recv_frame(conn)
                    except TimeoutError:
                        if time.monotonic() > lease_deadline:
                            raise _LeaseExpired(
                                f"lease on call {current.call_id} expired"
                            )
                        continue
                    kind = message.get("kind")
                    if kind == "heartbeat":
                        lease_deadline = (
                            time.monotonic() + self.lease_timeout
                        )
                        self._last_worker_seen = time.monotonic()
                        self._inc("distributed.heartbeats")
                    elif kind == "result":
                        self._settle(current, message)
                        current = None
                        ready_deadline = (
                            time.monotonic() + 2.0 * self.lease_timeout
                        )
            # Clean release: tell an idle worker to exit (data frames
            # only — a worker mid-call finds out when its result send
            # fails and its reconnect is refused).
            if current is None and not self._broken.is_set():
                try:
                    send_frame(conn, {"kind": "shutdown"}, inject=False)
                except OSError:
                    pass
        except _LeaseExpired as error:
            logger.warning("worker lease lost: %s", error)
            self._inc("distributed.workers_lost")
        except (OSError, EOFError) as error:
            logger.info("worker connection failed: %s", error)
            self._inc("distributed.workers_lost")
        finally:
            with self._queue_lock:
                self._live_workers -= 1
            if current is not None:
                self._requeue(current)

    def _serve_cache_conn(self, conn: socket.socket) -> None:
        """Serve shared-tier get/put requests against the local cache."""
        if self._cache is None:
            raise FrameProtocolError("no cache attached to this coordinator")
        serve_cache_connection(
            conn, self._cache, idle_timeout=10.0 * self.lease_timeout,
            stop=lambda: self._closing.is_set(),
        )

    def _inc(self, name: str, value: int = 1) -> None:
        if self._obs is not None:
            self._obs.inc(name, value)


# ----------------------------------------------------------------------
# Worker (remote side) — the ``repro worker`` CLI entrypoint
# ----------------------------------------------------------------------
#: Seconds an idle worker waits for a call before treating the
#: coordinator as gone and reconnecting.
WORKER_IDLE_TIMEOUT = 300.0


def _serve_coordinator(
    sock: socket.socket,
    heartbeat_override: Optional[float] = None,
    idle_timeout: float = WORKER_IDLE_TIMEOUT,
) -> bool:
    """Run the worker protocol over one connection.

    Returns ``True`` when the coordinator sent a clean ``shutdown``
    frame; transport failures raise and the caller reconnects.
    """
    send_lock = threading.Lock()
    sock.settimeout(idle_timeout)
    send_frame(
        sock, {"kind": "hello", "role": "worker", "pid": os.getpid()},
        lock=send_lock,
    )
    welcome = recv_frame(sock)
    if welcome.get("kind") != "welcome":
        raise FrameProtocolError(f"expected welcome, got {welcome.get('kind')!r}")
    heartbeat_interval = heartbeat_override or float(
        welcome.get("heartbeat_interval") or 0.25
    )
    while True:
        send_frame(sock, {"kind": "ready"}, lock=send_lock)
        message = recv_frame(sock)
        kind = message.get("kind")
        if kind == "shutdown":
            return True
        if kind != "call":
            continue
        # Heartbeats renew the lease while the batch runs; they bypass
        # fault injection (see send_frame) and never kill the worker —
        # a send failure just stops the beat, and the failure surfaces
        # on the result send.
        stop_beat = threading.Event()

        def _beat() -> None:
            while not stop_beat.wait(heartbeat_interval):
                try:
                    send_frame(
                        sock, {"kind": "heartbeat"},
                        lock=send_lock, inject=False,
                    )
                except OSError:
                    return

        beat_thread = threading.Thread(target=_beat, daemon=True)
        beat_thread.start()
        try:
            fn = message["fn"]
            try:
                value = fn(message["item"])
                reply = {
                    "kind": "result", "call_id": message["call_id"],
                    "ok": True, "value": value,
                }
            except Exception as error:  # noqa: BLE001 — forwarded, not hidden
                reply = {
                    "kind": "result", "call_id": message["call_id"],
                    "ok": False, "error": _portable_error(error),
                }
        finally:
            stop_beat.set()
            beat_thread.join(timeout=2.0)
        send_frame(sock, reply, lock=send_lock)


def run_worker(
    host: str,
    port: int,
    *,
    heartbeat_interval: Optional[float] = None,
    reconnect_attempts: int = 8,
    reconnect_delay: float = 0.05,
    connect_timeout: float = 5.0,
    idle_timeout: float = WORKER_IDLE_TIMEOUT,
) -> int:
    """Main loop of a ``repro worker`` process.

    Connects to the coordinator, serves leased batches, and reconnects
    with bounded exponential backoff whenever the link drops (connection
    reset, frame corruption, coordinator restart).  Returns ``0`` after
    a clean coordinator shutdown, :data:`WORKER_LOST_EXIT_CODE` once the
    reconnect budget is exhausted.
    """
    # Mark the process as a worker so crash faults can find it and the
    # executor layers know not to install signal handlers of their own.
    os.environ.setdefault(faults.WORKER_ENV_VAR, "1")
    failures = 0
    while True:
        try:
            sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            failures += 1
            if failures > reconnect_attempts:
                logger.error(
                    "worker giving up after %d failed connects: %s",
                    failures, error,
                )
                return WORKER_LOST_EXIT_CODE
            time.sleep(min(reconnect_delay * (2.0 ** failures), 1.0))
            continue
        try:
            clean = _serve_coordinator(
                sock,
                heartbeat_override=heartbeat_interval,
                idle_timeout=idle_timeout,
            )
            if clean:
                logger.info("worker received shutdown; exiting")
                return 0
        except (OSError, EOFError) as error:
            failures += 1
            logger.info(
                "worker link lost (%s); reconnect %d/%d",
                error, failures, reconnect_attempts,
            )
            if failures > reconnect_attempts:
                return WORKER_LOST_EXIT_CODE
            time.sleep(min(reconnect_delay * (2.0 ** failures), 1.0))
        finally:
            try:
                sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# Shared cache tier
# ----------------------------------------------------------------------
def serve_cache_connection(
    conn: socket.socket,
    cache: ResultCache,
    *,
    idle_timeout: float = 30.0,
    stop: Optional[Callable[[], bool]] = None,
) -> None:
    """Serve shared-tier requests over one connection until EOF/stop.

    Every ``get`` re-verifies the entry checksum on the serving side
    (corrupt entries are quarantined and reported missing); every
    ``put`` verifies before the atomic write, so a corrupt frame can
    never become a durable cache entry.
    """
    conn.settimeout(min(idle_timeout, 1.0))
    deadline = time.monotonic() + idle_timeout
    while stop is None or not stop():
        try:
            message = recv_frame(conn)
        except TimeoutError:
            if time.monotonic() > deadline:
                return
            continue
        deadline = time.monotonic() + idle_timeout
        kind = message.get("kind")
        if kind == "cache-get":
            raw = cache.get_raw(str(message.get("key", "")))
            send_frame(
                conn,
                {"kind": "cache-entry", "key": message.get("key"),
                 "found": raw is not None, "data": raw},
            )
        elif kind == "cache-put":
            stored = cache.put_raw(
                str(message.get("key", "")), message.get("data") or b""
            )
            send_frame(conn, {"kind": "cache-ok", "stored": stored})
        elif kind == "shutdown":
            return
        else:
            raise FrameProtocolError(f"unexpected cache request {kind!r}")


def serve_cache(
    directory: os.PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    shard_depth: int = 0,
    ready: Optional[Callable[[Tuple[str, int]], None]] = None,
    stop: Optional[Callable[[], bool]] = None,
) -> None:
    """Serve a cache directory as a standalone shared tier (blocking).

    The ``repro cache serve`` CLI entrypoint.  ``ready`` (if given) is
    called with the bound address once listening — tests use it to
    learn the ephemeral port; ``stop`` is polled to end the loop.
    """
    cache = ResultCache(directory, shard_depth=shard_depth)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(16)
    listener.settimeout(0.2)
    if ready is not None:
        ready(listener.getsockname()[:2])
    logger.info("serving cache %s on %s:%d", directory,
                *listener.getsockname()[:2])
    threads: List[threading.Thread] = []

    def _serve_one(conn: socket.socket) -> None:
        try:
            hello = recv_frame(conn)
            if hello.get("role") != "cache":
                raise FrameProtocolError("expected a cache-role hello")
            send_frame(conn, {"kind": "welcome", "heartbeat_interval": 0.0})
            serve_cache_connection(conn, cache, stop=stop)
        except (OSError, EOFError) as error:
            logger.debug("cache connection dropped: %s", error)
        finally:
            try:
                conn.close()
            except OSError:
                pass

    try:
        while stop is None or not stop():
            try:
                conn, _addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=_serve_one, args=(conn,), daemon=True
            )
            threads.append(thread)
            thread.start()
    finally:
        listener.close()
        for thread in threads:
            thread.join(timeout=2.0)
        cache.sync_persistent_stats()


class RemoteCacheTier:
    """Client of a shared cache tier, pluggable into :class:`ResultCache`.

    Duck-typed to the two methods :class:`ResultCache` calls
    (``get_raw`` / ``put_raw``).  Transport failures are *never* fatal:
    a broken shared tier degrades to local-only caching (a miss costs a
    recompute, not a campaign).  The connection is lazy and re-dialled
    after any failure.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 5.0
    ) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._obs = obs.active()

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
            sock.settimeout(self._timeout)
            send_frame(sock, {"kind": "hello", "role": "cache"})
            welcome = recv_frame(sock)
            if welcome.get("kind") != "welcome":
                sock.close()
                raise FrameProtocolError("shared tier rejected the handshake")
            self._sock = sock
        return self._sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def get_raw(self, key: str) -> Optional[bytes]:
        """Fetch raw entry bytes, or ``None`` on miss *or* any failure."""
        with self._lock:
            try:
                sock = self._connection()
                send_frame(sock, {"kind": "cache-get", "key": key})
                reply = recv_frame(sock)
            except (OSError, EOFError) as error:
                logger.warning("shared cache get failed: %s", error)
                self._drop()
                self._inc("cache.remote_errors")
                return None
        if reply.get("kind") != "cache-entry" or not reply.get("found"):
            return None
        data = reply.get("data")
        return data if isinstance(data, bytes) else None

    def put_raw(self, key: str, data: bytes) -> bool:
        """Best-effort push of raw entry bytes to the shared tier."""
        with self._lock:
            try:
                sock = self._connection()
                send_frame(sock, {"kind": "cache-put", "key": key,
                                  "data": data})
                reply = recv_frame(sock)
            except (OSError, EOFError) as error:
                logger.warning("shared cache put failed: %s", error)
                self._drop()
                self._inc("cache.remote_errors")
                return False
        return bool(reply.get("stored"))

    def close(self) -> None:
        with self._lock:
            self._drop()

    def _inc(self, name: str, value: int = 1) -> None:
        if self._obs is not None:
            self._obs.inc(name, value)


# ----------------------------------------------------------------------
# DistributedExecutor
# ----------------------------------------------------------------------
def _package_root() -> str:
    """Directory containing the ``repro`` package (for worker PYTHONPATH)."""
    return str(Path(__file__).resolve().parent.parent.parent)


class _CoordinatorSession(ExecutionSession):
    """Execution session dispatching calls through a coordinator.

    Owns the coordinator, the spawned worker processes and the
    supervisor thread; ``close()`` tears all of it down.  The generic
    :class:`ExecutionSession` surface means :class:`TaskSession` — and
    with it the whole campaign driver — needs no distributed awareness.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        executor: "DistributedExecutor",
        processes: List[subprocess.Popen],
        worker_command: Optional[List[str]],
        worker_env: Optional[Dict[str, str]],
    ) -> None:
        self._coordinator = coordinator
        self._executor = executor
        self._processes = processes
        self._worker_command = worker_command
        self._worker_env = worker_env
        self._closing = threading.Event()
        self._obs = obs.active()
        self._supervisor = threading.Thread(
            target=self._supervise, name="repro-distributed-supervisor",
            daemon=True,
        )
        self._supervisor.start()

    # -- ExecutionSession interface ------------------------------------
    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        return self._coordinator.submit(fn, item)

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        futures = [self.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise

    def map_completed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        pending = {self.submit(fn, item): index
                   for index, item in enumerate(items)}
        try:
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    yield index, future.result()
        finally:
            for future in pending:
                future.cancel()

    def close(self) -> None:
        if self._closing.is_set():
            return
        self._closing.set()
        self._coordinator.close()
        self._supervisor.join(timeout=5.0)
        for process in self._processes:
            if process.poll() is None:
                try:
                    process.terminate()
                    process.wait(timeout=2.0)
                except (OSError, subprocess.TimeoutExpired):
                    process.kill()
                    process.wait(timeout=2.0)

    # -- worker supervision --------------------------------------------
    def _supervise(self) -> None:
        """Respawn dead workers within budget; break the session beyond it.

        The budget is owned by the *executor* and cumulative across its
        sessions — a crash-looping fleet must not reset its allowance by
        breaking and reopening.
        """
        spawned = self._worker_command is not None
        while not self._closing.is_set():
            time.sleep(self._coordinator._poll_interval)
            if self._closing.is_set() or self._coordinator.broken:
                return
            live = 0
            for index, process in enumerate(self._processes):
                if process.poll() is None:
                    live += 1
                    continue
                if not spawned:
                    continue
                if self._executor.consume_respawn():
                    logger.warning(
                        "worker %d exited with code %s; respawning",
                        index, process.returncode,
                    )
                    self._inc("distributed.worker_respawns")
                    self._processes[index] = subprocess.Popen(
                        self._worker_command,
                        env=self._worker_env,
                        stdout=subprocess.DEVNULL,
                    )
                    live += 1
            if spawned and live == 0 and self._executor.respawns_exhausted:
                self._coordinator.mark_broken(
                    "worker respawn budget exhausted and fleet lost"
                )
                self._executor.note_exhausted()
                return
            if (
                not spawned
                and self._coordinator.live_workers == 0
                and time.monotonic() - self._coordinator.last_worker_seen
                > self._executor.worker_wait_timeout
            ):
                self._coordinator.mark_broken(
                    f"no worker connected within "
                    f"{self._executor.worker_wait_timeout:.0f}s"
                )
                self._executor.note_exhausted()
                return

    def _inc(self, name: str, value: int = 1) -> None:
        if self._obs is not None:
            self._obs.inc(name, value)


class DistributedExecutor(Executor):
    """Executor dispatching task batches to TCP workers via a coordinator.

    Parameters
    ----------
    workers:
        Fleet size.  With ``spawn_workers=True`` (the default) that many
        loopback ``repro worker`` subprocesses are started and
        supervised per session; with ``False`` the executor only listens
        and any externally started worker (``repro worker --connect
        host:port``) may join.
    heartbeat_interval / lease_timeout:
        Liveness knobs: workers heartbeat every ``heartbeat_interval``
        seconds while executing; a lease not renewed within
        ``lease_timeout`` is reassigned.  Identity-free, like every
        scheduling knob.
    max_assignments:
        Lease reassignments per batch before the coordinator escalates
        the loss to the campaign as a retryable error.
    max_worker_respawns:
        Cumulative dead-worker respawns per executor (default
        ``2 * workers``).  Beyond it a dead fleet breaks the session and
        the next ``open_task_session()`` degrades to a local
        :class:`ParallelExecutor` — a campaign never strands.
    cache:
        Optional :class:`ResultCache` served to workers/peers as the
        shared tier over the same socket.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_interval: float = 0.25,
        lease_timeout: float = 2.0,
        max_assignments: int = 4,
        max_worker_respawns: Optional[int] = None,
        spawn_workers: bool = True,
        worker_wait_timeout: float = 60.0,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.lease_timeout = lease_timeout
        self.max_assignments = max_assignments
        self.max_worker_respawns = (
            max_worker_respawns if max_worker_respawns is not None
            else 2 * workers
        )
        self.spawn_workers = spawn_workers
        self.worker_wait_timeout = worker_wait_timeout
        self.cache = cache
        self._respawn_lock = threading.Lock()
        self._respawns_used = 0
        self._exhausted = False
        self._obs = obs.active()

    @property
    def worker_count(self) -> int:  # type: ignore[override]
        return self.workers

    # -- respawn budget (cumulative across sessions) -------------------
    def consume_respawn(self) -> bool:
        with self._respawn_lock:
            if self._respawns_used >= self.max_worker_respawns:
                return False
            self._respawns_used += 1
            return True

    @property
    def respawns_exhausted(self) -> bool:
        with self._respawn_lock:
            return self._respawns_used >= self.max_worker_respawns

    def note_exhausted(self) -> None:
        self._exhausted = True

    @property
    def degraded(self) -> bool:
        """Whether the executor has fallen back to local execution."""
        return self._exhausted

    # -- sessions -------------------------------------------------------
    def open_task_session(self) -> TaskSession:
        """Open a distributed task session — or a local one when degraded.

        The final rung of the heal ladder: after retry, lease
        reassignment and worker respawn have all been exhausted, the
        campaign's ``respawn_session()`` lands here and gets a local
        :class:`ParallelExecutor` session instead of another doomed
        fleet.
        """
        if self._exhausted:
            logger.warning(
                "distributed backend exhausted its worker respawn budget; "
                "degrading to a local ParallelExecutor(jobs=%d)",
                self.workers,
            )
            if self._obs is not None:
                self._obs.inc("distributed.degraded_local")
            return ParallelExecutor(jobs=self.workers).open_task_session()
        return TaskSession(self._open_coordinator_session())

    def open_session(self, initializer=None, initargs=()) -> ExecutionSession:
        """Generic sessions fall back to the in-process serial default.

        Distributed workers do not support per-worker initializers (the
        pair-flow engine ships snapshots that way); experiment tasks
        need none, so only :meth:`open_task_session` is distributed.
        """
        return super().open_session(initializer, initargs)

    def _open_coordinator_session(self) -> _CoordinatorSession:
        coordinator = Coordinator(
            self.host, self.port,
            heartbeat_interval=self.heartbeat_interval,
            lease_timeout=self.lease_timeout,
            max_assignments=self.max_assignments,
            cache=self.cache,
        )
        coordinator.start()
        host, port = coordinator.address
        processes: List[subprocess.Popen] = []
        command: Optional[List[str]] = None
        env: Optional[Dict[str, str]] = None
        if self.spawn_workers:
            command = [
                sys.executable, "-m", "repro.cli", "worker",
                "--connect", f"{host}:{port}",
            ]
            env = dict(os.environ)
            parts = env.get("PYTHONPATH", "")
            root = _package_root()
            if root not in parts.split(os.pathsep):
                env["PYTHONPATH"] = (
                    root + (os.pathsep + parts if parts else "")
                )
            env[faults.WORKER_ENV_VAR] = "1"
            try:
                for _ in range(self.workers):
                    processes.append(
                        subprocess.Popen(
                            command, env=env, stdout=subprocess.DEVNULL
                        )
                    )
            except BaseException:
                coordinator.close()
                for process in processes:
                    process.kill()
                raise
        return _CoordinatorSession(
            coordinator, self, processes, command, env
        )

    # -- whole-batch convenience ---------------------------------------
    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        """Execute ``tasks`` remotely, one single-task batch per lease."""
        if not tasks:
            return []
        session = self.open_task_session()
        try:
            results = session.run_batches(
                [[(index, task)] for index, task in enumerate(tasks)],
                on_result,
            )
        finally:
            session.close()
        return [results[index] for index in range(len(tasks))]
