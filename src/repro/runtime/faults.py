"""Deterministic fault injection for the experiment runtime.

The resilience layer (retry/backoff, batch bisection, session respawn,
cache quarantine — see :mod:`repro.runtime.resilience` and the campaign
driver) must be provable without flaky tests.  This module provides the
harness: a :class:`FaultPlan` parsed from the ``REPRO_FAULTS`` environment
variable (or the ``--faults`` CLI option, which sets it) describes *which*
fault fires at *which occurrence* of each injection site, so a chaos test
can assert "the second task execution in every worker process crashes"
and get exactly that, on every run, on every machine.

Sites and kinds
---------------
``task-error``
    Raise :class:`InjectedTaskError` instead of running a task.
``worker-crash``
    Hard-kill the executing process with ``os._exit`` mid-batch —
    *worker processes only* (a plan can never take down the campaign
    driver itself; in-process execution ignores crash faults).
``stall``
    Sleep before running a task (``=seconds`` parameter, default 0.5) —
    used to provoke the campaign's straggler hedging.
``corrupt-read``
    Flip a byte of the on-disk cache entry before a ``get`` reads it.
``corrupt-write``
    Flip a byte of the serialised payload after its checksum was
    computed, so the entry lands corrupt on disk.
``conn-drop``
    Raise :class:`InjectedConnectionError` at the distributed frame
    layer, modelling a connection reset mid-send.
``frame-corrupt``
    Flip a byte of an outgoing frame payload *after* its checksum was
    computed, so the receiver detects the mismatch and drops the link.
``delay``
    Sleep before sending a frame (``=seconds``, default 0.05) — models
    a slow link and provokes heartbeat/lease machinery.
``partition``
    Sleep (``=seconds``, default 1.0) and then drop the connection —
    long enough for the coordinator's lease to expire and the batch to
    be reassigned, exercising first-result-wins dedupe.

Spec grammar
------------
Semicolon-separated clauses, each ``kind@matcher`` with an optional
``=param``::

    worker-crash@2;task-error@1,4;stall@3=0.25;corrupt-write@p0.1

A matcher is either a comma list of 1-based occurrence numbers (the nth
time that kind's site is reached *in the observing process*) or
``p<fraction>`` — a seeded pseudo-random coin whose outcome is a pure
function of ``(seed, kind, occurrence)``, deterministic across runs.  A
``seed=N`` clause sets the plan seed (default 0).

Occurrence counters are per process: a respawned worker starts a fresh
count, which is exactly what makes "every worker crashes on its second
task" expressible — the property the bounded-respawn/degrade-to-serial
ladder is tested against.

Like every scheduling knob, ``REPRO_FAULTS`` is identity-free: it never
enters a task fingerprint, so results computed under injected faults are
cached and compared interchangeably with fault-free ones.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Tuple, Union

#: Environment variable holding the fault spec (exported to workers).
ENV_VAR = "REPRO_FAULTS"

#: Set to ``"1"`` in distributed worker processes (spawned via the
#: ``repro worker`` CLI rather than multiprocessing) so crash faults can
#: recognise them — see :func:`in_worker_process`.
WORKER_ENV_VAR = "REPRO_WORKER"

#: Fault kinds (also the clause names of the spec grammar).
KIND_TASK_ERROR = "task-error"
KIND_WORKER_CRASH = "worker-crash"
KIND_STALL = "stall"
KIND_CORRUPT_READ = "corrupt-read"
KIND_CORRUPT_WRITE = "corrupt-write"
KIND_CONN_DROP = "conn-drop"
KIND_FRAME_CORRUPT = "frame-corrupt"
KIND_DELAY = "delay"
KIND_PARTITION = "partition"
KINDS = (
    KIND_TASK_ERROR,
    KIND_WORKER_CRASH,
    KIND_STALL,
    KIND_CORRUPT_READ,
    KIND_CORRUPT_WRITE,
    KIND_CONN_DROP,
    KIND_FRAME_CORRUPT,
    KIND_DELAY,
    KIND_PARTITION,
)

#: Exit status of an injected worker crash (distinguishable from real
#: segfaults and from pytest/interpreter exits in test assertions).
CRASH_EXIT_CODE = 73

#: Sleep applied by a ``stall`` clause with no ``=seconds`` parameter.
DEFAULT_STALL_SECONDS = 0.5

#: Sleep applied by a ``delay`` clause with no ``=seconds`` parameter.
DEFAULT_DELAY_SECONDS = 0.05

#: Sleep applied by a ``partition`` clause with no ``=seconds``
#: parameter — the default is deliberately longer than the test-profile
#: lease timeouts so a partition reliably triggers reassignment.
DEFAULT_PARTITION_SECONDS = 1.0


class FaultError(RuntimeError):
    """Base class of injected failures.

    ``retryable`` marks them for the campaign's retry classification —
    an injected fault models a transient infrastructure failure, which
    is precisely the class of error a retry is allowed to heal.
    """

    retryable = True


class InjectedTaskError(FaultError):
    """Raised in place of running a task when a ``task-error`` fault fires."""


class InjectedConnectionError(ConnectionError):
    """Raised at the frame layer by ``conn-drop`` / ``partition`` faults.

    Subclasses :class:`ConnectionError` so the distributed transport and
    the campaign's retry classification treat it exactly like a real
    connection reset — no special-casing of injected failures anywhere
    downstream.
    """

    retryable = True


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec that does not parse."""


def _unit_fraction(seed: int, kind: str, occurrence: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}:{kind}:{occurrence}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultRule:
    """One parsed clause: when (and how) a fault kind fires."""

    kind: str
    occurrences: FrozenSet[int] = frozenset()
    probability: Optional[float] = None
    param: Optional[float] = None

    def fires(self, occurrence: int, seed: int) -> bool:
        """Whether this rule fires at the given 1-based occurrence."""
        if self.occurrences:
            return occurrence in self.occurrences
        if self.probability is not None:
            return _unit_fraction(seed, self.kind, occurrence) < self.probability
        return False


@dataclass
class FaultPlan:
    """A parsed fault spec plus this process's occurrence counters."""

    rules: Dict[str, FaultRule]
    seed: int = 0
    spec: str = ""
    counters: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see the module docstring for the grammar)."""
        rules: Dict[str, FaultRule] = {}
        seed = 0
        for raw_clause in spec.split(";"):
            clause = raw_clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                try:
                    seed = int(clause[len("seed="):])
                except ValueError:
                    raise FaultSpecError(f"invalid seed clause {clause!r}")
                continue
            if "@" not in clause:
                raise FaultSpecError(
                    f"fault clause {clause!r} is missing '@matcher' "
                    f"(expected e.g. 'worker-crash@2')"
                )
            kind, _, rest = clause.partition("@")
            kind = kind.strip()
            if kind not in KINDS:
                raise FaultSpecError(
                    f"unknown fault kind {kind!r}; expected one of {KINDS}"
                )
            if kind in rules:
                raise FaultSpecError(f"duplicate fault clause for {kind!r}")
            matcher, _, param_text = rest.partition("=")
            matcher = matcher.strip()
            param: Optional[float] = None
            if param_text:
                try:
                    param = float(param_text)
                except ValueError:
                    raise FaultSpecError(
                        f"invalid parameter {param_text!r} in clause {clause!r}"
                    )
                if param < 0:
                    raise FaultSpecError(
                        f"parameter must be >= 0 in clause {clause!r}"
                    )
            occurrences: FrozenSet[int] = frozenset()
            probability: Optional[float] = None
            if matcher.startswith("p"):
                try:
                    probability = float(matcher[1:])
                except ValueError:
                    raise FaultSpecError(
                        f"invalid probability matcher {matcher!r}"
                    )
                if not 0.0 <= probability <= 1.0:
                    raise FaultSpecError(
                        f"probability must be in [0, 1], got {probability}"
                    )
            else:
                try:
                    numbers = [int(part) for part in matcher.split(",")]
                except ValueError:
                    raise FaultSpecError(
                        f"invalid occurrence matcher {matcher!r} in "
                        f"clause {clause!r}"
                    )
                if not numbers or any(number < 1 for number in numbers):
                    raise FaultSpecError(
                        f"occurrences must be >= 1 in clause {clause!r}"
                    )
                occurrences = frozenset(numbers)
            rules[kind] = FaultRule(
                kind=kind,
                occurrences=occurrences,
                probability=probability,
                param=param,
            )
        return cls(rules=rules, seed=seed, spec=spec)

    def check(self, kind: str) -> Optional[FaultRule]:
        """Count one occurrence of ``kind``'s site; return a firing rule.

        Sites without a configured rule are not counted, so adding a
        clause for one kind never shifts another kind's occurrence
        numbering.
        """
        rule = self.rules.get(kind)
        if rule is None:
            return None
        occurrence = self.counters.get(kind, 0) + 1
        self.counters[kind] = occurrence
        if rule.fires(occurrence, self.seed):
            return rule
        return None


# ----------------------------------------------------------------------
# Per-process active plan (parsed lazily from the environment, so worker
# processes — which inherit the environment — build their own plan with
# fresh occurrence counters).
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tuple[str, FaultPlan]] = None


def active_plan() -> Optional[FaultPlan]:
    """The process's fault plan, or ``None`` when ``REPRO_FAULTS`` is unset.

    Parsed once per distinct spec string and cached together with its
    occurrence counters; a malformed spec raises :class:`FaultSpecError`
    at the first injection site rather than silently injecting nothing.
    """
    global _ACTIVE
    spec = os.environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    if _ACTIVE is None or _ACTIVE[0] != spec:
        _ACTIVE = (spec, FaultPlan.parse(spec))
    return _ACTIVE[1]


def reset() -> None:
    """Drop the cached plan and its counters (tests and CLI runs)."""
    global _ACTIVE
    _ACTIVE = None


def in_worker_process() -> bool:
    """Whether this process is a worker (multiprocessing or distributed).

    Distributed workers are plain subprocesses, not multiprocessing
    children, so the ``repro worker`` entrypoint marks them with
    ``REPRO_WORKER=1`` instead.
    """
    if multiprocessing.parent_process() is not None:
        return True
    return os.environ.get(WORKER_ENV_VAR, "") == "1"


def maybe_inject_task_fault(label: str = "") -> None:
    """Fire any task-execution faults due at this site.

    Called once per task execution by the executor layer.  Crash faults
    only ever fire in worker processes: injected chaos must be able to
    kill workers (the campaign heals them) but never the campaign driver
    itself — degrading to the serial executor is safe for the same
    reason.
    """
    plan = active_plan()
    if plan is None:
        return
    if in_worker_process() and plan.check(KIND_WORKER_CRASH) is not None:
        # A hard crash, not an exception: skips atexit handlers and
        # pool bookkeeping exactly like an OOM kill would.
        os._exit(CRASH_EXIT_CODE)
    rule = plan.check(KIND_STALL)
    if rule is not None:
        time.sleep(rule.param if rule.param is not None else DEFAULT_STALL_SECONDS)
    if plan.check(KIND_TASK_ERROR) is not None:
        raise InjectedTaskError(
            f"injected task fault ({label or 'task'})"
        )


def corrupt_payload(data: bytes) -> bytes:
    """Deterministically corrupt ``data`` (flip one bit mid-payload)."""
    if not data:
        return b"\x00"
    position = len(data) // 2
    corrupted = bytearray(data)
    corrupted[position] ^= 0x01
    return bytes(corrupted)


def maybe_corrupt_bytes(kind: str, data: bytes) -> bytes:
    """Return ``data``, corrupted when a ``kind`` fault is due."""
    plan = active_plan()
    if plan is None or plan.check(kind) is None:
        return data
    return corrupt_payload(data)


def maybe_inject_frame_fault(payload: bytes) -> bytes:
    """Fire any network faults due at a frame send; return the payload.

    Called by the distributed frame codec once per *data* frame sent
    (heartbeats are exempt so occurrence numbering does not depend on
    wall-clock heartbeat cadence).  ``delay`` sleeps, ``partition``
    sleeps then drops, ``conn-drop`` drops immediately, and
    ``frame-corrupt`` flips a payload byte after the checksum was
    computed so the *receiver* detects the mismatch.
    """
    plan = active_plan()
    if plan is None:
        return payload
    rule = plan.check(KIND_DELAY)
    if rule is not None:
        time.sleep(rule.param if rule.param is not None else DEFAULT_DELAY_SECONDS)
    rule = plan.check(KIND_PARTITION)
    if rule is not None:
        time.sleep(
            rule.param if rule.param is not None else DEFAULT_PARTITION_SECONDS
        )
        raise InjectedConnectionError("injected network partition")
    if plan.check(KIND_CONN_DROP) is not None:
        raise InjectedConnectionError("injected connection drop")
    return maybe_corrupt_bytes(KIND_FRAME_CORRUPT, payload)


def maybe_corrupt_file(path: Union[str, Path]) -> None:
    """Corrupt the file at ``path`` in place when a ``corrupt-read`` is due."""
    plan = active_plan()
    if plan is None or plan.check(KIND_CORRUPT_READ) is None:
        return
    target = Path(path)
    try:
        target.write_bytes(corrupt_payload(target.read_bytes()))
    except OSError:
        pass
