"""The unit of work of the experiment runtime.

An :class:`ExperimentTask` pins down everything that determines one
:class:`~repro.experiments.runner.ExperimentResult`: the scenario, the fully
resolved scale profile, the root seed, the max-flow algorithm and whether
routing-table snapshots are kept.  Because the simulation is a pure function
of these inputs (every stochastic component draws from named child streams
of the root seed, see :mod:`repro.simulator.random_source`), a task's
content hash is a valid cache key and tasks can run in any process without
changing their output.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict

from repro.experiments.profiles import ScaleProfile, get_profile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import Scenario

#: Version of the task fingerprint layout.  Bump when the meaning of a
#: fingerprint field changes so stale cache entries can never be mistaken
#: for current ones.
TASK_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ExperimentTask:
    """One fully specified simulation run.

    ``flow_jobs`` configures the per-snapshot batched pair-flow engine and
    is deliberately **excluded** from the fingerprint: the engine produces
    bit-identical statistics for any worker count, so two tasks differing
    only in ``flow_jobs`` are the same experiment and share one cache
    entry.  ``adaptive_shards`` (cost-model-driven shard sizing and
    tightness-ordered minimum passes, see
    :mod:`repro.runtime.pairflow`) is excluded for the same reason:
    scheduling changes only *when* flows run, never any recorded
    statistic.

    ``connectivity`` selects the per-snapshot measurement mode:
    ``"exact"`` (the paper's pipeline, the default) or ``"estimate"``
    (sampled-pair estimation, :mod:`repro.core.estimation`).  The mode
    and its ``sample_pairs`` / ``ci_level`` parameters are
    **identity-bearing** — estimated results are statistically, not
    bit-, compatible with exact ones, so they live under their own
    fingerprint dimension.  Exact-mode fingerprints keep the
    pre-estimation encoding (keys omitted) so committed cache entries
    stay valid.
    """

    scenario: Scenario
    profile: ScaleProfile
    seed: int
    algorithm: str = "dinic"
    keep_snapshots: bool = False
    flow_jobs: int = 1
    adaptive_shards: bool = False
    connectivity: str = "exact"
    sample_pairs: int = 256
    ci_level: float = 0.95

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        scenario: Scenario,
        profile: "ScaleProfile | str",
        seed: int,
        algorithm: str = "dinic",
        keep_snapshots: bool = False,
        flow_jobs: int = 1,
        adaptive_shards: bool = False,
        connectivity: str = "exact",
        sample_pairs: int = 256,
        ci_level: float = 0.95,
    ) -> "ExperimentTask":
        """Build a task, resolving a profile name to its definition."""
        if connectivity not in ("exact", "estimate"):
            raise ValueError(
                f"connectivity must be 'exact' or 'estimate', got {connectivity!r}"
            )
        resolved = get_profile(profile) if isinstance(profile, str) else profile
        return cls(
            scenario=scenario,
            profile=resolved,
            seed=int(seed),
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=int(flow_jobs),
            adaptive_shards=bool(adaptive_shards),
            connectivity=connectivity,
            sample_pairs=int(sample_pairs),
            ci_level=float(ci_level),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> Dict:
        """Return the canonical JSON-serialisable identity of this task.

        Every field that influences the result is included (``flow_jobs``
        and ``adaptive_shards`` are not — see the class docstring); two
        tasks are interchangeable exactly when their fingerprints are
        equal.  The overlay protocol is identity-bearing, but Kademlia
        fingerprints keep the pre-protocol-dimension encoding (key
        omitted) so committed cache entries stay valid.
        """
        scenario = asdict(self.scenario)
        if scenario.get("protocol") == "kademlia":
            del scenario["protocol"]
        fingerprint = {
            "format": TASK_FORMAT_VERSION,
            "scenario": scenario,
            "profile": asdict(self.profile),
            "seed": self.seed,
            "algorithm": self.algorithm,
            "keep_snapshots": self.keep_snapshots,
        }
        if self.connectivity != "exact":
            fingerprint["connectivity"] = {
                "mode": self.connectivity,
                "sample_pairs": self.sample_pairs,
                "ci_level": self.ci_level,
            }
        return fingerprint

    def key(self) -> str:
        """Content-addressed key: SHA-256 over the canonical fingerprint.

        The fingerprint is serialised with sorted keys and no whitespace, so
        the key is stable across processes, platforms and Python's per-run
        hash randomisation.
        """
        canonical = json.dumps(
            self.fingerprint(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable description (progress reporting)."""
        return (
            f"{self.scenario.name} [profile={self.profile.name}, "
            f"seed={self.seed}, algorithm={self.algorithm}]"
        )

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the task in the current process."""
        return ExperimentRunner.for_task(self).run(self.scenario)


def execute_task(task: ExperimentTask) -> ExperimentResult:
    """Module-level task entry point (picklable for process pools).

    Every execution path — serial, per-task pool, warm batched session —
    funnels through here or :class:`~repro.runtime.executor._WarmWorkerState`,
    which makes this the injection site for the deterministic fault
    harness (:mod:`repro.runtime.faults`); a no-op when ``REPRO_FAULTS``
    is unset.
    """
    from repro.runtime import faults

    faults.maybe_inject_task_fault(task.label())
    return task.run()


def derive_seed(root_seed: int, *parts: object) -> int:
    """Derive a child seed from ``root_seed`` and a path of name parts.

    Mirrors :meth:`repro.simulator.random_source.RandomSource.spawn`: the
    derivation hashes the textual path, so it is stable across processes and
    independent of execution order.  Used by the campaign driver to give
    every replication its own reproducible universe.
    """
    path = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(f"{int(root_seed)}/{path}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
