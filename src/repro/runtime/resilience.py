"""Self-healing primitives for campaign execution.

The campaign driver (:mod:`repro.runtime.campaign`) composes these into
its batched dispatch loop:

:class:`RetryPolicy`
    Bounded attempts with seeded exponential backoff — the schedule is a
    pure function of ``(seed, key, attempt)``, so two runs of the same
    campaign back off identically (no flaky timing in tests) and two
    different tasks de-synchronise their retries.  Also carries the
    session-respawn budget and the straggler-hedging knobs.
:func:`is_retryable`
    Error classification.  Infrastructure failures (broken pools, OS
    errors, timeouts, injected faults) are retryable; ordinary task
    exceptions are not — tasks are deterministic, so re-running a task
    that raised ``ValueError`` would raise it again.
:class:`TaskFailureRecord` / :class:`CampaignTaskFailure`
    The structured form of a *poison task*: a task that keeps failing
    after batch bisection isolated it.  The campaign completes every
    other task, then raises :class:`CampaignTaskFailure` carrying the
    records and the partial results — "run() returned" still means
    "every result is valid".
:class:`ShutdownGuard`
    Cooperative SIGINT/SIGTERM handling: the first signal sets a flag the
    dispatch loop polls (stop dispatching, flush completed work, close
    sessions, raise :class:`CampaignInterrupted`); a second SIGINT
    raises :class:`KeyboardInterrupt` for users who really mean it.

None of these knobs enters a task fingerprint: retrying, hedging or
degrading to serial execution may change *when and where* a task runs,
never a bit of its result.
"""

from __future__ import annotations

import hashlib
import logging
import os
import signal
import threading
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult

logger = logging.getLogger(__name__)

#: Environment override for the *default* per-task attempt budget
#: (mirrors ``REPRO_CAMPAIGN_BATCH``): consulted only when a campaign is
#: constructed without an explicit :class:`RetryPolicy`.  CI's chaos leg
#: uses it to run the determinism digest suite under an aggressive
#: ``REPRO_FAULTS`` crash profile with a budget that cannot be exhausted
#: by attempts charged to innocent in-flight tasks.  Identity-free like
#: every retry knob.
RETRIES_ENV_VAR = "REPRO_CAMPAIGN_RETRIES"


def _unit_fraction(seed: int, key: str, attempt: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(f"{seed}/{key}/{attempt}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry/respawn/hedging policy.

    Parameters
    ----------
    max_attempts:
        Executions of a single (bisected-down-to-singleton) task before
        it is poisoned.  ``1`` disables retries.
    max_respawns:
        Worker-pool respawns per ``run()`` after the pool broke (a worker
        died); once exhausted the campaign degrades to in-process serial
        execution for the remaining tasks.
    base_delay / max_delay / jitter / seed:
        Backoff schedule: attempt ``a`` (1-based) sleeps
        ``min(base_delay * 2**(a-1) * (1 + jitter * u(seed, key, a)),
        max_delay)`` where ``u`` is a deterministic uniform draw.  With
        ``jitter <= 1`` the schedule is monotone non-decreasing (the
        doubling dominates the jitter band) and capped at ``max_delay``.
    straggler_factor / min_straggler_seconds / hedge:
        A dispatched batch whose runtime exceeds
        ``max(min_straggler_seconds, straggler_factor * predicted)`` —
        prediction from the cost model — is *hedged*: its unfinished
        tasks are speculatively re-dispatched and the first result wins.
        Safe because tasks are deterministic and cache puts idempotent.
    """

    max_attempts: int = 3
    max_respawns: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    straggler_factor: float = 4.0
    min_straggler_seconds: float = 2.0
    hedge: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < self.base_delay:
            raise ValueError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )

    @property
    def fail_fast(self) -> bool:
        """Whether every healing mechanism is disabled.

        A fail-fast policy restores the legacy batched-dispatch contract:
        the first batch error propagates out of ``run()`` unhealed — no
        retry, no bisection, no respawn, no serial degradation.  The
        degradation guarantee matters for callers whose *task code* can
        kill its process (the healing loop would otherwise eventually
        re-run such a task in the driver process).
        """
        return (
            self.max_attempts <= 1 and self.max_respawns == 0 and not self.hedge
        )

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = self.base_delay * (2.0 ** (attempt - 1))
        raw *= 1.0 + self.jitter * _unit_fraction(self.seed, key, attempt)
        return min(raw, self.max_delay)

    def backoff_schedule(self, attempts: int, key: str = "") -> List[float]:
        """The full delay sequence for ``attempts`` retries of one task."""
        return [self.backoff_delay(a, key) for a in range(1, attempts + 1)]


#: Retry policy with every healing mechanism disabled — legacy fail-fast
#: dispatch (first error propagates, no respawn, no hedging).
FAIL_FAST = RetryPolicy(max_attempts=1, max_respawns=0, hedge=False)


def default_retry_policy() -> RetryPolicy:
    """The policy campaigns use when none is passed explicitly.

    ``RetryPolicy()`` unless :data:`RETRIES_ENV_VAR` overrides the
    attempt budget; a malformed value raises :class:`ValueError` here
    (at campaign construction) rather than surfacing as mystery
    exhaustion mid-run.
    """
    configured = os.environ.get(RETRIES_ENV_VAR, "").strip()
    if configured == "":
        return RetryPolicy()
    try:
        attempts = int(configured)
    except ValueError:
        raise ValueError(
            f"{RETRIES_ENV_VAR} must be a positive integer, "
            f"got {configured!r}"
        ) from None
    return RetryPolicy(max_attempts=attempts)


def is_retryable(error: BaseException) -> bool:
    """Whether re-running the failed work could plausibly succeed.

    Broken pools (a worker died), OS errors (including every
    ``ConnectionError`` the distributed transport raises), and timeouts
    are infrastructure failures; injected faults carry
    ``retryable = True`` themselves.  Everything else — ordinary
    exceptions raised *by* a deterministic task — would simply recur, so
    it fails fast into a poison record instead of burning the retry
    budget.

    The classification walks the exception chain (``__cause__`` and
    ``__context__``): a ``ConnectionError`` wrapped in a framework
    error — ``raise RuntimeError(...) from conn_err`` — must still heal.
    The walk visits each exception object once, so cyclic chains (which
    Python permits) terminate.
    """
    stack: List[BaseException] = [error]
    seen: set = set()
    while stack:
        current = stack.pop()
        if id(current) in seen:
            continue
        seen.add(id(current))
        if isinstance(current, (BrokenExecutor, OSError, TimeoutError)):
            return True
        if bool(getattr(current, "retryable", False)):
            return True
        for linked in (current.__cause__, current.__context__):
            if isinstance(linked, BaseException):
                stack.append(linked)
    return False


@dataclass(frozen=True)
class TaskFailureRecord:
    """Structured record of one permanently failed (poison) task."""

    index: int
    key: str
    label: str
    attempts: int
    error_type: str
    error_message: str
    retryable: bool

    @classmethod
    def from_error(
        cls,
        index: int,
        key: str,
        label: str,
        attempts: int,
        error: BaseException,
    ) -> "TaskFailureRecord":
        return cls(
            index=index,
            key=key,
            label=label,
            attempts=attempts,
            error_type=type(error).__name__,
            error_message=str(error),
            retryable=is_retryable(error),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "retryable": self.retryable,
        }


class CampaignTaskFailure(RuntimeError):
    """Some tasks failed permanently; every other task completed.

    ``failures`` holds one :class:`TaskFailureRecord` per poison task;
    ``results`` the submission-ordered result list with ``None`` at the
    failed positions — completed work (already cached) is never thrown
    away with the exception.
    """

    def __init__(
        self,
        failures: Sequence[TaskFailureRecord],
        results: Sequence[Optional[ExperimentResult]],
    ) -> None:
        self.failures = list(failures)
        self.results = list(results)
        labels = ", ".join(record.label for record in self.failures[:3])
        if len(self.failures) > 3:
            labels += ", ..."
        super().__init__(
            f"{len(self.failures)} task(s) failed permanently after "
            f"retries: {labels}"
        )


class CampaignInterrupted(RuntimeError):
    """A shutdown signal stopped the campaign after a clean flush.

    Completed results were recorded (and cached), sessions closed and
    stats flushed before this was raised; a re-run resumes warm from the
    cache.
    """

    def __init__(self, signal_name: str, completed: int, total: int) -> None:
        self.signal_name = signal_name
        self.completed = completed
        self.total = total
        super().__init__(
            f"campaign interrupted by {signal_name} after {completed}/{total} "
            f"task(s); completed results are cached — re-run to resume"
        )


class ShutdownGuard:
    """Turns the first SIGINT/SIGTERM into a cooperative shutdown flag.

    Installed only in the main thread of the main interpreter (signal
    handlers cannot be set elsewhere); everywhere else it is an inert
    flag that never trips.  A second SIGINT raises
    :class:`KeyboardInterrupt` immediately — graceful shutdown must
    never take the ability to actually stop away from the user.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self._requested: Optional[str] = None
        self._previous: Dict[int, object] = {}
        self.installed = False

    @property
    def requested(self) -> Optional[str]:
        """Name of the received signal, or ``None``."""
        return self._requested

    def _handle(self, signum: int, _frame: object) -> None:
        if self._requested is not None and signum == signal.SIGINT:
            raise KeyboardInterrupt
        self._requested = signal.Signals(signum).name

    def __enter__(self) -> "ShutdownGuard":
        if threading.current_thread() is not threading.main_thread():
            # Embedding a Campaign in a server/worker thread is
            # supported: signal handlers simply cannot be installed
            # there, so graceful-shutdown-on-signal is owned by whatever
            # runs the main thread.  Logged (once per guard) rather than
            # raised or silently ignored.
            logger.debug(
                "ShutdownGuard: not on the main thread; signal handlers "
                "not installed (cooperative shutdown disabled for this "
                "campaign)"
            )
            return self
        try:
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(
                    signum, self._handle
                )
            self.installed = True
        except ValueError:  # pragma: no cover - non-main interpreter
            self._previous.clear()
        return self

    def __exit__(self, *_exc_info) -> None:
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):  # pragma: no cover
                pass
        self._previous.clear()
        self.installed = False
