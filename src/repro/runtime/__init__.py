"""Experiment execution runtime.

The paper's evaluation is a large grid of *independent* simulation runs —
scenarios A–L crossed with bucket-size, alpha, staleness and loss sweeps,
each replicated over seeds.  This package turns that observation into an
execution harness:

* :mod:`repro.runtime.task` — :class:`ExperimentTask`, the fully specified
  unit of work (scenario, profile, seed, algorithm), with a stable
  content-addressed key and deterministic child-seed derivation;
* :mod:`repro.runtime.executor` — :class:`SerialExecutor` and the
  process-pool backed :class:`ParallelExecutor`, which produce bit-identical
  results because every task carries its own random universe; plus the
  persistent-worker :class:`TaskSession` (one long-lived pool running
  whole task batches per worker call, warm per-process state across a
  campaign);
* :mod:`repro.runtime.cache` — :class:`ResultCache`, an on-disk
  content-addressed store of :class:`ExperimentResult` documents with
  hit/miss statistics and an eviction API;
* :mod:`repro.runtime.campaign` — :class:`Campaign`, the driver that
  expresses sweeps and replications as task batches and streams progress
  (with per-task results) while dispatching them through executor and
  cache, in submission order or cheapest-first;
* :mod:`repro.runtime.costmodel` — the persistent cost models behind
  cost-aware scheduling: :class:`TaskCostModel` (wall-clock by coarse
  task shape, ``_costs.json`` sidecar beside the result cache) and
  :class:`PairCostTracker` (per-pair max-flow cost feeding the pair-flow
  engine's adaptive shard sizing);
* :mod:`repro.runtime.faults` — the deterministic fault-injection harness
  (``REPRO_FAULTS``): seeded nth-occurrence/probability matchers that
  crash workers, raise task errors, stall batches, corrupt cache bytes
  and mangle network frames (drops, corruption, delays, partitions),
  for chaos-testing the layers below without touching any result;
* :mod:`repro.runtime.distributed` — the TCP work-queue backend:
  :class:`DistributedExecutor` (coordinator with lease-based dispatch,
  heartbeat liveness, bounded worker respawn, local degrade), the
  ``repro worker`` loop, and the shared cache tier
  (:class:`RemoteCacheTier` / ``repro cache serve``) layered over the
  same checksummed frame codec;
* :mod:`repro.runtime.resilience` — the self-healing primitives the
  campaign composes around the executor: :class:`RetryPolicy` (bounded
  seeded backoff, respawn budget, straggler hedging), poison-task
  records, and the cooperative :class:`ShutdownGuard`.

Every higher layer (``repro.experiments.sweep``, ``repro.experiments
.replication``, the CLI and the benchmark harness) dispatches its runs
through this package; the distributed backend is exactly the "new
:class:`Executor`" that contract promised.
"""

from repro.runtime.cache import CacheInfo, CacheStats, ResultCache, VerifyReport
from repro.runtime.campaign import (
    BATCH_AUTO,
    BATCH_ENV_VAR,
    BATCH_OFF,
    SCHEDULE_CHEAPEST,
    SCHEDULE_FIFO,
    Campaign,
    TaskProgress,
    resolve_batch,
)
from repro.runtime.costmodel import (
    CostModel,
    PairCostTracker,
    TaskCostModel,
    task_shape_key,
)
from repro.runtime.distributed import (
    Coordinator,
    DistributedExecutor,
    FrameChecksumError,
    FrameError,
    RemoteCacheTier,
    RemoteTaskError,
    WorkerLostError,
    parse_address,
    run_worker,
    serve_cache,
)
from repro.runtime.executor import (
    EXECUTOR_BACKENDS,
    ExecutionSession,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    TaskSession,
    execute_task_batch,
    make_executor,
)
from repro.runtime.faults import (
    FaultPlan,
    FaultSpecError,
    InjectedConnectionError,
    InjectedTaskError,
)
from repro.runtime.pairflow import PairFlowEngine, PairFlowOutcome
from repro.runtime.resilience import (
    FAIL_FAST,
    RETRIES_ENV_VAR,
    CampaignInterrupted,
    CampaignTaskFailure,
    RetryPolicy,
    ShutdownGuard,
    TaskFailureRecord,
    default_retry_policy,
    is_retryable,
)
from repro.runtime.task import ExperimentTask, derive_seed, execute_task

__all__ = [
    "BATCH_AUTO",
    "BATCH_ENV_VAR",
    "BATCH_OFF",
    "CacheInfo",
    "CacheStats",
    "Campaign",
    "CampaignInterrupted",
    "CampaignTaskFailure",
    "Coordinator",
    "CostModel",
    "DistributedExecutor",
    "EXECUTOR_BACKENDS",
    "ExecutionSession",
    "Executor",
    "ExperimentTask",
    "FAIL_FAST",
    "FaultPlan",
    "FaultSpecError",
    "FrameChecksumError",
    "FrameError",
    "InjectedConnectionError",
    "InjectedTaskError",
    "PairCostTracker",
    "PairFlowEngine",
    "PairFlowOutcome",
    "ParallelExecutor",
    "RETRIES_ENV_VAR",
    "RemoteCacheTier",
    "RemoteTaskError",
    "ResultCache",
    "RetryPolicy",
    "SCHEDULE_CHEAPEST",
    "SCHEDULE_FIFO",
    "SerialExecutor",
    "ShutdownGuard",
    "TaskCostModel",
    "TaskFailureRecord",
    "TaskProgress",
    "TaskSession",
    "VerifyReport",
    "WorkerLostError",
    "default_retry_policy",
    "derive_seed",
    "execute_task",
    "execute_task_batch",
    "is_retryable",
    "make_executor",
    "parse_address",
    "resolve_batch",
    "run_worker",
    "serve_cache",
    "task_shape_key",
]
