"""Campaign driver — sweeps and replications as cached task batches.

A :class:`Campaign` binds an :class:`~repro.runtime.executor.Executor` to an
optional :class:`~repro.runtime.cache.ResultCache` and runs batches of
:class:`~repro.runtime.task.ExperimentTask`:

1. every task is first looked up in the cache — hits are reported
   immediately and skip all simulation work;
2. the remaining tasks are dispatched through the executor, and each result
   is written back to the cache the moment it completes;
3. a progress callback receives one :class:`TaskProgress` event per task,
   in completion order, so long campaigns can be monitored live.

The module also provides the batch builders (:func:`sweep_tasks`,
:func:`replication_tasks`) used by ``repro.experiments.sweep`` and
``repro.experiments.replication``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario
from repro.runtime.cache import ResultCache
from repro.runtime.executor import Executor, SerialExecutor
from repro.runtime.task import ExperimentTask, derive_seed

#: Progress event statuses.
CACHE_HIT = "hit"
COMPLETED = "completed"


@dataclass(frozen=True)
class TaskProgress:
    """One per-task progress event of a campaign run."""

    task: ExperimentTask
    index: int
    total: int
    status: str
    completed: int
    cache_hits: int

    def describe(self) -> str:
        """One-line rendering used by the CLI's progress stream."""
        origin = "cache" if self.status == CACHE_HIT else "run"
        return (
            f"[{self.completed}/{self.total}] {self.task.label()} ({origin})"
        )


ProgressCallback = Callable[[TaskProgress], None]


class Campaign:
    """Dispatches task batches through an executor and a result cache."""

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self.progress = progress

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[ExperimentTask]) -> List[ExperimentResult]:
        """Run ``tasks`` and return their results in submission order."""
        tasks = list(tasks)
        total = len(tasks)
        results: List[Optional[ExperimentResult]] = [None] * total
        completed = 0
        cache_hits = 0

        pending_indices: List[int] = []
        for index, task in enumerate(tasks):
            cached = self.cache.get(task) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                completed += 1
                cache_hits += 1
                self._emit(task, index, total, CACHE_HIT, completed, cache_hits)
            else:
                pending_indices.append(index)

        if pending_indices:
            def _on_result(batch_index: int, result: ExperimentResult) -> None:
                nonlocal completed
                index = pending_indices[batch_index]
                task = tasks[index]
                results[index] = result
                if self.cache is not None:
                    self.cache.put(task, result)
                completed += 1
                self._emit(task, index, total, COMPLETED, completed, cache_hits)

            self.executor.run_tasks(
                [tasks[index] for index in pending_indices], on_result=_on_result
            )

        return results  # type: ignore[return-value]

    def run_one(self, task: ExperimentTask) -> ExperimentResult:
        """Run a single task (through cache and executor)."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def _emit(
        self,
        task: ExperimentTask,
        index: int,
        total: int,
        status: str,
        completed: int,
        cache_hits: int,
    ) -> None:
        if self.progress is not None:
            self.progress(
                TaskProgress(
                    task=task,
                    index=index,
                    total=total,
                    status=status,
                    completed=completed,
                    cache_hits=cache_hits,
                )
            )


# ----------------------------------------------------------------------
# Batch builders
# ----------------------------------------------------------------------
def sweep_tasks(
    base: Scenario,
    overrides: Iterable[Mapping[str, object]],
    profile: "ScaleProfile | str",
    seed: int,
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
) -> List[ExperimentTask]:
    """One task per override set applied to ``base`` (a parameter sweep)."""
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(**dict(changes)),
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
        )
        for changes in overrides
    ]


def replication_tasks(
    scenario: Scenario,
    seeds: Sequence[int],
    profile: "ScaleProfile | str",
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
) -> List[ExperimentTask]:
    """One task per seed for the same scenario (multi-seed replication)."""
    return [
        ExperimentTask.create(
            scenario=scenario,
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
        )
        for seed in seeds
    ]


def replication_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent replication seeds from ``root_seed``.

    Deterministic and order-independent (see
    :func:`repro.runtime.task.derive_seed`), so a campaign that grows from 5
    to 10 replications reuses the first 5 cached runs unchanged.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [derive_seed(root_seed, "replication", index) for index in range(count)]
