"""Campaign driver — sweeps and replications as cached task batches.

A :class:`Campaign` binds an :class:`~repro.runtime.executor.Executor` to an
optional :class:`~repro.runtime.cache.ResultCache` and runs batches of
:class:`~repro.runtime.task.ExperimentTask`:

1. every task is first looked up in the cache — hits are reported
   immediately and skip all simulation work;
2. the remaining tasks are dispatched through the executor — in submission
   order (``schedule="fifo"``) or cheapest-first by the persistent cost
   model (``schedule="cheapest"``) — and each result is written back to
   the cache (and its wall-clock folded into the cost model) the moment
   it completes;
3. a progress callback receives one :class:`TaskProgress` event per task,
   in completion order and *carrying the task's result*, so long
   campaigns can stream per-task figures incrementally instead of
   waiting for the whole batch.

Scheduling is **order-only** by construction: tasks are independent (each
carries its own seed-derived random universe) and ``run`` returns results
in submission order regardless of dispatch order, so the schedule can
change when a figure appears but never a single bit of it.

The module also provides the batch builders (:func:`sweep_tasks`,
:func:`replication_tasks`) used by ``repro.experiments.sweep`` and
``repro.experiments.replication``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario
from repro.runtime.cache import ResultCache
from repro.runtime.costmodel import TaskCostModel
from repro.runtime.executor import Executor, SerialExecutor
from repro.runtime.task import ExperimentTask, derive_seed

#: Progress event statuses.
CACHE_HIT = "hit"
COMPLETED = "completed"

#: Dispatch schedules.
SCHEDULE_FIFO = "fifo"
SCHEDULE_CHEAPEST = "cheapest"
SCHEDULES = (SCHEDULE_FIFO, SCHEDULE_CHEAPEST)


@dataclass(frozen=True)
class TaskProgress:
    """One per-task progress event of a campaign run.

    ``result`` is the task's :class:`ExperimentResult` (cached or fresh),
    so a progress callback can render the task's figure the moment it
    completes — with cheapest-first scheduling that is what turns the
    schedule into a shorter time-to-first-figure.
    """

    task: ExperimentTask
    index: int
    total: int
    status: str
    completed: int
    cache_hits: int
    result: Optional[ExperimentResult] = None

    def describe(self) -> str:
        """One-line rendering used by the CLI's progress stream."""
        origin = "cache" if self.status == CACHE_HIT else "run"
        return (
            f"[{self.completed}/{self.total}] {self.task.label()} ({origin})"
        )


ProgressCallback = Callable[[TaskProgress], None]


class Campaign:
    """Dispatches task batches through an executor and a result cache.

    Parameters
    ----------
    executor / cache / progress:
        As before (see module docstring).
    schedule:
        ``"fifo"`` (default) dispatches pending tasks in submission
        order; ``"cheapest"`` orders them by ascending estimated cost
        from the cost model.  Purely an ordering knob — results are
        returned in submission order and are bit-identical either way.
    cost_model:
        Explicit :class:`~repro.runtime.costmodel.TaskCostModel`.  When
        omitted and a cache is configured, the model persisted in the
        cache's ``_costs.json`` sidecar is used; observations are folded
        in under every schedule (a FIFO campaign warms the model for a
        later cheapest-first one).  Without cache or model, cheapest-first
        degrades to submission order.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        schedule: str = SCHEDULE_FIFO,
        cost_model: Optional[TaskCostModel] = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
            )
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self.progress = progress
        self.schedule = schedule
        if cost_model is None and cache is not None:
            cost_model = TaskCostModel.for_cache(cache)
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[ExperimentTask]) -> List[ExperimentResult]:
        """Run ``tasks`` and return their results in submission order."""
        tasks = list(tasks)
        total = len(tasks)
        results: List[Optional[ExperimentResult]] = [None] * total
        completed = 0
        cache_hits = 0

        pending_indices: List[int] = []
        for index, task in enumerate(tasks):
            cached = self.cache.get(task) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                completed += 1
                cache_hits += 1
                self._emit(
                    task, index, total, CACHE_HIT, completed, cache_hits, cached
                )
            else:
                pending_indices.append(index)

        if pending_indices:
            dispatch_order = self._dispatch_order(tasks, pending_indices)

            def _on_result(batch_index: int, result: ExperimentResult) -> None:
                nonlocal completed
                index = dispatch_order[batch_index]
                task = tasks[index]
                results[index] = result
                if self.cache is not None:
                    self.cache.put(task, result)
                if self.cost_model is not None:
                    self.cost_model.observe_task(task, result.wall_seconds)
                completed += 1
                self._emit(
                    task, index, total, COMPLETED, completed, cache_hits, result
                )

            try:
                self.executor.run_tasks(
                    [tasks[index] for index in dispatch_order],
                    on_result=_on_result,
                )
            finally:
                # Persist whatever was observed even when a task or the
                # progress callback raised mid-batch.
                if self.cost_model is not None:
                    self.cost_model.save()

        return results  # type: ignore[return-value]

    def run_one(self, task: ExperimentTask) -> ExperimentResult:
        """Run a single task (through cache and executor)."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def _dispatch_order(
        self, tasks: Sequence[ExperimentTask], pending_indices: List[int]
    ) -> List[int]:
        """Order the pending submission indices according to the schedule."""
        if self.schedule != SCHEDULE_CHEAPEST or self.cost_model is None:
            return pending_indices
        pending_tasks = [tasks[index] for index in pending_indices]
        return [
            pending_indices[position]
            for position in self.cost_model.cheapest_first(pending_tasks)
        ]

    def _emit(
        self,
        task: ExperimentTask,
        index: int,
        total: int,
        status: str,
        completed: int,
        cache_hits: int,
        result: Optional[ExperimentResult],
    ) -> None:
        if self.progress is not None:
            self.progress(
                TaskProgress(
                    task=task,
                    index=index,
                    total=total,
                    status=status,
                    completed=completed,
                    cache_hits=cache_hits,
                    result=result,
                )
            )


# ----------------------------------------------------------------------
# Batch builders
# ----------------------------------------------------------------------
def sweep_tasks(
    base: Scenario,
    overrides: Iterable[Mapping[str, object]],
    profile: "ScaleProfile | str",
    seed: int,
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
    adaptive_shards: bool = False,
) -> List[ExperimentTask]:
    """One task per override set applied to ``base`` (a parameter sweep)."""
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(**dict(changes)),
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
            adaptive_shards=adaptive_shards,
        )
        for changes in overrides
    ]


def replication_tasks(
    scenario: Scenario,
    seeds: Sequence[int],
    profile: "ScaleProfile | str",
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
    adaptive_shards: bool = False,
) -> List[ExperimentTask]:
    """One task per seed for the same scenario (multi-seed replication)."""
    return [
        ExperimentTask.create(
            scenario=scenario,
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
            adaptive_shards=adaptive_shards,
        )
        for seed in seeds
    ]


def replication_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent replication seeds from ``root_seed``.

    Deterministic and order-independent (see
    :func:`repro.runtime.task.derive_seed`), so a campaign that grows from 5
    to 10 replications reuses the first 5 cached runs unchanged.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [derive_seed(root_seed, "replication", index) for index in range(count)]
