"""Campaign driver — sweeps and replications as cached task batches.

A :class:`Campaign` binds an :class:`~repro.runtime.executor.Executor` to an
optional :class:`~repro.runtime.cache.ResultCache` and runs batches of
:class:`~repro.runtime.task.ExperimentTask`:

1. every task is first looked up in the cache — hits are reported
   immediately and skip all simulation work;
2. the remaining tasks are dispatched through the executor — in submission
   order (``schedule="fifo"``) or cheapest-first by the persistent cost
   model (``schedule="cheapest"``) — and each result is written back to
   the cache (and its wall-clock folded into the cost model) the moment
   it completes;
3. a progress callback receives one :class:`TaskProgress` event per task,
   in completion order and *carrying the task's result*, so long
   campaigns can stream per-task figures incrementally instead of
   waiting for the whole batch.

With ``batch`` enabled the campaign dispatches through a **persistent
task session** (:class:`repro.runtime.executor.TaskSession`): one
long-lived worker pool survives across every ``run()`` call of the
campaign, and pending tasks are packed into near-equal-cost batches
(``batch="auto"``, sized by the cost model to a few batches per worker)
or fixed-size chunks (``batch=N``) so each worker call amortises
dispatch and interpreter start-up over many simulations.  Progress events still
fire once per task and still carry the task's result; they surface as
each *batch* completes.

Scheduling is **order-only** by construction: tasks are independent (each
carries its own seed-derived random universe) and ``run`` returns results
in submission order regardless of dispatch order or batch geometry, so
the schedule and the batching can change when a figure appears but never
a single bit of it.  Like ``flow_jobs`` and ``adaptive_shards``, the
``batch`` knob never enters a task fingerprint.

The module also provides the batch builders (:func:`sweep_tasks`,
:func:`replication_tasks`) used by ``repro.experiments.sweep`` and
``repro.experiments.replication``.
"""

from __future__ import annotations

import logging
import os
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    wait,
)
from dataclasses import dataclass
from time import perf_counter, sleep
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro import obs
from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario
from repro.obs import tracing
from repro.runtime.cache import ResultCache
from repro.runtime.costmodel import TaskCostModel
from repro.runtime.executor import Executor, SerialExecutor, TaskSession
from repro.runtime.resilience import (
    CampaignInterrupted,
    CampaignTaskFailure,
    RetryPolicy,
    ShutdownGuard,
    TaskFailureRecord,
    default_retry_policy,
    is_retryable,
)
from repro.runtime.task import ExperimentTask, derive_seed

logger = logging.getLogger("repro.runtime.campaign")

#: Progress event statuses.
CACHE_HIT = "hit"
COMPLETED = "completed"
FAILED = "failed"

#: Dispatch schedules.
SCHEDULE_FIFO = "fifo"
SCHEDULE_CHEAPEST = "cheapest"
SCHEDULES = (SCHEDULE_FIFO, SCHEDULE_CHEAPEST)

#: Batch mode that packs pending tasks into near-equal-cost worker batches.
BATCH_AUTO = "auto"

#: Batches per worker under ``batch="auto"``.  One huge batch per worker
#: would maximise amortisation but defer the first progress event (and
#: with it cheapest-first figure streaming) to ~1/workers of the whole
#: campaign; per-batch dispatch overhead is a single pickled submission,
#: so oversubscribing keeps ~all of the throughput win while events keep
#: streaming every few tasks and a mis-estimated straggler batch can be
#: overtaken by idle workers.
BATCH_AUTO_OVERSUBSCRIBE = 4

#: Environment default of the campaign ``batch`` knob (same values as the
#: ``--batch`` CLI option: ``auto`` or a positive integer; empty/``off``/
#: ``none``/``0`` disable batching).  CI re-runs the determinism digest
#: suite with ``REPRO_CAMPAIGN_BATCH=auto`` to gate the knob's
#: order-invariance.
BATCH_ENV_VAR = "REPRO_CAMPAIGN_BATCH"


#: Batch value that explicitly disables batching, overriding the
#: environment default — callers that must measure or guarantee per-task
#: dispatch (e.g. the campaign benchmark's baseline configurations) pass
#: this instead of ``None``.
BATCH_OFF = "off"


def resolve_batch(
    batch: Union[None, str, int],
) -> Union[None, str, int]:
    """Normalise a ``batch`` knob value (``None`` consults the environment).

    Returns ``None`` (batching off), :data:`BATCH_AUTO`, or a positive
    batch size; raises :class:`ValueError` on anything else.  The
    explicit strings ``"off"``/``"none"`` (and :data:`BATCH_OFF`) force
    per-task dispatch even when :data:`BATCH_ENV_VAR` is set — only
    ``None`` defers to the environment.
    """
    if batch is None:
        configured = os.environ.get(BATCH_ENV_VAR, "").strip()
        if configured == "":
            return None
        batch = configured
    if isinstance(batch, str):
        lowered = batch.lower()
        if lowered in (BATCH_OFF, "none", "0"):
            return None
        if lowered == BATCH_AUTO:
            return BATCH_AUTO
        try:
            batch = int(batch)
        except ValueError:
            raise ValueError(
                f"batch must be 'auto', 'off' or a positive integer, "
                f"got {batch!r}"
            )
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return batch


@dataclass(frozen=True)
class TaskProgress:
    """One per-task progress event of a campaign run.

    ``result`` is the task's :class:`ExperimentResult` (cached or fresh),
    so a progress callback can render the task's figure the moment it
    completes — with cheapest-first scheduling that is what turns the
    schedule into a shorter time-to-first-figure.

    ``metrics`` is a small live-observability dict (completed /
    cache_hits / tasks_total / elapsed_seconds / tasks_per_sec), attached
    only when :mod:`repro.obs` is enabled and ``None`` otherwise — like
    everything observability it never feeds back into results.
    """

    task: ExperimentTask
    index: int
    total: int
    status: str
    completed: int
    cache_hits: int
    result: Optional[ExperimentResult] = None
    metrics: Optional[dict] = None

    def describe(self) -> str:
        """One-line rendering used by the CLI's progress stream."""
        if self.status == FAILED:
            return (
                f"[{self.completed}/{self.total}] {self.task.label()} (failed)"
            )
        origin = "cache" if self.status == CACHE_HIT else "run"
        return (
            f"[{self.completed}/{self.total}] {self.task.label()} ({origin})"
        )


ProgressCallback = Callable[[TaskProgress], None]


class _Flight:
    """One dispatched batch (plus its optional hedge twin) in flight.

    A flight is the unit of failure handling: when its last outstanding
    future fails, the surviving (unrecorded) tasks are re-dispatched —
    bisected when the failure is not attributable to a single task.
    """

    __slots__ = ("pairs", "futures", "deadline", "hedged")

    def __init__(self, pairs: List[Tuple[int, ExperimentTask]]) -> None:
        self.pairs = list(pairs)
        self.futures: Set[Future] = set()
        self.deadline: Optional[float] = None
        self.hedged = False


class Campaign:
    """Dispatches task batches through an executor and a result cache.

    Parameters
    ----------
    executor / cache / progress:
        As before (see module docstring).
    schedule:
        ``"fifo"`` (default) dispatches pending tasks in submission
        order; ``"cheapest"`` orders them by ascending estimated cost
        from the cost model.  Purely an ordering knob — results are
        returned in submission order and are bit-identical either way.
    cost_model:
        Explicit :class:`~repro.runtime.costmodel.TaskCostModel`.  When
        omitted and a cache is configured, the model persisted in the
        cache's ``_costs.json`` sidecar is used; observations are folded
        in under every schedule (a FIFO campaign warms the model for a
        later cheapest-first one).  Without cache or model, cheapest-first
        degrades to submission order.
    batch:
        ``None`` (default) dispatches one task per worker submission,
        consulting the :data:`REPRO_CAMPAIGN_BATCH <BATCH_ENV_VAR>`
        environment variable first.  ``"auto"`` packs pending tasks into
        near-equal-cost batches (a few per executor worker, LPT over the
        cost model's estimates) dispatched through a persistent
        :class:`~repro.runtime.executor.TaskSession`; an integer packs
        fixed-size chunks of that many tasks.  Identity-free like every
        scheduling knob: results stay in submission order, bit-identical
        for every value.  A batched campaign owns its worker pool until
        :meth:`close` (or use the campaign as a context manager).
    retry_policy:
        :class:`~repro.runtime.resilience.RetryPolicy` governing the
        batched path's self-healing: bounded per-task retry attempts
        with seeded backoff, batch bisection to isolate poison tasks,
        bounded session respawns (then degradation to in-process serial
        execution) and cost-model-predicted straggler hedging.  Defaults
        to ``RetryPolicy()``; pass
        :data:`~repro.runtime.resilience.FAIL_FAST` for the legacy
        first-error-propagates behaviour.  Identity-free like the
        schedule: healing changes when and where a task runs, never a
        bit of its result.  The unbatched path (``batch=None``) always
        fails fast.
    """

    def __init__(
        self,
        executor: Optional[Executor] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        schedule: str = SCHEDULE_FIFO,
        cost_model: Optional[TaskCostModel] = None,
        batch: Union[None, str, int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if schedule not in SCHEDULES:
            raise ValueError(
                f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
            )
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self.progress = progress
        self.schedule = schedule
        self.batch = resolve_batch(batch)
        self.retry_policy = (
            retry_policy if retry_policy is not None else default_retry_policy()
        )
        if cost_model is None and cache is not None:
            cost_model = TaskCostModel.for_cache(cache)
        self.cost_model = cost_model
        self._task_session: Optional[TaskSession] = None
        self._guard: Optional[ShutdownGuard] = None
        # Captured once: ``None`` when observability is off, so every
        # per-task touch point below is a single attribute test.
        self._obs = obs.active()
        self._run_started = 0.0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the persistent task session, if one was opened.

        Idempotent; a later :meth:`run` transparently opens a fresh
        session.  Campaigns without batching hold no session and need no
        closing (``close`` is still safe to call).
        """
        session, self._task_session = self._task_session, None
        if session is not None:
            session.close()

    def __enter__(self) -> "Campaign":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        # Safety net for call sites that predate the batch knob (or that
        # pick it up via REPRO_CAMPAIGN_BATCH) and never close: release
        # the pool and the exported PYTHONPATH when the campaign is
        # collected rather than never.  Deterministic call sites should
        # still close()/``with`` — GC timing is an upper bound, not a
        # lifecycle.
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    # ------------------------------------------------------------------
    def run(self, tasks: Sequence[ExperimentTask]) -> List[ExperimentResult]:
        """Run ``tasks`` and return their results in submission order.

        Batched campaigns install a cooperative shutdown guard for the
        duration of the run: the first SIGINT/SIGTERM stops dispatch,
        flushes completed results and stats, closes the session and
        raises :class:`~repro.runtime.resilience.CampaignInterrupted`
        (a re-run resumes warm from the cache); a second SIGINT
        interrupts immediately.  Tasks that fail permanently after the
        retry policy is exhausted raise
        :class:`~repro.runtime.resilience.CampaignTaskFailure` *after*
        every other task completed.
        """
        tasks = list(tasks)
        try:
            with tracing.span(
                "campaign.run", tasks=len(tasks), schedule=self.schedule
            ):
                if self.batch is not None:
                    with ShutdownGuard() as guard:
                        self._guard = guard
                        try:
                            return self._run(tasks)
                        finally:
                            self._guard = None
                return self._run(tasks)
        finally:
            # Fold this run's lookup counters into the cache directory's
            # persistent stats (one lock acquisition; no-op without
            # deltas or directory) even when a task raised mid-batch.
            if self.cache is not None:
                self.cache.sync_persistent_stats()

    def _shutdown_requested(self) -> Optional[str]:
        """Name of the pending shutdown signal, or ``None``."""
        guard = self._guard
        return guard.requested if guard is not None else None

    def _run(self, tasks: List[ExperimentTask]) -> List[ExperimentResult]:
        total = len(tasks)
        registry = self._obs
        self._run_started = perf_counter()
        fresh_wall = 0.0
        if registry is not None:
            registry.inc("campaign.tasks_submitted", total)
        results: List[Optional[ExperimentResult]] = [None] * total
        completed = 0
        cache_hits = 0

        pending_indices: List[int] = []
        for index, task in enumerate(tasks):
            cached = self.cache.get(task) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
                completed += 1
                cache_hits += 1
                if registry is not None:
                    registry.inc("campaign.cache_hits")
                    registry.inc("campaign.tasks_completed")
                self._emit(
                    task, index, total, CACHE_HIT, completed, cache_hits, cached
                )
            else:
                pending_indices.append(index)

        if pending_indices:
            dispatch_order = self._dispatch_order(tasks, pending_indices)

            def _record(index: int, result: ExperimentResult) -> None:
                nonlocal completed, fresh_wall
                task = tasks[index]
                results[index] = result
                if self.cache is not None:
                    self.cache.put(task, result)
                if self.cost_model is not None:
                    self.cost_model.observe_task(task, result.wall_seconds)
                completed += 1
                if registry is not None:
                    registry.inc("campaign.tasks_completed")
                    registry.observe(
                        "campaign.task_wall_seconds", result.wall_seconds
                    )
                    fresh_wall += result.wall_seconds
                    if result.obs_metrics is not None:
                        registry.merge(result.obs_metrics)
                self._emit(
                    task, index, total, COMPLETED, completed, cache_hits, result
                )

            def _record_failure(index: int) -> None:
                self._emit(
                    tasks[index], index, total, FAILED, completed, cache_hits,
                    None,
                )

            failure_records: List[TaskFailureRecord] = []
            try:
                if self.batch is None:
                    self.executor.run_tasks(
                        [tasks[index] for index in dispatch_order],
                        on_result=lambda batch_index, result: _record(
                            dispatch_order[batch_index], result
                        ),
                    )
                else:
                    failure_records = self._run_batched(
                        tasks, dispatch_order, _record, _record_failure
                    )
            finally:
                # Persist whatever was observed even when a task or the
                # progress callback raised mid-batch.
                if self.cost_model is not None:
                    self.cost_model.save()
            if failure_records:
                # Every healthy task completed (and was cached) before
                # this raises: the poison tasks cost their own results,
                # never the rest of the campaign's.
                if registry is not None:
                    self._record_run_gauges(registry, fresh_wall)
                raise CampaignTaskFailure(failure_records, results)

        if registry is not None:
            self._record_run_gauges(registry, fresh_wall)
        return results  # type: ignore[return-value]

    def _record_run_gauges(self, registry, fresh_wall: float) -> None:
        """Record the end-of-run campaign/cache gauges.

        ``worker_utilisation`` is the fraction of the run's total worker
        capacity (wall-clock elapsed × worker count) spent inside fresh
        simulations — cache hits and dispatch overhead both lower it.
        """
        elapsed = perf_counter() - self._run_started
        workers = max(1, getattr(self.executor, "worker_count", 1))
        registry.set_gauge("campaign.workers", workers)
        registry.set_gauge("campaign.elapsed_seconds", elapsed)
        if elapsed > 0.0:
            registry.set_gauge(
                "campaign.worker_utilisation",
                min(1.0, fresh_wall / (elapsed * workers)),
            )
        if self.cache is not None:
            stats = self.cache.stats
            registry.set_gauge("cache.hits", stats.hits)
            registry.set_gauge("cache.misses", stats.misses)
            registry.set_gauge("cache.stores", stats.stores)
            registry.set_gauge("cache.evictions", stats.evictions)
            registry.set_gauge("cache.bytes_served", stats.bytes_served)
            registry.set_gauge("cache.hit_rate", stats.hit_rate)
            if stats.remote_hits or stats.remote_misses or stats.remote_puts:
                registry.set_gauge("cache.remote_hits", stats.remote_hits)
                registry.set_gauge("cache.remote_misses", stats.remote_misses)
                registry.set_gauge("cache.remote_puts", stats.remote_puts)

    def run_one(self, task: ExperimentTask) -> ExperimentResult:
        """Run a single task (through cache and executor)."""
        return self.run([task])[0]

    # ------------------------------------------------------------------
    def _run_batched(
        self,
        tasks: Sequence[ExperimentTask],
        dispatch_order: List[int],
        record: Callable[[int, ExperimentResult], None],
        record_failure: Callable[[int], None],
    ) -> List[TaskFailureRecord]:
        """Resilient dispatch through the persistent task session.

        Batches go out as independent *flights*; each failure is healed
        according to the retry policy instead of aborting the run:

        * a failed multi-task flight is **bisected** — the survivors are
          re-dispatched as two halves, isolating a poison task in
          O(log n) rounds without ever attributing blame to the wrong
          task;
        * a failed singleton flight charges that task one attempt;
          retryable errors back off (seeded, bounded) and re-dispatch,
          everything else — or an exhausted budget — records a
          structured :class:`TaskFailureRecord` and the campaign moves
          on;
        * a submit onto a broken pool **respawns** the session up to
          ``max_respawns`` times, then degrades to in-process serial
          execution (safe for injected crash faults, which only ever
          fire in worker processes);
        * a flight outliving its cost-model-predicted deadline is
          **hedged**: its unfinished tasks are speculatively
          re-dispatched and the first result wins (tasks are
          deterministic, cache puts idempotent — duplicates are
          dropped on arrival);
        * a pending shutdown signal stops dispatch, drains what is
          already running (recording its results), closes the session
          and raises :class:`CampaignInterrupted`.

        Returns the failure records of permanently failed tasks (empty
        on a fully healthy run).  Unexpected errors — e.g. a raising
        progress callback — still close the session before propagating,
        so the next ``run()`` starts from a fresh pool.
        """
        policy = self.retry_policy
        registry = self._obs
        batches = self._pack_batches(tasks, dispatch_order)
        if self._task_session is None:
            self._task_session = self.executor.open_task_session()
            if registry is not None:
                registry.inc("campaign.sessions_opened")
        if registry is not None:
            registry.inc("campaign.batches_dispatched", len(batches))
            for batch in batches:
                registry.observe("campaign.batch_size", len(batch))

        recorded: Set[int] = set()
        failures: Dict[int, TaskFailureRecord] = {}
        attempts: Dict[int, int] = {}
        inflight: Dict[Future, _Flight] = {}
        queue = deque(batches)
        respawns = 0
        degraded = False
        draining = False

        def respawn_session() -> None:
            nonlocal respawns, degraded
            self.close()
            if respawns < policy.max_respawns:
                respawns += 1
                logger.warning(
                    "worker pool broke; respawning task session (%d/%d)",
                    respawns,
                    policy.max_respawns,
                )
                if registry is not None:
                    registry.inc("campaign.respawns")
                self._task_session = self.executor.open_task_session()
            else:
                degraded = True
                logger.warning(
                    "worker pool broke again after %d respawn(s); degrading "
                    "to in-process serial execution for the remaining tasks",
                    respawns,
                )
                if registry is not None:
                    registry.inc("campaign.degraded_serial")
                self._task_session = SerialExecutor().open_task_session()

        def submit_flight(pairs: List[Tuple[int, ExperimentTask]]) -> None:
            flight = _Flight(pairs)
            while True:
                try:
                    future = self._task_session.submit_batch(flight.pairs)
                    break
                except (BrokenExecutor, ConnectionError):
                    # ConnectionError covers remote backends whose submit
                    # path touches a transport (the distributed executor
                    # raises BrokenExecutor itself, but the contract is
                    # "any retryable submit failure heals via respawn").
                    if policy.fail_fast:
                        raise
                    respawn_session()
            if (
                policy.hedge
                and not degraded
                and self.cost_model is not None
                and getattr(self.executor, "worker_count", 1) > 1
            ):
                predicted = self.cost_model.estimate_batch_seconds(
                    [task for _, task in flight.pairs]
                )
                if predicted is not None:
                    flight.deadline = perf_counter() + max(
                        policy.min_straggler_seconds,
                        policy.straggler_factor * predicted,
                    )
            flight.futures.add(future)
            inflight[future] = flight

        def survivors_of(flight: _Flight) -> List[Tuple[int, ExperimentTask]]:
            return [
                (index, task)
                for index, task in flight.pairs
                if index not in recorded and index not in failures
            ]

        def requeue(
            survivors: List[Tuple[int, ExperimentTask]], error: BaseException
        ) -> None:
            if len(survivors) > 1:
                # Not attributable to one task: bisect and re-dispatch
                # both halves; repeated failures isolate the poison task
                # in O(log n) rounds.  Innocent survivors re-run — wasted
                # work, never wrong results (tasks are deterministic and
                # cache puts idempotent).
                if registry is not None:
                    registry.inc("campaign.bisections")
                middle = len(survivors) // 2
                submit_flight(survivors[:middle])
                submit_flight(survivors[middle:])
                return
            index, task = survivors[0]
            attempts[index] = attempts.get(index, 0) + 1
            if is_retryable(error) and attempts[index] < policy.max_attempts:
                delay = policy.backoff_delay(attempts[index], key=task.key())
                if registry is not None:
                    registry.inc("campaign.retries")
                    registry.observe("campaign.retry_backoff_seconds", delay)
                logger.warning(
                    "retrying task %s (attempt %d/%d, backoff %.2fs) "
                    "after: %s",
                    task.label(),
                    attempts[index] + 1,
                    policy.max_attempts,
                    delay,
                    error,
                )
                if delay > 0:
                    sleep(delay)
                submit_flight(survivors)
            else:
                failures[index] = TaskFailureRecord.from_error(
                    index, task.key(), task.label(), attempts[index], error
                )
                if registry is not None:
                    registry.inc("campaign.tasks_failed")
                logger.error(
                    "task %s failed permanently after %d attempt(s): %s",
                    task.label(),
                    attempts[index],
                    error,
                )
                record_failure(index)

        def handle_done(future: Future) -> None:
            flight = inflight.pop(future, None)
            if flight is None:
                return
            flight.futures.discard(future)
            try:
                batch_results = future.result()
            except CancelledError:
                return
            except Exception as error:
                if draining:
                    return
                if policy.fail_fast:
                    # Legacy contract: the first batch error propagates
                    # unhealed (the outer handler closes the session).
                    raise
                survivors = survivors_of(flight)
                if not survivors:
                    return
                if flight.futures:
                    # A hedge twin of this flight is still out; it may
                    # yet deliver the results.  Its own completion (or
                    # failure) settles the flight.
                    return
                requeue(survivors, error)
                return
            fresh = 0
            for index, result in batch_results:
                if index in recorded or index in failures:
                    continue  # duplicate delivery from a hedged flight
                recorded.add(index)
                fresh += 1
                record(index, result)
            tracing.point("batch", tasks=fresh)
            for sibling in list(flight.futures):
                sibling.cancel()

        def hedge_overdue() -> None:
            if not policy.hedge or degraded:
                return
            now = perf_counter()
            for flight in list(inflight.values()):
                if (
                    flight.hedged
                    or flight.deadline is None
                    or now < flight.deadline
                ):
                    continue
                flight.hedged = True
                survivors = survivors_of(flight)
                if not survivors:
                    continue
                try:
                    twin = self._task_session.submit_batch(survivors)
                except (BrokenExecutor, ConnectionError):
                    continue  # the flight's own failure path heals the pool
                if registry is not None:
                    registry.inc("campaign.hedges")
                logger.warning(
                    "batch of %d task(s) exceeded its straggler deadline; "
                    "hedging with a duplicate dispatch (first result wins)",
                    len(survivors),
                )
                flight.futures.add(twin)
                inflight[twin] = flight

        try:
            while queue or inflight:
                signal_name = self._shutdown_requested()
                if signal_name is not None:
                    draining = True
                    queue.clear()
                    for future in list(inflight):
                        future.cancel()
                    while inflight:
                        done, _ = wait(
                            list(inflight), return_when=FIRST_COMPLETED
                        )
                        for future in done:
                            handle_done(future)
                    logger.warning(
                        "%s received: dispatch stopped, %d completed "
                        "result(s) flushed, closing session",
                        signal_name,
                        len(recorded),
                    )
                    self.close()
                    raise CampaignInterrupted(
                        signal_name, len(recorded), len(dispatch_order)
                    )
                while queue and self._shutdown_requested() is None:
                    submit_flight(list(queue.popleft()))
                    # Serial sessions settle futures synchronously:
                    # surface their results (cache writes, progress)
                    # before submitting the next batch instead of after
                    # the whole run.
                    for future in [f for f in list(inflight) if f.done()]:
                        handle_done(future)
                if not inflight:
                    continue
                timeout = None
                if self._guard is not None and self._guard.installed:
                    timeout = 0.25  # poll the shutdown flag
                pending_deadlines = [
                    flight.deadline
                    for flight in inflight.values()
                    if flight.deadline is not None and not flight.hedged
                ]
                if pending_deadlines:
                    until_next = max(
                        0.05, min(pending_deadlines) - perf_counter()
                    )
                    timeout = (
                        until_next
                        if timeout is None
                        else min(timeout, until_next)
                    )
                done, _ = wait(
                    list(inflight),
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    handle_done(future)
                hedge_overdue()
        except BaseException:
            logger.warning(
                "closing persistent task session after a failed batch run; "
                "the next run() opens a fresh worker pool"
            )
            for future in list(inflight):
                future.cancel()
            self.close()
            raise
        if degraded:
            # The degraded serial session finished the run; drop it so
            # the next run() opens a real worker pool again.
            self.close()
        return [failures[index] for index in sorted(failures)]

    def _pack_batches(
        self, tasks: Sequence[ExperimentTask], dispatch_order: List[int]
    ) -> List[List[Tuple[int, ExperimentTask]]]:
        """Group the dispatch-ordered submission indices into task batches.

        ``batch=N`` chunks consecutive dispatch-order runs of ``N``.
        ``batch="auto"`` packs near-equal-cost batches (LPT over
        cost-model estimates), :data:`BATCH_AUTO_OVERSUBSCRIBE` per
        executor worker, so no worker idles behind a straggler and
        progress keeps streaming every few tasks; with a single worker —
        in-process execution — the pool has nothing to amortise against,
        so auto keeps per-task batches and with them the legacy per-task
        progress timing.
        """
        if self.batch == BATCH_AUTO:
            workers = max(1, getattr(self.executor, "worker_count", 1))
            if workers == 1:
                groups = [[index] for index in dispatch_order]
            else:
                target = workers * BATCH_AUTO_OVERSUBSCRIBE
                if self.cost_model is not None:
                    packed = self.cost_model.pack_batches(
                        [tasks[index] for index in dispatch_order], target
                    )
                    groups = [
                        [dispatch_order[position] for position in group]
                        for group in packed
                    ]
                else:
                    # No cost model to estimate from: deal dispatch order
                    # round-robin, which equalises batch *counts*.
                    groups = [
                        list(dispatch_order[start::target])
                        for start in range(target)
                        if dispatch_order[start::target]
                    ]
        else:
            size = int(self.batch)
            groups = [
                dispatch_order[start:start + size]
                for start in range(0, len(dispatch_order), size)
            ]
        return [[(index, tasks[index]) for index in group] for group in groups]

    # ------------------------------------------------------------------
    def _dispatch_order(
        self, tasks: Sequence[ExperimentTask], pending_indices: List[int]
    ) -> List[int]:
        """Order the pending submission indices according to the schedule."""
        if self.schedule != SCHEDULE_CHEAPEST or self.cost_model is None:
            return pending_indices
        pending_tasks = [tasks[index] for index in pending_indices]
        return [
            pending_indices[position]
            for position in self.cost_model.cheapest_first(pending_tasks)
        ]

    def _emit(
        self,
        task: ExperimentTask,
        index: int,
        total: int,
        status: str,
        completed: int,
        cache_hits: int,
        result: Optional[ExperimentResult],
    ) -> None:
        tracing.point("task", status=status, label=task.label())
        if self.progress is not None:
            metrics = None
            if self._obs is not None:
                elapsed = perf_counter() - self._run_started
                metrics = {
                    "completed": completed,
                    "cache_hits": cache_hits,
                    "tasks_total": total,
                    "elapsed_seconds": elapsed,
                    "tasks_per_sec": (
                        completed / elapsed if elapsed > 0.0 else 0.0
                    ),
                }
            self.progress(
                TaskProgress(
                    task=task,
                    index=index,
                    total=total,
                    status=status,
                    completed=completed,
                    cache_hits=cache_hits,
                    result=result,
                    metrics=metrics,
                )
            )


# ----------------------------------------------------------------------
# Batch builders
# ----------------------------------------------------------------------
def sweep_tasks(
    base: Scenario,
    overrides: Iterable[Mapping[str, object]],
    profile: "ScaleProfile | str",
    seed: int,
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
    adaptive_shards: bool = False,
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> List[ExperimentTask]:
    """One task per override set applied to ``base`` (a parameter sweep)."""
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(**dict(changes)),
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
            adaptive_shards=adaptive_shards,
            connectivity=connectivity,
            sample_pairs=sample_pairs,
            ci_level=ci_level,
        )
        for changes in overrides
    ]


def replication_tasks(
    scenario: Scenario,
    seeds: Sequence[int],
    profile: "ScaleProfile | str",
    algorithm: str = "dinic",
    keep_snapshots: bool = False,
    flow_jobs: int = 1,
    adaptive_shards: bool = False,
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> List[ExperimentTask]:
    """One task per seed for the same scenario (multi-seed replication)."""
    return [
        ExperimentTask.create(
            scenario=scenario,
            profile=profile,
            seed=seed,
            algorithm=algorithm,
            keep_snapshots=keep_snapshots,
            flow_jobs=flow_jobs,
            adaptive_shards=adaptive_shards,
            connectivity=connectivity,
            sample_pairs=sample_pairs,
            ci_level=ci_level,
        )
        for seed in seeds
    ]


def replication_seeds(root_seed: int, count: int) -> List[int]:
    """Derive ``count`` independent replication seeds from ``root_seed``.

    Deterministic and order-independent (see
    :func:`repro.runtime.task.derive_seed`), so a campaign that grows from 5
    to 10 replications reuses the first 5 cached runs unchanged.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [derive_seed(root_seed, "replication", index) for index in range(count)]
