"""Batched parallel pair-flow engine.

The paper's dominant cost is computing ``kappa(v, w)`` over many ordered
pairs per snapshot (the authors quote ~250 CPU-hours for one 2500-node
graph).  :class:`PairFlowEngine` turns that per-snapshot computation from a
serial Python loop into a sharded, cutoff-aware kernel:

* the connectivity graph is Even-transformed **once** into an
  integer-indexed :class:`~repro.graph.maxflow.residual.ResidualNetwork`,
  frozen into a picklable
  :class:`~repro.graph.maxflow.residual.CompactNetwork`, and shipped to
  every worker process exactly once through the executor session's
  initializer — no worker ever rebuilds the transformation per pair;
* the (source, target) pair list is split into fixed-size **shards**, and
  shards are dispatched in **waves**: every shard of a wave inherits the
  running minimum established by the waves before it as its flow cutoff,
  so later shards do strictly less max-flow work (the analyzer's
  minimum-pass trick, now parallel);
* shard boundaries, wave boundaries and the combination rules depend only
  on the engine parameters — never on the number of workers — so the
  engine's statistics are **bit-identical** whether shards run serially,
  on 2 workers or on 32 (asserted by ``tests/runtime/test_pairflow.py``).

The cutoff inherited by wave ``w + 1`` is exactly the minimum over all
values recorded in waves ``<= w``; within a shard the worker additionally
tightens its own local running minimum.  Both are upper bounds on the
global minimum, so the reported minimum stays exact while most flows are
cut off early (see ``network_flow_function`` for the cutoff contract).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.maxflow import network_flow_function
from repro.graph.maxflow.residual import CompactNetwork, ResidualNetwork
from repro.graph.transform.even_transform import (
    IndexedEvenTransform,
    indexed_even_transform,
)
from repro.runtime.executor import Executor, make_executor

Vertex = object

#: Pairs per shard.  One shard is the unit of work dispatched to a worker;
#: large enough that inter-process overhead amortises, small enough that a
#: wave spreads across workers.
DEFAULT_SHARD_SIZE = 24

#: Shards per wave.  Cutoffs propagate only *between* waves (shards of one
#: wave run concurrently), so a smaller width tightens cutoffs faster and a
#: larger width exposes more parallelism.  The width is a fixed engine
#: parameter — never derived from the worker count — because the statistics
#: must not depend on how many processes happen to be available.
DEFAULT_WAVE_WIDTH = 8


#: Distinguishes engine payloads when one worker pool serves several
#: engines over its lifetime (one engine per snapshot of a run).
_EPOCH_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class PairFlowShard:
    """One picklable unit of pair-flow work.

    ``pairs`` holds dense flow-endpoint indices into the shipped compact
    network; ``cutoff`` is the running minimum inherited from earlier
    waves (``None`` on the first wave of an uncut evaluation).

    ``epoch`` names the network the pairs index into.  A worker caches the
    most recently thawed network per process; a shard arriving with an
    unknown epoch and ``compact is None`` is answered with a payload-miss
    sentinel and re-dispatched by the engine with the compact network
    attached.  This is what lets one process pool outlive any single
    engine: consecutive snapshots of a run reuse the pool and only the
    (small) compact network travels again.
    """

    pairs: Tuple[Tuple[int, int], ...]
    cutoff: Optional[int]
    use_cutoff: bool
    stop_at_zero: bool
    epoch: int = 0
    algorithm: str = "dinic"
    compact: Optional[CompactNetwork] = None


@dataclass(frozen=True)
class PairFlowOutcome:
    """Combined result of one batched evaluation.

    ``values[i]`` is the recorded connectivity of the ``i``-th *evaluated*
    pair in canonical order; with cutoffs enabled a recorded value is a
    lower bound capped at the running minimum that was in force when the
    pair ran (the minimum itself stays exact).  ``min_pair`` is the first
    evaluated pair (canonical order) whose recorded value equals the
    minimum.
    """

    values: List[int]
    pairs_evaluated: int
    minimum: Optional[int]
    min_pair: Optional[Tuple[Vertex, Vertex]]
    total: int

    @property
    def average(self) -> float:
        """Mean recorded value (0.0 when nothing was evaluated)."""
        if not self.pairs_evaluated:
            return 0.0
        return self.total / self.pairs_evaluated


def _run_shard_on(
    network: ResidualNetwork,
    flow_fn: Callable[..., float],
    shard: PairFlowShard,
) -> List[int]:
    """Evaluate one shard against ``network``.

    Returns the recorded values in shard-pair order; the list is shorter
    than ``shard.pairs`` only when ``stop_at_zero`` ended the shard early.
    """
    reset = network.reset
    values: List[int] = []
    append = values.append
    running = shard.cutoff
    use_cutoff = shard.use_cutoff
    for source_index, target_index in shard.pairs:
        cutoff = float(running) if (use_cutoff and running is not None) else None
        reset()
        value = int(round(flow_fn(network, source_index, target_index, cutoff)))
        append(value)
        if use_cutoff and (running is None or value < running):
            running = value
        if shard.stop_at_zero and value == 0:
            break
    return values


# ----------------------------------------------------------------------
# Worker side (parallel sessions only).  Each worker process caches the
# most recently thawed network, keyed by the shard epoch; the compact
# network is shipped with the first wave of an engine's work (and again
# on the rare payload miss, when a worker first sees an epoch in a later
# wave).  Serial engines never touch these globals — they evaluate shards
# directly against the engine's own network.
# ----------------------------------------------------------------------
_WORKER_EPOCH: int = 0
_WORKER_NETWORK: Optional[ResidualNetwork] = None
_WORKER_FLOW_FN: Optional[Callable[..., float]] = None

#: Returned by a worker that has not yet seen the shard's epoch and was
#: not sent the compact payload; the engine re-dispatches with it attached.
_PAYLOAD_MISS = None


def _execute_shard(shard: PairFlowShard) -> Optional[List[int]]:
    """Worker-pool entry point: evaluate a shard on the process-local state."""
    global _WORKER_EPOCH, _WORKER_NETWORK, _WORKER_FLOW_FN
    if shard.epoch != _WORKER_EPOCH or _WORKER_NETWORK is None:
        if shard.compact is None:
            return _PAYLOAD_MISS
        _WORKER_NETWORK = shard.compact.thaw()
        _WORKER_FLOW_FN = network_flow_function(shard.algorithm)
        _WORKER_EPOCH = shard.epoch
    return _run_shard_on(_WORKER_NETWORK, _WORKER_FLOW_FN, shard)


class PairFlowEngine:
    """Evaluates batches of ``kappa(v, w)`` queries on one connectivity graph.

    Parameters
    ----------
    graph:
        The connectivity graph ``D``.
    algorithm:
        Max-flow algorithm (``"dinic"``, ``"edmonds_karp"``,
        ``"push_relabel"``).
    flow_jobs:
        Worker processes for shard evaluation; ``1`` (default) runs every
        shard in-process through the same scheduling code path.
    shard_size / wave_width:
        Scheduling granularity (see module docstring).  Both shape which
        cutoff each pair sees, so the two sides of an equivalence check
        must share them — the defaults are used everywhere in practice.
    executor:
        Pre-built :class:`Executor` overriding ``flow_jobs``.
    session:
        External, caller-owned :class:`ExecutionSession` (worker pool).
        The engine borrows it for every evaluation and never closes it —
        this is how the analyzer reuses **one** pool across the engines of
        consecutive snapshots: only the compact network changes between
        snapshots (shipped under a fresh epoch), the processes persist.

    The engine may also be used as a context manager; inside a ``with``
    block one executor session (process pool) is pinned across all
    evaluations, which shares a pool between the minimum and average
    passes of one snapshot.
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "dinic",
        flow_jobs: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        wave_width: int = DEFAULT_WAVE_WIDTH,
        executor: Optional[Executor] = None,
        session=None,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if wave_width < 1:
            raise ValueError(f"wave_width must be >= 1, got {wave_width}")
        self._flow_fn = network_flow_function(algorithm)  # validates the name
        self.graph = graph
        self.algorithm = algorithm
        self.shard_size = shard_size
        self.wave_width = wave_width
        self.executor = executor or make_executor(flow_jobs)
        self.transform: IndexedEvenTransform = indexed_even_transform(graph)
        self._compact: Optional[CompactNetwork] = None
        self._epoch = next(_EPOCH_COUNTER)
        self._payload_shipped = False
        self._external_session = session
        self._session = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "PairFlowEngine":
        if self._external_session is None:
            self._session = self._make_session()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        session, self._session = self._session, None
        if session is not None:
            session.close()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        pairs: Sequence[Tuple[Vertex, Vertex]],
        use_cutoff: bool = False,
        initial_minimum: Optional[int] = None,
        stop_at_zero: bool = False,
    ) -> PairFlowOutcome:
        """Evaluate ``kappa`` for every (non-adjacent) pair in ``pairs``.

        ``initial_minimum`` seeds the first wave's cutoff (e.g. with the
        degree bound); ``stop_at_zero`` stops scheduling new waves once a
        recorded value hits 0 (a shard also stops locally), mirroring the
        serial minimum pass's early exit at wave granularity.
        """
        pairs = list(pairs)
        if not pairs:
            return PairFlowOutcome(
                values=[], pairs_evaluated=0, minimum=None, min_pair=None, total=0
            )
        endpoint_indices = self.transform.flow_endpoint_indices
        indexed = [endpoint_indices(source, target) for source, target in pairs]
        shard_size = self.shard_size
        shards = [
            tuple(indexed[start:start + shard_size])
            for start in range(0, len(indexed), shard_size)
        ]

        values: List[int] = []
        evaluated_positions: List[int] = []
        running = initial_minimum
        wave_width = self.wave_width
        epoch = self._epoch
        algorithm = self.algorithm
        session, owns_session = self._acquire_session()
        try:
            serial = isinstance(session, _EngineLocalSession)
            for wave_start in range(0, len(shards), wave_width):
                if stop_at_zero and running == 0:
                    break
                # Ship the compact network with the engine's very first
                # wave so a cold pool thaws it without an extra round
                # trip; workers that first see this epoch later (or after
                # another engine's epoch displaced it) answer with a
                # payload miss and get the shards re-sent with payload.
                compact = None
                if not serial and not self._payload_shipped:
                    compact = self._compact_payload()
                    self._payload_shipped = True
                wave = shards[wave_start:wave_start + wave_width]
                tasks = [
                    PairFlowShard(
                        pairs=shard,
                        cutoff=running,
                        use_cutoff=use_cutoff,
                        stop_at_zero=stop_at_zero,
                        epoch=epoch,
                        algorithm=algorithm,
                        compact=compact,
                    )
                    for shard in wave
                ]
                shard_results = session.map(_execute_shard, tasks)
                missed = [
                    index
                    for index, result in enumerate(shard_results)
                    if result is None
                ]
                if missed:
                    payload = self._compact_payload()
                    retries = [
                        replace(tasks[index], compact=payload)
                        for index in missed
                    ]
                    for index, result in zip(
                        missed, session.map(_execute_shard, retries)
                    ):
                        shard_results[index] = result
                for offset, shard_values in enumerate(shard_results):
                    base = (wave_start + offset) * shard_size
                    values.extend(shard_values)
                    evaluated_positions.extend(
                        range(base, base + len(shard_values))
                    )
                    for value in shard_values:
                        if running is None or value < running:
                            running = value
        finally:
            if owns_session:
                session.close()

        if not values:
            return PairFlowOutcome(
                values=[], pairs_evaluated=0, minimum=None, min_pair=None, total=0
            )
        minimum = min(values)
        min_pair = pairs[evaluated_positions[values.index(minimum)]]
        return PairFlowOutcome(
            values=values,
            pairs_evaluated=len(values),
            minimum=minimum,
            min_pair=min_pair,
            total=sum(values),
        )

    # ------------------------------------------------------------------
    def minimum_over(
        self,
        sources: Sequence[Vertex],
        targets: Sequence[Vertex],
        initial_minimum: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Minimum ``kappa`` over the non-adjacent pairs of ``sources x targets``.

        Returns ``(minimum, pairs evaluated)`` with cutoffs enabled — the
        parallel counterpart of
        :meth:`repro.core.vertex_connectivity.PairFlowEvaluator.minimum_over`.
        If no valid pair exists, falls back to ``initial_minimum`` (or the
        sources' degree bound when that is ``None``).
        """
        graph = self.graph
        has_edge = graph.has_edge
        pairs = [
            (source, target)
            for source in sources
            for target in targets
            if target != source and not has_edge(source, target)
        ]
        outcome = self.evaluate(
            pairs,
            use_cutoff=True,
            initial_minimum=initial_minimum,
            stop_at_zero=True,
        )
        if outcome.minimum is None:
            if initial_minimum is not None:
                return initial_minimum, 0
            bound = min(
                (graph.out_degree(v) for v in sources), default=0
            )
            return bound, 0
        minimum = outcome.minimum
        if initial_minimum is not None and initial_minimum < minimum:
            minimum = initial_minimum
        return minimum, outcome.pairs_evaluated

    def average_over(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> Tuple[float, int]:
        """Mean exact ``kappa`` over ``pairs`` (no cutoffs).

        Returns ``(average, pairs evaluated)``; ``(0.0, 0)`` for an empty
        batch.
        """
        outcome = self.evaluate(pairs, use_cutoff=False)
        return outcome.average, outcome.pairs_evaluated

    # ------------------------------------------------------------------
    def _acquire_session(self):
        """Return ``(session, owns)`` — the session to evaluate on.

        Priority: the session pinned by ``with`` (borrowed), then the
        caller-provided external session (borrowed), then a fresh one the
        caller of this method must close (``owns=True``).
        """
        if self._session is not None:
            return self._session, False
        if self._external_session is not None:
            return self._external_session, False
        return self._make_session(), True

    def _make_session(self):
        """Open a fresh session of the right flavour for this executor.

        A :class:`SerialExecutor` evaluates shards directly against the
        engine's own network — no worker globals, no compact snapshot, so
        two serial engines can be open concurrently without interference.
        Parallel executors get a caller-owned pool session; the compact
        network travels with the first wave (and on payload misses).
        """
        from repro.runtime.executor import SerialExecutor

        if isinstance(self.executor, SerialExecutor):
            return _EngineLocalSession(self.transform.network, self._flow_fn)
        return self.executor.open_session()

    def _compact_payload(self) -> CompactNetwork:
        """Build (lazily) the picklable network payload shipped to workers."""
        if self._compact is None:
            self._compact = self.transform.compact()
        return self._compact


class _EngineLocalSession:
    """In-process session bound to one engine's network (serial path)."""

    def __init__(self, network: ResidualNetwork, flow_fn) -> None:
        self._network = network
        self._flow_fn = flow_fn

    def __enter__(self) -> "_EngineLocalSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def map(self, fn, shards) -> List[List[int]]:
        # ``fn`` is always _execute_shard here; run its body against the
        # engine-local state instead of the worker-pool globals (epoch and
        # compact payload are irrelevant in-process).
        return [
            _run_shard_on(self._network, self._flow_fn, shard)
            for shard in shards
        ]

    def close(self) -> None:
        """Nothing to release; the engine owns the network."""
