"""Batched parallel pair-flow engine.

The paper's dominant cost is computing ``kappa(v, w)`` over many ordered
pairs per snapshot (the authors quote ~250 CPU-hours for one 2500-node
graph).  :class:`PairFlowEngine` turns that per-snapshot computation from a
serial Python loop into a sharded, cutoff-aware kernel:

* the connectivity graph is Even-transformed **once** into an
  integer-indexed :class:`~repro.graph.maxflow.residual.ResidualNetwork`,
  frozen into a picklable
  :class:`~repro.graph.maxflow.residual.CompactNetwork`, and shipped to
  every worker process exactly once through the executor session's
  initializer — no worker ever rebuilds the transformation per pair;
* the (source, target) pair list is split into fixed-size **shards**, and
  shards are dispatched in **waves**: every shard of a wave inherits the
  running minimum established by the waves before it as its flow cutoff,
  so later shards do strictly less max-flow work (the analyzer's
  minimum-pass trick, now parallel);
* shard boundaries, wave boundaries and the combination rules depend only
  on the engine parameters — never on the number of workers — so the
  engine's statistics are **bit-identical** whether shards run serially,
  on 2 workers or on 32 (asserted by ``tests/runtime/test_pairflow.py``).

The cutoff inherited by wave ``w + 1`` is exactly the minimum over all
values recorded in waves ``<= w``; within a shard the worker additionally
tightens its own local running minimum.  Both are upper bounds on the
global minimum, so the reported minimum stays exact while most flows are
cut off early (see ``network_flow_function`` for the cutoff contract).

**Adaptive scheduling** (``adaptive=True``) layers two cost-aware
decisions on top of that machinery without changing a single reported
statistic:

* *shard sizing* — the shard size is derived from the observed per-pair
  max-flow cost (a :class:`~repro.runtime.costmodel.PairCostTracker`
  shared across the engines of a run), targeting a fixed wall-clock per
  shard instead of a fixed pair count, so tiny graphs stop paying one
  IPC round trip per handful of microsecond flows;
* *wave reordering* — the minimum pass evaluates pairs in ascending
  order of their degree bound ``min(out_degree(source),
  in_degree(target))`` (an upper bound on ``kappa``), so likely-minimum
  pairs run in the earliest waves and the cutoff tightens as early as
  possible.

Bit-identity survives because the statistics the engine reports upward
are order- and geometry-invariant: the reported minimum equals
``min(initial bound, min kappa over the pairs)`` under *any* evaluation
order (every recorded value is ``min(kappa, cutoff-in-force)`` and every
cutoff is an upper bound on that minimum), and cutoff-free evaluations
record exact values whatever the shard size.  The one geometry-dependent
quantity — where ``stop_at_zero`` truncates — is handled by replaying
the canonical schedule when a zero is recorded (see
:meth:`PairFlowEngine._adaptive_minimum`); on the analyzer's production
path that replay is unreachable, because the minimum pass only runs on
strongly connected graphs where every ``kappa >= 1``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.maxflow import network_flow_function
from repro.graph.maxflow.residual import CompactNetwork, ResidualNetwork
from repro.graph.transform.even_transform import (
    IndexedEvenTransform,
    indexed_even_transform,
)
from repro.obs import active as obs_active
from repro.obs import tracing
from repro.runtime.costmodel import PairCostTracker
from repro.runtime.executor import Executor, make_executor

Vertex = object

#: Pairs per shard.  One shard is the unit of work dispatched to a worker;
#: large enough that inter-process overhead amortises, small enough that a
#: wave spreads across workers.
DEFAULT_SHARD_SIZE = 24

#: Shards per wave.  Cutoffs propagate only *between* waves (shards of one
#: wave run concurrently), so a smaller width tightens cutoffs faster and a
#: larger width exposes more parallelism.  The width is a fixed engine
#: parameter — never derived from the worker count — because the statistics
#: must not depend on how many processes happen to be available.
DEFAULT_WAVE_WIDTH = 8

#: Adaptive mode: wall-clock one shard should cost, and the clamp on the
#: derived shard size.  The target amortises the per-shard dispatch
#: overhead while keeping waves short enough that cutoffs still propagate
#: and a wave still spreads across workers.
ADAPTIVE_SHARD_SECONDS = 0.05
ADAPTIVE_MIN_SHARD = 4
ADAPTIVE_MAX_SHARD = 256


#: Distinguishes engine payloads when one worker pool serves several
#: engines over its lifetime (one engine per snapshot of a run).
_EPOCH_COUNTER = itertools.count(1)


@dataclass(frozen=True)
class PairFlowShard:
    """One picklable unit of pair-flow work.

    ``pairs`` holds dense flow-endpoint indices into the shipped compact
    network; ``cutoff`` is the running minimum inherited from earlier
    waves (``None`` on the first wave of an uncut evaluation).

    ``epoch`` names the network the pairs index into.  A worker caches the
    most recently thawed network per process; a shard arriving with an
    unknown epoch and ``compact is None`` is answered with a payload-miss
    sentinel and re-dispatched by the engine with the compact network
    attached.  This is what lets one process pool outlive any single
    engine: consecutive snapshots of a run reuse the pool and only the
    (small) compact network travels again.
    """

    pairs: Tuple[Tuple[int, int], ...]
    cutoff: Optional[int]
    use_cutoff: bool
    stop_at_zero: bool
    epoch: int = 0
    algorithm: str = "dinic"
    compact: Optional[CompactNetwork] = None


@dataclass(frozen=True)
class PairFlowOutcome:
    """Combined result of one batched evaluation.

    ``values[i]`` is the recorded connectivity of the ``i``-th *evaluated*
    pair in canonical order; with cutoffs enabled a recorded value is a
    lower bound capped at the running minimum that was in force when the
    pair ran (the minimum itself stays exact).  ``min_pair`` is the first
    evaluated pair (canonical order) whose recorded value equals the
    minimum.
    """

    values: List[int]
    pairs_evaluated: int
    minimum: Optional[int]
    min_pair: Optional[Tuple[Vertex, Vertex]]
    total: int

    @property
    def average(self) -> float:
        """Mean recorded value (0.0 when nothing was evaluated)."""
        if not self.pairs_evaluated:
            return 0.0
        return self.total / self.pairs_evaluated


def _run_shard_on(
    network: ResidualNetwork,
    flow_fn: Callable[..., float],
    shard: PairFlowShard,
) -> List[int]:
    """Evaluate one shard against ``network``.

    Returns the recorded values in shard-pair order; the list is shorter
    than ``shard.pairs`` only when ``stop_at_zero`` ended the shard early.
    """
    reset = network.reset
    values: List[int] = []
    append = values.append
    running = shard.cutoff
    use_cutoff = shard.use_cutoff
    for source_index, target_index in shard.pairs:
        cutoff = float(running) if (use_cutoff and running is not None) else None
        reset()
        value = int(round(flow_fn(network, source_index, target_index, cutoff)))
        append(value)
        if use_cutoff and (running is None or value < running):
            running = value
        if shard.stop_at_zero and value == 0:
            break
    return values


# ----------------------------------------------------------------------
# Worker side (parallel sessions only).  Each worker process caches the
# most recently thawed network, keyed by the shard epoch; the compact
# network is shipped with the first wave of an engine's work (and again
# on the rare payload miss, when a worker first sees an epoch in a later
# wave).  Serial engines never touch these globals — they evaluate shards
# directly against the engine's own network.
# ----------------------------------------------------------------------
_WORKER_EPOCH: int = 0
_WORKER_NETWORK: Optional[ResidualNetwork] = None
_WORKER_FLOW_FN: Optional[Callable[..., float]] = None

#: Returned by a worker that has not yet seen the shard's epoch and was
#: not sent the compact payload; the engine re-dispatches with it attached.
_PAYLOAD_MISS = None


def _execute_shard(shard: PairFlowShard) -> Optional[List[int]]:
    """Worker-pool entry point: evaluate a shard on the process-local state."""
    global _WORKER_EPOCH, _WORKER_NETWORK, _WORKER_FLOW_FN
    if shard.epoch != _WORKER_EPOCH or _WORKER_NETWORK is None:
        if shard.compact is None:
            return _PAYLOAD_MISS
        _WORKER_NETWORK = shard.compact.thaw()
        _WORKER_FLOW_FN = network_flow_function(shard.algorithm)
        _WORKER_EPOCH = shard.epoch
    return _run_shard_on(_WORKER_NETWORK, _WORKER_FLOW_FN, shard)


class PairFlowEngine:
    """Evaluates batches of ``kappa(v, w)`` queries on one connectivity graph.

    Parameters
    ----------
    graph:
        The connectivity graph ``D``.
    algorithm:
        Max-flow algorithm (``"dinic"``, ``"edmonds_karp"``,
        ``"push_relabel"``).
    flow_jobs:
        Worker processes for shard evaluation; ``1`` (default) runs every
        shard in-process through the same scheduling code path.
    shard_size / wave_width:
        Scheduling granularity (see module docstring).  Both shape which
        cutoff each pair sees, so the two sides of an equivalence check
        must share them — the defaults are used everywhere in practice.
    adaptive:
        Enable cost-aware scheduling: shard sizes derived from the
        observed per-pair cost and a tightness-ordered minimum pass (see
        module docstring).  Off by default; every reported statistic is
        bit-identical either way, only the evaluation order and the
        dispatch granularity change.
    cost_tracker:
        Shared :class:`~repro.runtime.costmodel.PairCostTracker` fed by
        every evaluation.  The analyzer passes one tracker across all
        engines of a run so later snapshots are scheduled with costs
        observed on earlier ones; an adaptive engine without an explicit
        tracker keeps a private one.
    executor:
        Pre-built :class:`Executor` overriding ``flow_jobs``.
    session:
        External, caller-owned :class:`ExecutionSession` (worker pool).
        The engine borrows it for every evaluation and never closes it —
        this is how the analyzer reuses **one** pool across the engines of
        consecutive snapshots: only the compact network changes between
        snapshots (shipped under a fresh epoch), the processes persist.

    The engine may also be used as a context manager; inside a ``with``
    block one executor session (process pool) is pinned across all
    evaluations, which shares a pool between the minimum and average
    passes of one snapshot.
    """

    def __init__(
        self,
        graph: DiGraph,
        algorithm: str = "dinic",
        flow_jobs: int = 1,
        shard_size: int = DEFAULT_SHARD_SIZE,
        wave_width: int = DEFAULT_WAVE_WIDTH,
        adaptive: bool = False,
        cost_tracker: Optional[PairCostTracker] = None,
        executor: Optional[Executor] = None,
        session=None,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if wave_width < 1:
            raise ValueError(f"wave_width must be >= 1, got {wave_width}")
        self._flow_fn = network_flow_function(algorithm)  # validates the name
        self.graph = graph
        self.algorithm = algorithm
        self.shard_size = shard_size
        self.wave_width = wave_width
        self.adaptive = adaptive
        if cost_tracker is None and adaptive:
            cost_tracker = PairCostTracker()
        self.cost_tracker = cost_tracker
        self.executor = executor or make_executor(flow_jobs)
        self.transform: IndexedEvenTransform = indexed_even_transform(graph)
        self._compact: Optional[CompactNetwork] = None
        self._epoch = next(_EPOCH_COUNTER)
        self._payload_shipped = False
        self._external_session = session
        self._session = None
        # ``None`` when observability is off; the per-pair kernel above is
        # untouched either way — counters are folded in once per
        # evaluation, after the waves have run.
        self._obs = obs_active()

    # ------------------------------------------------------------------
    def __enter__(self) -> "PairFlowEngine":
        if self._external_session is None:
            self._session = self._make_session()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        session, self._session = self._session, None
        if session is not None:
            session.close()

    # ------------------------------------------------------------------
    def evaluate(
        self,
        pairs: Sequence[Tuple[Vertex, Vertex]],
        use_cutoff: bool = False,
        initial_minimum: Optional[int] = None,
        stop_at_zero: bool = False,
    ) -> PairFlowOutcome:
        """Evaluate ``kappa`` for every (non-adjacent) pair in ``pairs``.

        ``initial_minimum`` seeds the first wave's cutoff (e.g. with the
        degree bound); ``stop_at_zero`` stops scheduling new waves once a
        recorded value hits 0 (a shard also stops locally), mirroring the
        serial minimum pass's early exit at wave granularity.

        This entry point always uses the engine's *canonical* geometry
        (``shard_size``/``wave_width`` as configured) and the given pair
        order — the adaptive scheduling of :meth:`minimum_over` and
        :meth:`average_over` never leaks into direct callers.
        """
        return self._evaluate(
            list(pairs), self.shard_size, use_cutoff, initial_minimum,
            stop_at_zero,
        )

    def _evaluate(
        self,
        pairs: List[Tuple[Vertex, Vertex]],
        shard_size: int,
        use_cutoff: bool,
        initial_minimum: Optional[int],
        stop_at_zero: bool,
    ) -> PairFlowOutcome:
        """Evaluate ``pairs`` in order under an explicit shard size."""
        if not pairs:
            return PairFlowOutcome(
                values=[], pairs_evaluated=0, minimum=None, min_pair=None, total=0
            )
        started = perf_counter()
        endpoint_indices = self.transform.flow_endpoint_indices
        indexed = [endpoint_indices(source, target) for source, target in pairs]
        shards = [
            tuple(indexed[start:start + shard_size])
            for start in range(0, len(indexed), shard_size)
        ]

        values: List[int] = []
        evaluated_positions: List[int] = []
        running = initial_minimum
        wave_width = self.wave_width
        epoch = self._epoch
        algorithm = self.algorithm
        waves_dispatched = 0
        shards_dispatched = 0
        payload_misses = 0
        session, owns_session = self._acquire_session()
        span = tracing.span(
            "pairflow.evaluate", pairs=len(pairs), cutoff=use_cutoff
        )
        try:
            span.__enter__()
            serial = isinstance(session, _EngineLocalSession)
            for wave_start in range(0, len(shards), wave_width):
                if stop_at_zero and running == 0:
                    break
                # Ship the compact network with the engine's very first
                # wave so a cold pool thaws it without an extra round
                # trip; workers that first see this epoch later (or after
                # another engine's epoch displaced it) answer with a
                # payload miss and get the shards re-sent with payload.
                compact = None
                if not serial and not self._payload_shipped:
                    compact = self._compact_payload()
                    self._payload_shipped = True
                wave = shards[wave_start:wave_start + wave_width]
                waves_dispatched += 1
                shards_dispatched += len(wave)
                tasks = [
                    PairFlowShard(
                        pairs=shard,
                        cutoff=running,
                        use_cutoff=use_cutoff,
                        stop_at_zero=stop_at_zero,
                        epoch=epoch,
                        algorithm=algorithm,
                        compact=compact,
                    )
                    for shard in wave
                ]
                shard_results = session.map(_execute_shard, tasks)
                missed = [
                    index
                    for index, result in enumerate(shard_results)
                    if result is None
                ]
                if missed:
                    payload_misses += len(missed)
                    payload = self._compact_payload()
                    retries = [
                        replace(tasks[index], compact=payload)
                        for index in missed
                    ]
                    for index, result in zip(
                        missed, session.map(_execute_shard, retries)
                    ):
                        shard_results[index] = result
                for offset, shard_values in enumerate(shard_results):
                    base = (wave_start + offset) * shard_size
                    values.extend(shard_values)
                    evaluated_positions.extend(
                        range(base, base + len(shard_values))
                    )
                    for value in shard_values:
                        if running is None or value < running:
                            running = value
        finally:
            span.__exit__(None, None, None)
            if owns_session:
                session.close()

        registry = self._obs
        if registry is not None:
            registry.inc("pairflow.evaluations")
            registry.inc("pairflow.pairs_submitted", len(pairs))
            registry.inc("pairflow.pairs_evaluated", len(values))
            # Pairs never evaluated because ``stop_at_zero`` (shard-local
            # or wave-level) ended the pass early — the cutoff machinery's
            # prune rate.
            registry.inc("pairflow.pairs_pruned", len(pairs) - len(values))
            registry.inc("pairflow.shards", shards_dispatched)
            registry.inc("pairflow.waves", waves_dispatched)
            registry.inc("pairflow.payload_misses", payload_misses)
            registry.observe("pairflow.shard_size", shard_size)
            if use_cutoff:
                registry.inc("pairflow.cutoff_pairs", len(values))

        if self.cost_tracker is not None and values and not use_cutoff:
            # Only cutoff-free evaluations feed the tracker: those flows
            # run to completion, so their cost is representative, whereas
            # cutoff-truncated minimum-pass flows would bias the estimate
            # toward zero.  Wall-clock is scaled by the workers a pooled
            # session could keep busy to approximate CPU-seconds per pair
            # rather than elapsed time.
            workers = getattr(self.executor, "jobs", 1)
            effective = max(1, min(workers, len(shards)))
            self.cost_tracker.observe(
                self.algorithm,
                len(values),
                (perf_counter() - started) * effective,
            )
        if not values:
            return PairFlowOutcome(
                values=[], pairs_evaluated=0, minimum=None, min_pair=None, total=0
            )
        minimum = min(values)
        min_pair = pairs[evaluated_positions[values.index(minimum)]]
        return PairFlowOutcome(
            values=values,
            pairs_evaluated=len(values),
            minimum=minimum,
            min_pair=min_pair,
            total=sum(values),
        )

    # ------------------------------------------------------------------
    def minimum_over(
        self,
        sources: Sequence[Vertex],
        targets: Sequence[Vertex],
        initial_minimum: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Minimum ``kappa`` over the non-adjacent pairs of ``sources x targets``.

        Returns ``(minimum, pairs evaluated)`` with cutoffs enabled — the
        parallel counterpart of
        :meth:`repro.core.vertex_connectivity.PairFlowEvaluator.minimum_over`.
        If no valid pair exists, falls back to ``initial_minimum`` (or the
        sources' degree bound when that is ``None``).
        """
        graph = self.graph
        has_edge = graph.has_edge
        pairs = [
            (source, target)
            for source in sources
            for target in targets
            if target != source and not has_edge(source, target)
        ]
        if self.adaptive:
            outcome = self._adaptive_minimum(pairs, initial_minimum)
        else:
            outcome = self.evaluate(
                pairs,
                use_cutoff=True,
                initial_minimum=initial_minimum,
                stop_at_zero=True,
            )
        if outcome.minimum is None:
            if initial_minimum is not None:
                return initial_minimum, 0
            bound = min(
                (graph.out_degree(v) for v in sources), default=0
            )
            return bound, 0
        minimum = outcome.minimum
        if initial_minimum is not None and initial_minimum < minimum:
            minimum = initial_minimum
        return minimum, outcome.pairs_evaluated

    def average_over(
        self, pairs: Sequence[Tuple[Vertex, Vertex]]
    ) -> Tuple[float, int]:
        """Mean exact ``kappa`` over ``pairs`` (no cutoffs).

        Returns ``(average, pairs evaluated)``; ``(0.0, 0)`` for an empty
        batch.  In adaptive mode the shard size follows the observed
        per-pair cost — with no cutoffs every value is exact and every
        pair is evaluated, so the outcome cannot depend on the geometry.
        """
        shard_size = (
            self._adaptive_shard_size() if self.adaptive else self.shard_size
        )
        outcome = self._evaluate(
            list(pairs), shard_size, use_cutoff=False, initial_minimum=None,
            stop_at_zero=False,
        )
        return outcome.average, outcome.pairs_evaluated

    # ------------------------------------------------------------------
    def _adaptive_shard_size(self) -> int:
        """Shard size targeting ``ADAPTIVE_SHARD_SECONDS`` of work per shard.

        Falls back to the canonical ``shard_size`` until the tracker has
        seen at least one evaluation (typically the first snapshot of a
        run seeds the tracker for all later ones).
        """
        per_pair = (
            self.cost_tracker.seconds_per_pair(self.algorithm)
            if self.cost_tracker is not None
            else None
        )
        if not per_pair or per_pair <= 0:
            return self.shard_size
        derived = int(round(ADAPTIVE_SHARD_SECONDS / per_pair))
        clamped = max(ADAPTIVE_MIN_SHARD, min(ADAPTIVE_MAX_SHARD, derived))
        registry = self._obs
        if registry is not None and clamped != self.shard_size:
            registry.inc("pairflow.adaptive_resizes")
            registry.observe("pairflow.adaptive_shard_size", clamped)
        return clamped

    def _adaptive_minimum(
        self,
        pairs: List[Tuple[Vertex, Vertex]],
        initial_minimum: Optional[int],
    ) -> PairFlowOutcome:
        """Tightness-ordered, cost-sized minimum pass.

        Pairs run in ascending order of ``min(out_degree(source),
        in_degree(target))`` — an upper bound on ``kappa(source,
        target)`` — so the pairs most likely to realise the minimum run
        in the earliest waves and every later wave inherits a cutoff
        close to the final answer.

        The statistics consumed upstream are bit-identical to the
        canonical schedule: the reported minimum is order-invariant (see
        module docstring) and, as long as no zero is recorded,
        ``stop_at_zero`` never truncates, so both schedules evaluate
        every pair.  A recorded zero makes the truncation point
        geometry-dependent, so that case discards the adaptive attempt
        and replays the canonical schedule — cheap, because the zero
        cutoff short-circuits every remaining flow, and unreachable from
        the analyzer (which settles ``kappa = 0`` via the
        strongly-connected-components check before ever running flows).
        """

        def canonical() -> PairFlowOutcome:
            return self.evaluate(
                pairs,
                use_cutoff=True,
                initial_minimum=initial_minimum,
                stop_at_zero=True,
            )

        if not pairs or initial_minimum == 0:
            # Nothing to schedule (the canonical pass exits before its
            # first wave when the seed cutoff is already 0).
            return canonical()
        graph = self.graph
        out_degree = graph.out_degree
        in_degree = graph.in_degree
        order = sorted(
            range(len(pairs)),
            key=lambda position: (
                min(out_degree(pairs[position][0]), in_degree(pairs[position][1])),
                position,
            ),
        )
        outcome = self._evaluate(
            [pairs[position] for position in order],
            self._adaptive_shard_size(),
            use_cutoff=True,
            initial_minimum=initial_minimum,
            stop_at_zero=True,
        )
        if outcome.minimum == 0:
            # Geometry-dependent truncation point: discard the adaptive
            # attempt and replay the canonical schedule (see docstring).
            if self._obs is not None:
                self._obs.inc("pairflow.adaptive_replays")
            return canonical()
        return outcome

    # ------------------------------------------------------------------
    def _acquire_session(self):
        """Return ``(session, owns)`` — the session to evaluate on.

        Priority: the session pinned by ``with`` (borrowed), then the
        caller-provided external session (borrowed), then a fresh one the
        caller of this method must close (``owns=True``).
        """
        if self._session is not None:
            return self._session, False
        if self._external_session is not None:
            return self._external_session, False
        return self._make_session(), True

    def _make_session(self):
        """Open a fresh session of the right flavour for this executor.

        A :class:`SerialExecutor` evaluates shards directly against the
        engine's own network — no worker globals, no compact snapshot, so
        two serial engines can be open concurrently without interference.
        Parallel executors get a caller-owned pool session; the compact
        network travels with the first wave (and on payload misses).
        """
        from repro.runtime.executor import SerialExecutor

        if isinstance(self.executor, SerialExecutor):
            return _EngineLocalSession(self.transform.network, self._flow_fn)
        return self.executor.open_session()

    def _compact_payload(self) -> CompactNetwork:
        """Build (lazily) the picklable network payload shipped to workers."""
        if self._compact is None:
            self._compact = self.transform.compact()
        return self._compact


class _EngineLocalSession:
    """In-process session bound to one engine's network (serial path)."""

    def __init__(self, network: ResidualNetwork, flow_fn) -> None:
        self._network = network
        self._flow_fn = flow_fn

    def __enter__(self) -> "_EngineLocalSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def map(self, fn, shards) -> List[List[int]]:
        # ``fn`` is always _execute_shard here; run its body against the
        # engine-local state instead of the worker-pool globals (epoch and
        # compact payload are irrelevant in-process).
        return [
            _run_shard_on(self._network, self._flow_fn, shard)
            for shard in shards
        ]

    def close(self) -> None:
        """Nothing to release; the engine owns the network."""
