"""Task executors.

An :class:`Executor` turns a batch of :class:`ExperimentTask` objects into
their results.  Because each task carries its own seed-derived random
universe, execution order and process placement cannot influence any result:
:class:`ParallelExecutor` is bit-identical to :class:`SerialExecutor` (the
equivalence is asserted by ``tests/runtime``).

Both executors report per-task completion through an optional ``on_result``
callback (index into the submitted batch, result), which the campaign driver
uses to stream progress and to populate the result cache as soon as each
task finishes rather than when the whole batch does.

Beyond whole-experiment tasks, executors expose a generic *session* API
(:meth:`Executor.session`) used by the batched pair-flow engine
(:mod:`repro.runtime.pairflow`): a session pins worker processes for its
whole lifetime and runs an optional initializer once per worker, so
per-snapshot state (the compact Even-transformed network) is shipped to
each worker exactly once and then reused by every shard dispatched through
:meth:`ExecutionSession.map`.

On top of the generic session API sits the *task session*
(:meth:`Executor.open_task_session` → :class:`TaskSession`): a long-lived
pool that accepts whole **batches** of experiment tasks per worker call
(:func:`execute_task_batch`) instead of one task per submission.  Workers
keep warm per-process state across the tasks of a session: imported
modules stay imported and bytecode stays specialised — the dominant
per-task overhead under the ``spawn`` start method, paid once per
session instead of once per task.  Batching is a pure scheduling knob:
results are keyed by submission index and bit-identical to per-task
dispatch.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.runner import ExperimentResult
from repro.obs import tracing
from repro.runtime import faults
from repro.runtime.task import ExperimentTask, execute_task

logger = logging.getLogger("repro.runtime.executor")

#: ``on_result(index, result)`` — called as each task of a batch completes.
ResultCallback = Callable[[int, ExperimentResult], None]

#: One batch of (submission index, task) pairs, run by a single worker call.
IndexedBatch = Sequence[Tuple[int, ExperimentTask]]


class ExecutionSession(ABC):
    """A pinned set of workers accepting successive batches of calls."""

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in submission order."""

    def map_completed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(item_index, fn(item))`` pairs in *completion* order.

        The streaming twin of :meth:`map`: results surface as soon as
        each call finishes instead of when the whole batch does, which is
        what lets the campaign driver emit per-task progress while other
        batches are still running.  The serial default computes lazily in
        submission order (completion order and submission order coincide
        in one process).
        """
        for index, item in enumerate(items):
            yield index, fn(item)

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        """Submit one call and return its :class:`~concurrent.futures.Future`.

        The primitive under the campaign's resilient dispatch loop: the
        caller owns completion handling (``wait``, timeouts, hedged
        duplicates) instead of the session.  The serial default executes
        inline and returns an already-settled future, so completion order
        equals submission order in one process — same contract, zero
        concurrency.
        """
        future: Future = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(fn(item))
        except BaseException as error:
            future.set_exception(error)
        return future

    def close(self) -> None:
        """Release session-owned resources (no-op unless the session owns a pool)."""


class _SerialSession(ExecutionSession):
    """Runs every call in the current process."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release for in-process execution."""


class _PoolSession(ExecutionSession):
    """Dispatches calls onto a live :class:`ProcessPoolExecutor`.

    When constructed with an :class:`~contextlib.ExitStack` the session
    *owns* its pool: :meth:`close` unwinds the stack (shutting the pool
    down and restoring the exported ``PYTHONPATH``).  Sessions yielded by
    the :meth:`Executor.session` context manager pass ``owned=None`` — the
    context manager owns the resources.
    """

    def __init__(
        self, pool: ProcessPoolExecutor, owned: Optional[ExitStack] = None
    ) -> None:
        self._pool = pool
        self._owned = owned

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        futures = [self._pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # A failing call (or a worker initializer that broke the
            # pool) must not leave the rest of the batch queued: cancel
            # whatever has not started so the session can be closed (or
            # reused, when the pool survived) immediately.
            logger.warning(
                "cancelling %d queued call(s) after a failed pool call",
                len(futures),
            )
            for future in futures:
                future.cancel()
            raise

    def map_completed(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Yield ``(item_index, result)`` as calls complete on the pool.

        A failing call — or a consumer that raises (or abandons the
        iterator) mid-stream — cancels every call that has not started
        yet, so an aborted stream never leaves work queued behind it.
        """
        pending = {
            self._pool.submit(fn, item): index
            for index, item in enumerate(items)
        }
        try:
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    yield index, future.result()
        finally:
            if pending:
                logger.warning(
                    "cancelling %d queued call(s) after an aborted "
                    "completion stream",
                    len(pending),
                )
            for future in pending:
                future.cancel()

    def submit(self, fn: Callable[[Any], Any], item: Any) -> Future:
        """Submit one call onto the pool (raises if the pool is broken)."""
        return self._pool.submit(fn, item)

    def close(self) -> None:
        """Shut down the pool if this session owns it (idempotent)."""
        owned, self._owned = self._owned, None
        if owned is not None:
            self._reap_broken_workers()
            owned.close()

    def _reap_broken_workers(self) -> None:
        """Kill surviving workers of a *broken* pool before shutdown.

        When a worker dies mid-call it can take the shared call-queue
        lock with it; a sibling blocked in ``call_queue.get()`` then
        never sees the shutdown sentinel, and ``shutdown(wait=True)``
        joins it forever (CPython < 3.12 does not kill workers in
        ``terminate_broken``).  The pool is already broken — every
        pending future has failed and the campaign re-runs the work —
        so reaping the survivors loses nothing and unblocks the join.
        """
        if not getattr(self._pool, "_broken", False):
            return
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            if process.is_alive():
                logger.warning(
                    "killing worker %s stuck in a broken pool", process.pid
                )
                process.kill()


# ----------------------------------------------------------------------
# Warm-worker task batches
# ----------------------------------------------------------------------
class _WarmWorkerState:
    """Per-process state kept warm across the tasks of a task session.

    The warmth that matters is the process itself: a persistent worker
    pays interpreter start-up, module imports and bytecode
    specialisation once, then amortises them over every batch it
    receives — per-task pools pay all of it per task.  Python-level
    caching of runner objects was measured to save nothing on top
    (constructing an :class:`ExperimentRunner` is six attribute
    assignments; the task already carries a resolved profile), so this
    registry only tracks throughput counters for diagnostics and tests.
    """

    def __init__(self) -> None:
        self.tasks_executed = 0
        self.batches_executed = 0

    def execute(self, task: ExperimentTask) -> ExperimentResult:
        self.tasks_executed += 1
        faults.maybe_inject_task_fault(task.label())
        return task.run()


#: Lazily created per-process warm state (one per worker process; also one
#: in the parent process when a serial session runs batches in-process).
_WARM_STATE: Optional[_WarmWorkerState] = None


def _warm_state() -> _WarmWorkerState:
    global _WARM_STATE
    if _WARM_STATE is None:
        _WARM_STATE = _WarmWorkerState()
    return _WARM_STATE


def execute_task_batch(
    indexed_tasks: IndexedBatch,
) -> List[Tuple[int, ExperimentResult]]:
    """Worker entry point: run a batch of (index, task) pairs in order.

    Returns ``(index, result)`` pairs so the parent can map results back
    to submission order regardless of how batches were packed.  Runs
    through the per-process warm state, so consecutive tasks of a batch
    (and consecutive batches of a session) share imported modules and
    per-configuration runners.
    """
    state = _warm_state()
    state.batches_executed += 1
    return [(index, state.execute(task)) for index, task in indexed_tasks]


def _warm_state_snapshot(_item: Any = None) -> Dict[str, int]:
    """Report the calling process's warm-state counters (test/debug aid)."""
    state = _warm_state()
    return {
        "pid": os.getpid(),
        "tasks_executed": state.tasks_executed,
        "batches_executed": state.batches_executed,
    }


class TaskSession:
    """A long-lived dispatcher of experiment-task batches.

    Wraps one caller-owned :class:`ExecutionSession` (a pinned worker
    pool, or the current process for serial executors) and runs whole
    batches per worker call through :func:`execute_task_batch`.  The
    session — and with it every worker's warm state — survives across
    :meth:`run_batches` calls until :meth:`close`, which is what turns a
    grid of small simulations from "one pool per task" into "one pool
    per campaign".

    Failure containment: batches are independent worker calls, so a task
    that raises (or a worker that dies) fails its own batch; batches that
    already completed have streamed their results through ``on_result``
    (the campaign driver caches them immediately).  A dead worker breaks
    the underlying process pool — callers must close this session and
    open a fresh one; tasks of unfinished batches simply re-run there
    (or are served from the cache next time).
    """

    def __init__(self, session: ExecutionSession) -> None:
        self._session = session

    def run_batches(
        self,
        batches: Sequence[IndexedBatch],
        on_result: Optional[ResultCallback] = None,
    ) -> Dict[int, ExperimentResult]:
        """Run every batch; stream per-task ``on_result`` as batches finish.

        Returns ``{submission_index: result}`` over all batches.  Tasks
        inside a batch are reported in batch order, batches in completion
        order.
        """
        results: Dict[int, ExperimentResult] = {}
        for _, batch_results in self._session.map_completed(
            execute_task_batch, [list(batch) for batch in batches]
        ):
            tracing.point("batch", tasks=len(batch_results))
            for index, result in batch_results:
                results[index] = result
                if on_result is not None:
                    on_result(index, result)
        return results

    def submit_batch(self, batch: IndexedBatch) -> Future:
        """Submit one batch and return the future of its (index, result) pairs.

        The resilient campaign driver dispatches through this instead of
        :meth:`run_batches` so it can track per-batch completion, impose
        straggler deadlines and re-dispatch survivors of a failed batch.
        On a serial session the batch executes inline and the returned
        future is already settled.
        """
        return self._session.submit(execute_task_batch, list(batch))

    def warm_state_snapshots(self, probes: int = 1) -> List[Dict[str, int]]:
        """Sample per-worker warm-state counters (diagnostics/tests)."""
        return self._session.map(_warm_state_snapshot, list(range(probes)))

    def close(self) -> None:
        """Release the underlying session (idempotent)."""
        self._session.close()


class Executor(ABC):
    """Runs batches of experiment tasks."""

    #: Number of concurrent worker processes this executor dispatches to
    #: (1 for in-process execution).  The campaign's ``batch="auto"``
    #: packing uses it as the batch count, so every worker gets one
    #: near-equal-cost batch.
    worker_count: int = 1

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        """Execute ``tasks`` and return their results in submission order."""

    def open_task_session(self) -> TaskSession:
        """Open a caller-owned :class:`TaskSession` over a persistent pool.

        The serial default runs batches in the current process; parallel
        executors pin one process pool whose workers stay warm across
        every batch of the session.  The caller must ``close()`` it.
        """
        return TaskSession(self.open_session())

    @contextmanager
    def session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> Iterator[ExecutionSession]:
        """Yield an :class:`ExecutionSession` with ``initializer`` applied.

        The serial default runs the initializer once in-process; parallel
        executors override this to run it once per worker process when the
        worker starts, which is what lets callers ship a large read-only
        payload (e.g. a compact residual network) to each worker exactly
        once instead of once per submitted item.
        """
        if initializer is not None:
            initializer(*initargs)
        yield _SerialSession()

    def open_session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> ExecutionSession:
        """Open a session whose lifetime the *caller* controls.

        Unlike :meth:`session` (a context manager scoped to one ``with``
        block), the returned session stays open until its ``close()`` is
        called — the pair-flow engine pool reuse keeps one session alive
        across every snapshot of an experiment run.  The serial default
        runs the initializer in-process and returns a no-op-close session.
        """
        if initializer is not None:
            initializer(*initargs)
        return _SerialSession()


class SerialExecutor(Executor):
    """Runs every task in the current process, one after another."""

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        results: List[ExperimentResult] = []
        for index, task in enumerate(tasks):
            result = execute_task(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ParallelExecutor(Executor):
    """Runs tasks on a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Number of worker processes (defaults to the CPU count).  The pool is
        created per batch and sized to ``min(jobs, len(batch))`` so small
        batches do not pay for idle workers.
    start_method:
        Multiprocessing start method for worker pools (``"fork"``,
        ``"spawn"`` or ``"forkserver"``; ``None`` keeps the platform
        default).  Purely an execution knob — results are bit-identical
        under every method because tasks carry their own random
        universes — but the *cost* profile differs sharply: ``spawn``
        (the only method on Windows, the default on macOS, and the
        direction CPython is moving on Linux) starts a fresh interpreter
        per worker and re-imports ``repro``, which is exactly the
        per-task overhead the persistent task session amortises.
    """

    def __init__(
        self, jobs: Optional[int] = None, start_method: Optional[str] = None
    ) -> None:
        resolved = jobs if jobs is not None else os.cpu_count() or 1
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {resolved}")
        self.jobs = resolved
        self.start_method = start_method
        self._mp_context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else None
        )

    @property
    def worker_count(self) -> int:  # type: ignore[override]
        return self.jobs

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        if not tasks:
            return []
        results: List[Optional[ExperimentResult]] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with _exported_package_path():
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=self._mp_context
            ) as pool:
                pending = {
                    pool.submit(execute_task, task): index
                    for index, task in enumerate(tasks)
                }
                try:
                    while pending:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = pending.pop(future)
                            result = future.result()
                            results[index] = result
                            if on_result is not None:
                                on_result(index, result)
                except BaseException:
                    # A failing task or a raising on_result callback ends
                    # the batch: cancel everything not yet started so the
                    # pool shutdown below only waits for the tasks that
                    # are actually running, instead of silently executing
                    # the rest of the batch first.
                    if pending:
                        logger.warning(
                            "cancelling %d queued task(s) after a failed "
                            "batch",
                            len(pending),
                        )
                    for future in pending:
                        future.cancel()
                    raise
        return results  # type: ignore[return-value]

    @contextmanager
    def session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> Iterator[ExecutionSession]:
        """Yield a session backed by one process pool held open throughout.

        The pool (and therefore the per-worker initializer state) survives
        across every :meth:`ExecutionSession.map` call of the session, so
        wave-structured workloads pay the worker start-up and payload
        shipping cost once, not once per wave.
        """
        with _exported_package_path():
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=self._mp_context,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                yield _PoolSession(pool)

    def open_session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> ExecutionSession:
        """Open a caller-owned pool session (see :meth:`Executor.open_session`).

        The exported package path stays in the environment until
        ``close()`` because workers spawn lazily, on first submit.  If
        pool construction itself fails, the stack unwinds immediately so
        no environment mutation (or half-built pool) outlives the error.
        """
        stack = ExitStack()
        try:
            stack.enter_context(_exported_package_path())
            pool = stack.enter_context(
                ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=self._mp_context,
                    initializer=initializer,
                    initargs=initargs,
                )
            )
        except BaseException:
            stack.close()
            raise
        return _PoolSession(pool, owned=stack)


#: Executor backends selectable by ``make_executor`` / ``--backend``.
EXECUTOR_BACKENDS = ("local", "distributed")


def make_executor(
    jobs: Optional[int] = None, backend: str = "local"
) -> Executor:
    """Return the executor matching ``--jobs`` / ``--backend`` values.

    With the default ``local`` backend, ``None`` or ``1`` selects
    :class:`SerialExecutor`; anything larger a :class:`ParallelExecutor`
    with that many workers.  Zero and negative values are rejected —
    historically they silently degraded to serial execution, which
    masked misconfigured callers.

    ``backend="distributed"`` returns a
    :class:`~repro.runtime.distributed.DistributedExecutor` spawning
    ``jobs`` loopback ``repro worker`` subprocesses (default 2 — a
    distributed fleet of one defeats the point).  Like every placement
    knob it is identity-free: results are byte-identical across
    backends, which the chaos suite asserts under injected faults.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if backend not in EXECUTOR_BACKENDS:
        raise ValueError(
            f"unknown executor backend {backend!r}; "
            f"expected one of {EXECUTOR_BACKENDS}"
        )
    if backend == "distributed":
        # Imported lazily: distributed.py imports this module.
        from repro.runtime.distributed import DistributedExecutor

        return DistributedExecutor(workers=jobs if jobs is not None else 2)
    if jobs is None or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)


#: Reference count / pre-export snapshot of the ``PYTHONPATH`` export.
#: Persistent task sessions keep the export alive for a whole campaign,
#: so two campaigns can overlap in one process; restoring per-context
#: (each context re-instating whatever it saw at *its* open) would let
#: an early close strip the path out from under a still-open session, or
#: re-instate a stale snapshot.  The export is therefore process-global:
#: first opener saves and sets, last closer restores.
# Reentrant: Campaign.__del__ may close a session from a GC pass that
# triggers while this thread is already inside the critical section (the
# environ mutation allocates); a plain Lock would self-deadlock there.
_EXPORT_LOCK = threading.RLock()
_EXPORT_DEPTH = 0
_EXPORT_ORIGINAL: Optional[str] = None


@contextmanager
def _exported_package_path():
    """Make ``repro`` importable in spawned worker processes.

    With the ``fork`` start method children inherit ``sys.path`` directly;
    with ``spawn``/``forkserver`` they re-initialise it from ``PYTHONPATH``,
    so the directory containing the ``repro`` package is prepended to the
    environment while any pool is alive and restored when the last one
    closes (later, unrelated subprocesses must not inherit the modified
    import path).  Reference-counted so overlapping sessions — e.g. two
    batched campaigns, or a campaign pool plus a pair-flow pool — compose.
    """
    global _EXPORT_DEPTH, _EXPORT_ORIGINAL
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    with _EXPORT_LOCK:
        if _EXPORT_DEPTH == 0:
            _EXPORT_ORIGINAL = os.environ.get("PYTHONPATH")
            parts = (
                _EXPORT_ORIGINAL.split(os.pathsep) if _EXPORT_ORIGINAL else []
            )
            if package_root not in parts:
                os.environ["PYTHONPATH"] = os.pathsep.join(
                    [package_root] + parts
                )
        _EXPORT_DEPTH += 1
    try:
        yield
    finally:
        with _EXPORT_LOCK:
            _EXPORT_DEPTH -= 1
            if _EXPORT_DEPTH == 0:
                if _EXPORT_ORIGINAL is None:
                    os.environ.pop("PYTHONPATH", None)
                else:
                    os.environ["PYTHONPATH"] = _EXPORT_ORIGINAL
                _EXPORT_ORIGINAL = None
