"""Task executors.

An :class:`Executor` turns a batch of :class:`ExperimentTask` objects into
their results.  Because each task carries its own seed-derived random
universe, execution order and process placement cannot influence any result:
:class:`ParallelExecutor` is bit-identical to :class:`SerialExecutor` (the
equivalence is asserted by ``tests/runtime``).

Both executors report per-task completion through an optional ``on_result``
callback (index into the submitted batch, result), which the campaign driver
uses to stream progress and to populate the result cache as soon as each
task finishes rather than when the whole batch does.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult
from repro.runtime.task import ExperimentTask, execute_task

#: ``on_result(index, result)`` — called as each task of a batch completes.
ResultCallback = Callable[[int, ExperimentResult], None]


class Executor(ABC):
    """Runs batches of experiment tasks."""

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        """Execute ``tasks`` and return their results in submission order."""


class SerialExecutor(Executor):
    """Runs every task in the current process, one after another."""

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        results: List[ExperimentResult] = []
        for index, task in enumerate(tasks):
            result = execute_task(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ParallelExecutor(Executor):
    """Runs tasks on a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Number of worker processes (defaults to the CPU count).  The pool is
        created per batch and sized to ``min(jobs, len(batch))`` so small
        batches do not pay for idle workers.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        resolved = jobs if jobs is not None else os.cpu_count() or 1
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {resolved}")
        self.jobs = resolved

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        if not tasks:
            return []
        results: List[Optional[ExperimentResult]] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with _exported_package_path():
            with ProcessPoolExecutor(max_workers=workers) as pool:
                pending = {
                    pool.submit(execute_task, task): index
                    for index, task in enumerate(tasks)
                }
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index = pending.pop(future)
                        result = future.result()
                        results[index] = result
                        if on_result is not None:
                            on_result(index, result)
        return results  # type: ignore[return-value]


def make_executor(jobs: Optional[int] = None) -> Executor:
    """Return the executor matching a ``--jobs`` value.

    ``None`` or ``1`` selects :class:`SerialExecutor`; anything larger a
    :class:`ParallelExecutor` with that many workers.
    """
    if jobs is None or jobs <= 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)


@contextmanager
def _exported_package_path():
    """Make ``repro`` importable in spawned worker processes.

    With the ``fork`` start method children inherit ``sys.path`` directly;
    with ``spawn``/``forkserver`` they re-initialise it from ``PYTHONPATH``,
    so the directory containing the ``repro`` package is prepended to the
    environment while the pool is alive and restored afterwards (later,
    unrelated subprocesses must not inherit the modified import path).
    """
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    original = os.environ.get("PYTHONPATH")
    parts = original.split(os.pathsep) if original else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)
    try:
        yield
    finally:
        if original is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = original
