"""Task executors.

An :class:`Executor` turns a batch of :class:`ExperimentTask` objects into
their results.  Because each task carries its own seed-derived random
universe, execution order and process placement cannot influence any result:
:class:`ParallelExecutor` is bit-identical to :class:`SerialExecutor` (the
equivalence is asserted by ``tests/runtime``).

Both executors report per-task completion through an optional ``on_result``
callback (index into the submitted batch, result), which the campaign driver
uses to stream progress and to populate the result cache as soon as each
task finishes rather than when the whole batch does.

Beyond whole-experiment tasks, executors expose a generic *session* API
(:meth:`Executor.session`) used by the batched pair-flow engine
(:mod:`repro.runtime.pairflow`): a session pins worker processes for its
whole lifetime and runs an optional initializer once per worker, so
per-snapshot state (the compact Even-transformed network) is shipped to
each worker exactly once and then reused by every shard dispatched through
:meth:`ExecutionSession.map`.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult
from repro.runtime.task import ExperimentTask, execute_task

#: ``on_result(index, result)`` — called as each task of a batch completes.
ResultCallback = Callable[[int, ExperimentResult], None]


class ExecutionSession(ABC):
    """A pinned set of workers accepting successive batches of calls."""

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Run ``fn`` over ``items`` and return results in submission order."""

    def close(self) -> None:
        """Release session-owned resources (no-op unless the session owns a pool)."""


class _SerialSession(ExecutionSession):
    """Runs every call in the current process."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]

    def close(self) -> None:
        """Nothing to release for in-process execution."""


class _PoolSession(ExecutionSession):
    """Dispatches calls onto a live :class:`ProcessPoolExecutor`.

    When constructed with an :class:`~contextlib.ExitStack` the session
    *owns* its pool: :meth:`close` unwinds the stack (shutting the pool
    down and restoring the exported ``PYTHONPATH``).  Sessions yielded by
    the :meth:`Executor.session` context manager pass ``owned=None`` — the
    context manager owns the resources.
    """

    def __init__(
        self, pool: ProcessPoolExecutor, owned: Optional[ExitStack] = None
    ) -> None:
        self._pool = pool
        self._owned = owned

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        futures = [self._pool.submit(fn, item) for item in items]
        try:
            return [future.result() for future in futures]
        except BaseException:
            # A failing call (or a worker initializer that broke the
            # pool) must not leave the rest of the batch queued: cancel
            # whatever has not started so the session can be closed (or
            # reused, when the pool survived) immediately.
            for future in futures:
                future.cancel()
            raise

    def close(self) -> None:
        """Shut down the pool if this session owns it (idempotent)."""
        owned, self._owned = self._owned, None
        if owned is not None:
            owned.close()


class Executor(ABC):
    """Runs batches of experiment tasks."""

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        """Execute ``tasks`` and return their results in submission order."""

    @contextmanager
    def session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> Iterator[ExecutionSession]:
        """Yield an :class:`ExecutionSession` with ``initializer`` applied.

        The serial default runs the initializer once in-process; parallel
        executors override this to run it once per worker process when the
        worker starts, which is what lets callers ship a large read-only
        payload (e.g. a compact residual network) to each worker exactly
        once instead of once per submitted item.
        """
        if initializer is not None:
            initializer(*initargs)
        yield _SerialSession()

    def open_session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> ExecutionSession:
        """Open a session whose lifetime the *caller* controls.

        Unlike :meth:`session` (a context manager scoped to one ``with``
        block), the returned session stays open until its ``close()`` is
        called — the pair-flow engine pool reuse keeps one session alive
        across every snapshot of an experiment run.  The serial default
        runs the initializer in-process and returns a no-op-close session.
        """
        if initializer is not None:
            initializer(*initargs)
        return _SerialSession()


class SerialExecutor(Executor):
    """Runs every task in the current process, one after another."""

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        results: List[ExperimentResult] = []
        for index, task in enumerate(tasks):
            result = execute_task(task)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class ParallelExecutor(Executor):
    """Runs tasks on a :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    jobs:
        Number of worker processes (defaults to the CPU count).  The pool is
        created per batch and sized to ``min(jobs, len(batch))`` so small
        batches do not pay for idle workers.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        resolved = jobs if jobs is not None else os.cpu_count() or 1
        if resolved < 1:
            raise ValueError(f"jobs must be >= 1, got {resolved}")
        self.jobs = resolved

    def run_tasks(
        self,
        tasks: Sequence[ExperimentTask],
        on_result: Optional[ResultCallback] = None,
    ) -> List[ExperimentResult]:
        if not tasks:
            return []
        results: List[Optional[ExperimentResult]] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        with _exported_package_path():
            with ProcessPoolExecutor(max_workers=workers) as pool:
                pending = {
                    pool.submit(execute_task, task): index
                    for index, task in enumerate(tasks)
                }
                try:
                    while pending:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = pending.pop(future)
                            result = future.result()
                            results[index] = result
                            if on_result is not None:
                                on_result(index, result)
                except BaseException:
                    # A failing task or a raising on_result callback ends
                    # the batch: cancel everything not yet started so the
                    # pool shutdown below only waits for the tasks that
                    # are actually running, instead of silently executing
                    # the rest of the batch first.
                    for future in pending:
                        future.cancel()
                    raise
        return results  # type: ignore[return-value]

    @contextmanager
    def session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> Iterator[ExecutionSession]:
        """Yield a session backed by one process pool held open throughout.

        The pool (and therefore the per-worker initializer state) survives
        across every :meth:`ExecutionSession.map` call of the session, so
        wave-structured workloads pay the worker start-up and payload
        shipping cost once, not once per wave.
        """
        with _exported_package_path():
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                yield _PoolSession(pool)

    def open_session(
        self,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> ExecutionSession:
        """Open a caller-owned pool session (see :meth:`Executor.open_session`).

        The exported package path stays in the environment until
        ``close()`` because workers spawn lazily, on first submit.  If
        pool construction itself fails, the stack unwinds immediately so
        no environment mutation (or half-built pool) outlives the error.
        """
        stack = ExitStack()
        try:
            stack.enter_context(_exported_package_path())
            pool = stack.enter_context(
                ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=initializer,
                    initargs=initargs,
                )
            )
        except BaseException:
            stack.close()
            raise
        return _PoolSession(pool, owned=stack)


def make_executor(jobs: Optional[int] = None) -> Executor:
    """Return the executor matching a ``--jobs`` value.

    ``None`` or ``1`` selects :class:`SerialExecutor`; anything larger a
    :class:`ParallelExecutor` with that many workers.  Zero and negative
    values are rejected — historically they silently degraded to serial
    execution, which masked misconfigured callers.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs is None or jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)


@contextmanager
def _exported_package_path():
    """Make ``repro`` importable in spawned worker processes.

    With the ``fork`` start method children inherit ``sys.path`` directly;
    with ``spawn``/``forkserver`` they re-initialise it from ``PYTHONPATH``,
    so the directory containing the ``repro`` package is prepended to the
    environment while the pool is alive and restored afterwards (later,
    unrelated subprocesses must not inherit the modified import path).
    """
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    original = os.environ.get("PYTHONPATH")
    parts = original.split(os.pathsep) if original else []
    if package_root not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([package_root] + parts)
    try:
        yield
    finally:
        if original is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = original
