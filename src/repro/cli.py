"""Command-line interface.

Subcommands:

``run``
    Run one of the paper's scenarios (A–L) and print its summary and
    connectivity time series.

``sweep-k``
    Run a scenario once per bucket size and print the figure-style series
    (the k-sweep of Figures 2–9).

``table1`` / ``table2``
    Print the reproduced Table 1 (definitional) and Table 2 (from fresh
    Simulations E–H runs).

``analyze-snapshot``
    Analyze a routing-table snapshot JSON file: connectivity, resilience.

``export-dimacs``
    Convert a snapshot JSON file into the DIMACS max-flow format of its
    Even-transformed connectivity graph (the paper's HIPR input format).

``cache``
    Inspect (``cache info``), integrity-check (``cache verify`` —
    sha256 payload checksums, corrupt entries quarantined), empty
    (``cache clear``) or size-cap (``cache prune --max-bytes N``, LRU
    order) a result cache directory used by the run/sweep commands;
    ``cache serve`` exposes a directory as a shared cache tier over TCP
    for ``--shared-cache`` clients (every served entry is checksum
    verified, corrupt entries quarantined server-side).

``worker``
    Join a distributed campaign: connect to a coordinator started by
    ``--backend distributed`` (or an embedding program) and execute
    leased task batches until told to shut down.  This is the
    entrypoint the coordinator spawns for loopback fleets; run it by
    hand on other machines to scale a campaign out.

``obs``
    Observability: ``obs summary`` runs one scenario with
    :mod:`repro.obs` instrumentation enabled and prints the metrics
    summary (cache hit rate, worker utilisation, simulator events/sec,
    mean lookup virtual-time latency); ``--metrics-out``/``--trace-out``
    write the raw metrics JSON and the span-per-line JSONL trace.
    Instrumentation is identity-free — every simulation statistic stays
    bit-identical with it on or off.

Simulation commands accept ``--jobs N`` (process-pool execution across
experiment tasks), ``--backend {local,distributed}`` (same campaign on
an in-process pool or a fleet of TCP workers), ``--flow-jobs N``
(process-pool execution of the per-snapshot pair-flow batches *inside*
a task), ``--cache-dir DIR`` (content-addressed result reuse across
invocations), ``--shared-cache HOST:PORT`` (a remote ``cache serve``
tier behind the local directory), ``--schedule {fifo,cheapest}``
(dispatch pending tasks in submission order or cheapest-first by the
``_costs.json`` cost model beside the cache) and ``--adaptive-shards``
(cost-aware pair-flow shard sizing and wave ordering); all combinations
produce bit-identical output — scheduling and placement knobs change
only *when and where* work runs, never what it computes.  Progress and
cache statistics go to stderr so stdout stays identical regardless of
parallelism, backend, schedule or cache state.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro import obs
from repro.core.analyzer import ConnectivityAnalyzer
from repro.obs import tracing
from repro.obs.summary import format_summary, write_metrics
from repro.experiments.profiles import PROFILES
from repro.experiments.report import (
    format_figure,
    format_summaries,
    format_table1,
    format_table2,
)
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.experiments.sweep import run_bucket_size_sweep, run_scenario
from repro.graph.io.dimacs import write_dimacs
from repro.graph.transform.even_transform import even_transform
from repro.overlay import overlay_names
from repro.analysis.figures import render_series_table
from repro.runtime import faults
from repro.runtime.cache import ResultCache
from repro.runtime.campaign import Campaign, resolve_batch, sweep_tasks
from repro.runtime.distributed import (
    RemoteCacheTier,
    parse_address,
    run_worker,
    serve_cache,
)
from repro.runtime.executor import EXECUTOR_BACKENDS, make_executor
from repro.runtime.resilience import RetryPolicy


def _batch_value(text: str):
    """argparse type for ``--batch``: ``auto``, ``off``, or an int >= 1.

    One grammar for the knob: validation delegates to
    :func:`repro.runtime.campaign.resolve_batch`.  An off-meaning value
    is returned as the explicit ``"off"`` string (not ``None``) so it
    forces per-task dispatch even when the ``REPRO_CAMPAIGN_BATCH``
    environment default is set.
    """
    try:
        resolved = resolve_batch(text)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error))
    return "off" if resolved is None else resolved


def _positive_int(text: str) -> int:
    """argparse type for worker counts: an integer >= 1.

    Rejecting zero/negative values here turns what used to be a deep
    traceback (or a silent fallback to serial execution) into a one-line
    ``error: argument --jobs: ...`` message with exit code 2.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="bench", choices=sorted(PROFILES),
        help="scale profile (default: bench; 'paper' uses the original sizes)",
    )
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--bucket-size", type=int, default=None,
        help="override the Kademlia bucket size k",
    )
    parser.add_argument(
        "--alpha", type=int, default=None, help="override the request parallelism"
    )
    parser.add_argument(
        "--staleness", type=int, default=None, help="override the staleness limit s"
    )
    parser.add_argument(
        "--loss", default=None, choices=["none", "low", "medium", "high"],
        help="override the message loss scenario",
    )
    parser.add_argument(
        "--protocol", default="kademlia", choices=overlay_names(),
        help=(
            "overlay protocol under test (default: kademlia); chord and "
            "pastry run the same churn/attack/loss scenarios through the "
            "protocol-agnostic resilience pipeline"
        ),
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="number of worker processes (1 = run in-process; default: 1)",
    )
    parser.add_argument(
        "--backend", default="local", choices=list(EXECUTOR_BACKENDS),
        help=(
            "executor family for --jobs workers: 'local' (in-process "
            "pool, default) or 'distributed' (spawn a loopback TCP "
            "worker fleet with lease-based dispatch and heartbeat "
            "liveness; identity-free — results are bit-identical to "
            "the local backend)"
        ),
    )
    parser.add_argument(
        "--flow-jobs", type=_positive_int, default=1,
        help=(
            "worker processes for the per-snapshot pair-flow engine "
            "(bit-identical output for any value; default: 1)"
        ),
    )
    parser.add_argument(
        "--connectivity", default="exact", choices=["exact", "estimate"],
        help=(
            "per-snapshot connectivity measurement: 'exact' (the paper's "
            "pipeline, default) or 'estimate' (stratified sampled-pair "
            "estimation with confidence intervals — the only feasible "
            "mode beyond ~10^4 nodes).  Identity-bearing: estimated "
            "results live under their own fingerprint/cache dimension"
        ),
    )
    parser.add_argument(
        "--sample-pairs", type=_positive_int, default=None, metavar="N",
        help=(
            "estimate mode: ordered-pair budget per snapshot (default: "
            "256); requires --connectivity estimate"
        ),
    )
    parser.add_argument(
        "--ci-level", type=float, default=None, metavar="LEVEL",
        help=(
            "estimate mode: two-sided confidence level in (0,1) for the "
            "reported interval (default: 0.95); requires --connectivity "
            "estimate"
        ),
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="directory of the content-addressed result cache (default: off)",
    )
    parser.add_argument(
        "--shared-cache", default=None, metavar="HOST:PORT",
        help=(
            "address of a 'repro-kademlia cache serve' tier used as a "
            "second cache level behind --cache-dir (remote hits are "
            "sha256 verified and re-written locally; remote outages "
            "degrade silently to local-only); requires --cache-dir"
        ),
    )
    parser.add_argument(
        "--schedule", default="fifo", choices=["fifo", "cheapest"],
        help=(
            "dispatch order of uncached tasks: submission order (fifo, "
            "default) or ascending estimated cost from the _costs.json "
            "sidecar beside --cache-dir (cheapest; order-only — results "
            "are bit-identical either way)"
        ),
    )
    parser.add_argument(
        "--adaptive-shards", action="store_true",
        help=(
            "cost-aware pair-flow scheduling inside each task (adaptive "
            "shard sizing, tightness-ordered minimum passes; "
            "bit-identical output)"
        ),
    )
    parser.add_argument(
        "--batch", type=_batch_value, default=None, metavar="{auto,N,off}",
        help=(
            "run several tasks per warm worker call through one "
            "persistent pool: 'auto' packs near-equal-cost batches "
            "(sized by the _costs.json cost model, a few per --jobs "
            "worker), an integer packs fixed-size chunks, 'off' forces "
            "per-task dispatch; defaults to $REPRO_CAMPAIGN_BATCH, off "
            "otherwise (bit-identical output either way)"
        ),
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help=(
            "deterministic fault injection for the run (sets REPRO_FAULTS; "
            "e.g. 'worker-crash@2;task-error@1' or 'corrupt-write@p0.1;"
            "seed=7'); identity-free — the campaign heals the faults and "
            "results stay bit-identical to a fault-free run"
        ),
    )
    parser.add_argument(
        "--retries", type=_positive_int, default=None, metavar="N",
        help=(
            "max executions of a failing task before it is reported as a "
            "poison task (default: 3; 1 disables retries); retry/backoff "
            "knobs are identity-free like the schedule"
        ),
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="stream per-run progress lines to stderr",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help=(
            "enable observability (like REPRO_OBS=1) and write the "
            "collected metrics as JSON to FILE; identity-free — results "
            "and cache entries are bit-identical with or without it"
        ),
    )


def _add_scenario_argument(parser: argparse.ArgumentParser) -> None:
    """Accept the scenario both positionally and as ``--scenario``."""
    parser.add_argument(
        "scenario_positional", nargs="?", default=None, metavar="scenario",
        help="scenario name, e.g. E",
    )
    parser.add_argument(
        "--scenario", dest="scenario_option", default=None,
        help="scenario name, e.g. E (alternative to the positional form)",
    )


def _scenario_name(args: argparse.Namespace) -> str:
    positional = args.scenario_positional
    option = args.scenario_option
    if positional is not None and option is not None and positional != option:
        print(
            f"error: conflicting scenarios {positional!r} (positional) and "
            f"{option!r} (--scenario)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    name = option or positional
    if name is None:
        print("error: a scenario is required (positional or --scenario)",
              file=sys.stderr)
        raise SystemExit(2)
    return name


def _make_cache(args: argparse.Namespace) -> Optional[ResultCache]:
    shared = getattr(args, "shared_cache", None)
    if not args.cache_dir:
        if shared:
            # The local directory is the L1 in front of the shared tier
            # (and the only place verified remote hits can be re-read
            # from); a remote-only cache would silently re-verify every
            # hit over the network, so insist on the pairing.
            print(
                "error: --shared-cache needs --cache-dir (the local "
                "directory is the first cache level in front of the "
                "shared tier)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return None
    remote = None
    if shared:
        try:
            host, port = parse_address(shared)
        except ValueError as error:
            print(f"error: invalid --shared-cache address: {error}",
                  file=sys.stderr)
            raise SystemExit(2)
        remote = RemoteCacheTier(host, port)
    return ResultCache(args.cache_dir, remote=remote)


def _make_retry_policy(args: argparse.Namespace) -> Optional[RetryPolicy]:
    retries = getattr(args, "retries", None)
    return None if retries is None else RetryPolicy(max_attempts=retries)


@contextmanager
def _faults_scope(args: argparse.Namespace):
    """Export ``--faults`` as ``REPRO_FAULTS`` for the duration of a command.

    The environment variable is how the spec reaches worker processes;
    the cached plan is reset on entry and exit so occurrence counters
    start fresh for this command and never leak into a later ``main()``
    call of the same process (the CLI tests call it repeatedly).  A
    malformed spec fails here, as an argument error, instead of at the
    first injection site deep inside a worker.
    """
    spec = getattr(args, "faults", None)
    if not spec:
        yield
        return
    try:
        faults.FaultPlan.parse(spec)
    except faults.FaultSpecError as error:
        print(f"error: invalid --faults spec: {error}", file=sys.stderr)
        raise SystemExit(2)
    previous = os.environ.get(faults.ENV_VAR)
    os.environ[faults.ENV_VAR] = spec
    faults.reset()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(faults.ENV_VAR, None)
        else:
            os.environ[faults.ENV_VAR] = previous
        faults.reset()


def _make_progress(args: argparse.Namespace):
    if not args.progress:
        return None
    return lambda event: print(event.describe(), file=sys.stderr)


def _warn_schedule_without_cache(args: argparse.Namespace) -> None:
    # The cost model lives beside the result cache; without --cache-dir
    # there is nothing to estimate from and cheapest-first degrades to
    # submission order.  Results are identical either way, but the user
    # should know the flag had no effect.
    if args.schedule == "cheapest" and not args.cache_dir:
        print(
            "warning: --schedule cheapest needs --cache-dir (the "
            "_costs.json cost model lives beside the result cache); "
            "dispatching in submission order",
            file=sys.stderr,
        )


def _report_cache_stats(cache: Optional[ResultCache]) -> None:
    if cache is None:
        return
    cache.sync_persistent_stats()
    stats = cache.stats
    print(
        f"[cache] {stats.hits} hits, {stats.misses} misses "
        f"({stats.hit_rate:.0%} hit rate) in {cache.directory}",
        file=sys.stderr,
    )


def _configure_logging(verbosity: int) -> None:
    """Route the ``repro`` logger hierarchy to stderr.

    ``-v`` lifts the threshold to INFO, ``-vv`` to DEBUG; the default
    WARNING keeps the cache/pool diagnostics (oversized-store drops,
    cancelled batches) visible without any flag.  The handler is attached
    once per process (tests call ``main`` repeatedly) and writes to
    stderr so stdout stays bit-identical whatever the verbosity.
    """
    logger = logging.getLogger("repro")
    if not any(
        getattr(handler, "_repro_cli", False) for handler in logger.handlers
    ):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
        )
        handler._repro_cli = True  # type: ignore[attr-defined]
        logger.addHandler(handler)
    if verbosity >= 2:
        logger.setLevel(logging.DEBUG)
    elif verbosity == 1:
        logger.setLevel(logging.INFO)
    else:
        logger.setLevel(logging.WARNING)


def _obs_setup(args: argparse.Namespace) -> bool:
    """Enable observability when ``--metrics-out`` asks for it.

    Returns whether *this call* enabled it (so the matching
    :func:`_obs_finish` disables it again, but never switches off an
    externally-requested ``REPRO_OBS=1``).
    """
    if getattr(args, "metrics_out", None) and not obs.enabled():
        obs.enable()
        return True
    return False


def _obs_finish(args: argparse.Namespace, enabled_here: bool) -> None:
    """Write ``--metrics-out`` (if requested) and undo :func:`_obs_setup`."""
    path = getattr(args, "metrics_out", None)
    if path:
        registry = obs.active()
        if registry is not None:
            write_metrics(path, registry.snapshot())
            print(f"[obs] wrote metrics to {path}", file=sys.stderr)
    if enabled_here:
        obs.disable()


def _apply_overrides(scenario, args):
    overrides = {}
    if args.bucket_size is not None:
        overrides["bucket_size"] = args.bucket_size
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.staleness is not None:
        overrides["staleness_limit"] = args.staleness
    if args.loss is not None:
        overrides["loss"] = args.loss
    # An explicit --protocol kademlia is the default, not an override: the
    # scenario keeps its plain name (and its pinned golden digests).
    if getattr(args, "protocol", "kademlia") != "kademlia":
        overrides["protocol"] = args.protocol
    return scenario.with_overrides(**overrides) if overrides else scenario


def _estimation_kwargs(args) -> dict:
    """Resolve the --connectivity/--sample-pairs/--ci-level options.

    The sampling parameters are identity-bearing, so passing them without
    selecting estimate mode is a hard error rather than a silent no-op.
    """
    if args.connectivity != "estimate":
        if args.sample_pairs is not None or args.ci_level is not None:
            raise SystemExit(
                "--sample-pairs/--ci-level require --connectivity estimate"
            )
        return {"connectivity": "exact"}
    ci_level = 0.95 if args.ci_level is None else args.ci_level
    if not 0.0 < ci_level < 1.0:
        raise SystemExit(f"--ci-level must be in (0, 1), got {ci_level}")
    return {
        "connectivity": "estimate",
        "sample_pairs": (
            256 if args.sample_pairs is None else args.sample_pairs
        ),
        "ci_level": ci_level,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(_scenario_name(args)), args)
    _warn_schedule_without_cache(args)
    enabled_here = _obs_setup(args)
    cache = _make_cache(args)
    try:
        with _faults_scope(args):
            result = run_scenario(
                scenario, profile=args.profile, seed=args.seed,
                jobs=args.jobs, flow_jobs=args.flow_jobs, cache=cache,
                progress=_make_progress(args),
                schedule=args.schedule, adaptive_shards=args.adaptive_shards,
                batch=args.batch, retry_policy=_make_retry_policy(args),
                backend=args.backend, **_estimation_kwargs(args),
            )
        _report_cache_stats(cache)
    finally:
        _obs_finish(args, enabled_here)
    print(format_summaries([result]))
    print()
    rows = result.series.to_rows()
    print(render_series_table(
        [row["time"] for row in rows],
        {
            "Min": [row["min"] for row in rows],
            "Avg": [row["avg"] for row in rows],
            "Network size": [row["network_size"] for row in rows],
        },
    ))
    return 0


def _cmd_sweep_k(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(_scenario_name(args)), args)
    _warn_schedule_without_cache(args)
    enabled_here = _obs_setup(args)
    cache = _make_cache(args)
    try:
        with _faults_scope(args):
            results = run_bucket_size_sweep(
                scenario, bucket_sizes=args.k, profile=args.profile,
                seed=args.seed,
                jobs=args.jobs, flow_jobs=args.flow_jobs, cache=cache,
                progress=_make_progress(args),
                schedule=args.schedule, adaptive_shards=args.adaptive_shards,
                batch=args.batch, retry_policy=_make_retry_policy(args),
                backend=args.backend, **_estimation_kwargs(args),
            )
        _report_cache_stats(cache)
    finally:
        _obs_finish(args, enabled_here)
    print(format_figure(results, f"Scenario {scenario.name}: bucket-size sweep"))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    _warn_schedule_without_cache(args)
    enabled_here = _obs_setup(args)
    cache = _make_cache(args)
    # One batch across all four scenarios so --jobs parallelises the whole
    # E-H x k grid through a single process pool.
    bases = [get_scenario(name) for name in ("E", "F", "G", "H")]
    if args.protocol != "kademlia":
        bases = [base.with_overrides(protocol=args.protocol) for base in bases]
    tasks = [
        task
        for base in bases
        for task in sweep_tasks(
            base,
            [{"bucket_size": k} for k in args.k],
            profile=args.profile, seed=args.seed, flow_jobs=args.flow_jobs,
            adaptive_shards=args.adaptive_shards, **_estimation_kwargs(args),
        )
    ]
    try:
        with _faults_scope(args), Campaign(
            executor=make_executor(args.jobs, backend=args.backend),
            cache=cache,
            progress=_make_progress(args), schedule=args.schedule,
            batch=args.batch, retry_policy=_make_retry_policy(args),
        ) as campaign:
            results = campaign.run(tasks)
        _report_cache_stats(cache)
    finally:
        _obs_finish(args, enabled_here)
    print(format_table2(results))
    return 0


def _cmd_obs_summary(args: argparse.Namespace) -> int:
    """Run one scenario fully instrumented and print the metrics summary.

    Enables :mod:`repro.obs` for the run (regardless of ``REPRO_OBS``),
    optionally writes the JSONL trace (``--trace-out``) and the metrics
    JSON (``--metrics-out``), and prints the human-readable summary to
    stdout.  The simulation results themselves are bit-identical to an
    uninstrumented run and still populate ``--cache-dir`` normally.
    """
    scenario = _apply_overrides(get_scenario(_scenario_name(args)), args)
    _warn_schedule_without_cache(args)
    was_enabled = obs.enabled()
    obs.enable()
    if args.trace_out:
        tracing.configure_tracer(args.trace_out)
    cache = _make_cache(args)
    try:
        with _faults_scope(args):
            run_scenario(
                scenario, profile=args.profile, seed=args.seed,
                jobs=args.jobs, flow_jobs=args.flow_jobs, cache=cache,
                progress=_make_progress(args),
                schedule=args.schedule, adaptive_shards=args.adaptive_shards,
                batch=args.batch, retry_policy=_make_retry_policy(args),
                backend=args.backend, **_estimation_kwargs(args),
            )
        _report_cache_stats(cache)
        registry = obs.active()
        snapshot = registry.snapshot() if registry is not None else {}
        print(format_summary(snapshot))
        if args.metrics_out:
            write_metrics(args.metrics_out, snapshot)
            print(f"[obs] wrote metrics to {args.metrics_out}",
                  file=sys.stderr)
        if args.trace_out:
            print(f"[obs] wrote trace to {args.trace_out}", file=sys.stderr)
    finally:
        if args.trace_out:
            tracing.reset_tracer()
        if not was_enabled:
            obs.disable()
    return 0


def _cmd_cache_info(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    info = cache.info()
    exists = cache.directory.is_dir()
    print(f"cache directory: {info.path}" + ("" if exists else " (does not exist)"))
    print(f"entries:         {info.entries}")
    print(f"total bytes:     {info.total_bytes}")
    print(f"evictions:       {info.evictions}")
    print(f"stores dropped:  {info.stores_dropped}")
    print(f"corrupt entries: {info.corrupt_entries}")
    print(f"hits:            {info.hits}")
    print(f"misses:          {info.misses}")
    print(f"hit rate:        {info.hit_rate:.0%}")
    print(f"bytes served:    {info.bytes_served}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if not cache.directory.is_dir():
        print(
            f"error: cache directory {args.cache_dir} does not exist; "
            "nothing to verify",
            file=sys.stderr,
        )
        raise SystemExit(2)
    report = cache.verify(repair=not args.no_repair)
    print(f"cache directory: {report.path}")
    print(f"entries checked: {report.checked}")
    print(f"ok:              {report.ok}")
    print(f"legacy:          {report.legacy}")
    print(f"corrupt:         {report.corrupt}")
    if report.quarantined:
        print(f"quarantined:     {len(report.quarantined)}")
        for name in report.quarantined:
            print(f"  {name}")
    return 0 if report.clean else 1


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    removed = ResultCache(args.cache_dir).clear()
    print(f"removed {removed} cache entries from {args.cache_dir}")
    return 0


def _cmd_cache_prune(args: argparse.Namespace) -> int:
    if args.max_bytes is None:
        # ResultCache.prune() without a cap prunes nothing by design;
        # reaching it from the CLI is always a mistake, so say what to do
        # instead of silently succeeding.
        print(
            "error: this cache has no size cap configured, so there is "
            "nothing to prune to; pass --max-bytes N to evict "
            "least-recently-used entries down to N bytes "
            "(--max-bytes 0 empties the cache)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if args.max_bytes < 0:
        print(f"error: --max-bytes must be >= 0, got {args.max_bytes}",
              file=sys.stderr)
        raise SystemExit(2)
    cache = ResultCache(args.cache_dir)
    if not cache.directory.is_dir():
        print(
            f"error: cache directory {args.cache_dir} does not exist; "
            "nothing to prune",
            file=sys.stderr,
        )
        raise SystemExit(2)
    evicted = cache.prune(max_bytes=args.max_bytes)
    info = cache.info()
    if evicted:
        print(
            f"evicted {evicted} least-recently-used entries from "
            f"{args.cache_dir} ({info.entries} entries, {info.total_bytes} "
            f"bytes remain; cap {args.max_bytes})"
        )
    else:
        print(
            f"nothing evicted: {args.cache_dir} already fits the cap "
            f"({info.entries} entries, {info.total_bytes} bytes "
            f"<= cap {args.max_bytes})"
        )
    return 0


def _cmd_cache_serve(args: argparse.Namespace) -> int:
    try:
        serve_cache(
            args.cache_dir,
            args.host,
            args.port,
            shard_depth=args.shard_depth,
            ready=lambda address: print(
                f"[cache] serving {args.cache_dir} on "
                f"{address[0]}:{address[1]}",
                file=sys.stderr,
            ),
        )
    except KeyboardInterrupt:
        print("[cache] interrupted; shutting down", file=sys.stderr)
    except OSError as error:
        print(f"error: cannot serve cache: {error}", file=sys.stderr)
        raise SystemExit(2)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    try:
        host, port = parse_address(args.connect)
    except ValueError as error:
        print(f"error: invalid --connect address: {error}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return run_worker(
            host,
            port,
            heartbeat_interval=args.heartbeat_interval,
            reconnect_attempts=args.reconnect_attempts,
            idle_timeout=args.idle_timeout,
        )
    except KeyboardInterrupt:
        print("[worker] interrupted; shutting down", file=sys.stderr)
        return 0


def _cmd_analyze_snapshot(args: argparse.Namespace) -> int:
    snapshot = RoutingTableSnapshot.load(args.snapshot)
    estimate_mode = getattr(args, "connectivity", "exact") == "estimate"
    if not estimate_mode and (
        args.sample_pairs is not None or args.ci_level is not None
    ):
        raise SystemExit(
            "--sample-pairs/--ci-level require --connectivity estimate"
        )
    if args.exact and estimate_mode:
        raise SystemExit("--exact and --connectivity estimate are exclusive")
    if estimate_mode:
        from repro.core.estimation import ConnectivityEstimator

        estimator = ConnectivityEstimator(
            sample_pairs=(
                256 if args.sample_pairs is None else args.sample_pairs
            ),
            ci_level=0.95 if args.ci_level is None else args.ci_level,
            seed=args.seed,
            algorithm=args.algorithm,
            flow_jobs=args.flow_jobs,
        )
        with estimator:
            report = estimator.analyze_snapshot(snapshot.routing_tables)
    else:
        analyzer = ConnectivityAnalyzer(
            algorithm=args.algorithm,
            source_fraction=None if args.exact else args.sample_fraction,
            target_fraction=args.sample_fraction,
            flow_jobs=args.flow_jobs,
        )
        with analyzer:
            report = analyzer.analyze_snapshot(snapshot.routing_tables)
    print(f"snapshot time:        {snapshot.time}")
    print(f"network size:         {snapshot.network_size}")
    print(f"minimum connectivity: {report.min_connectivity}")
    print(f"average connectivity: {report.avg_connectivity:.2f}")
    print(f"resilience r:         {report.resilience}")
    print(f"strongly connected:   {report.strongly_connected}")
    print(f"disconnected nodes:   {report.disconnected_count}")
    print(f"symmetry ratio:       {report.symmetry_ratio:.3f}")
    if estimate_mode:
        low, high = report.confidence_interval
        level = int(round(report.ci_level * 100))
        print(f"{level}% CI of average:   [{low:.2f}, {high:.2f}]")
        print(f"pairs sampled:        {report.pairs_sampled}")
        print(f"pairs pruned:         {report.pairs_pruned}")
        print(f"minimum is exact:     {report.min_is_exact}")
    return 0


def _cmd_export_dimacs(args: argparse.Namespace) -> int:
    snapshot = RoutingTableSnapshot.load(args.snapshot)
    graph = snapshot.to_connectivity_graph()
    transformed = even_transform(graph).graph
    write_dimacs(
        transformed,
        args.output,
        comment=f"Even-transformed connectivity graph, t={snapshot.time}",
    )
    print(
        f"wrote {transformed.number_of_vertices()} vertices / "
        f"{transformed.number_of_edges()} arcs to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-kademlia",
        description="Kademlia connection-resilience reproduction toolkit",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help=(
            "increase diagnostic logging on stderr (-v: INFO with cache "
            "prunes and pool lifecycle, -vv: DEBUG); stdout is unaffected"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one scenario (A-L)")
    _add_scenario_argument(run_parser)
    _add_common_run_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser("sweep-k", help="bucket-size sweep of a scenario")
    _add_scenario_argument(sweep_parser)
    sweep_parser.add_argument(
        "--k", type=int, nargs="+", default=list(PAPER_BUCKET_SIZES),
        help="bucket sizes to sweep",
    )
    _add_common_run_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep_k)

    table1_parser = subparsers.add_parser("table1", help="print Table 1 (loss scenarios)")
    table1_parser.set_defaults(func=_cmd_table1)

    table2_parser = subparsers.add_parser(
        "table2", help="reproduce Table 2 (mean/RV of min connectivity)"
    )
    table2_parser.add_argument(
        "--k", type=int, nargs="+", default=list(PAPER_BUCKET_SIZES),
        help="bucket sizes to include",
    )
    _add_common_run_options(table2_parser)
    table2_parser.set_defaults(func=_cmd_table2)

    analyze_parser = subparsers.add_parser(
        "analyze-snapshot", help="analyze a routing-table snapshot JSON file"
    )
    analyze_parser.add_argument("snapshot", help="path to a snapshot JSON file")
    analyze_parser.add_argument(
        "--exact", action="store_true", help="exact (all-pairs) connectivity"
    )
    analyze_parser.add_argument(
        "--sample-fraction", type=float, default=0.05,
        help="source/target sampling fraction (ignored with --exact)",
    )
    analyze_parser.add_argument(
        "--algorithm", default="dinic",
        choices=["dinic", "edmonds_karp", "push_relabel"],
        help="max-flow algorithm for the pair-flow engine (default: dinic)",
    )
    analyze_parser.add_argument(
        "--flow-jobs", type=_positive_int, default=1,
        help="worker processes for the pair-flow engine (default: 1)",
    )
    analyze_parser.add_argument(
        "--connectivity", default="exact", choices=["exact", "estimate"],
        help=(
            "measurement mode: 'exact' (default) or 'estimate' "
            "(sampled-pair estimation with confidence intervals — the "
            "only feasible mode beyond ~10^4 nodes)"
        ),
    )
    analyze_parser.add_argument(
        "--sample-pairs", type=_positive_int, default=None, metavar="N",
        help=(
            "estimate mode: ordered-pair budget (default: 256); requires "
            "--connectivity estimate"
        ),
    )
    analyze_parser.add_argument(
        "--ci-level", type=float, default=None, metavar="LEVEL",
        help=(
            "estimate mode: confidence level in (0,1) (default: 0.95); "
            "requires --connectivity estimate"
        ),
    )
    analyze_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed of the estimate-mode sampling stream (default: 0)",
    )
    analyze_parser.set_defaults(func=_cmd_analyze_snapshot)

    dimacs_parser = subparsers.add_parser(
        "export-dimacs",
        help="export a snapshot's Even-transformed graph in DIMACS format",
    )
    dimacs_parser.add_argument("snapshot", help="path to a snapshot JSON file")
    dimacs_parser.add_argument("output", help="output DIMACS file path")
    dimacs_parser.set_defaults(func=_cmd_export_dimacs)

    obs_parser = subparsers.add_parser(
        "obs", help="observability: metrics summaries of instrumented runs"
    )
    obs_subparsers = obs_parser.add_subparsers(dest="obs_command", required=True)
    obs_summary_parser = obs_subparsers.add_parser(
        "summary",
        help=(
            "run one scenario with REPRO_OBS-style instrumentation on and "
            "print the metrics summary (cache hit rate, worker "
            "utilisation, events/sec, lookup latency)"
        ),
    )
    _add_scenario_argument(obs_summary_parser)
    _add_common_run_options(obs_summary_parser)
    obs_summary_parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=(
            "also write a span-per-line JSONL trace of the run "
            "(task/batch/shard/snapshot records with parent ids) to FILE"
        ),
    )
    obs_summary_parser.set_defaults(func=_cmd_obs_summary)

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear a result cache directory"
    )
    cache_subparsers = cache_parser.add_subparsers(dest="cache_command", required=True)

    cache_info_parser = cache_subparsers.add_parser(
        "info", help="print entry count and size of a cache directory"
    )
    cache_info_parser.add_argument(
        "--cache-dir", required=True, help="result cache directory"
    )
    cache_info_parser.set_defaults(func=_cmd_cache_info)

    cache_verify_parser = cache_subparsers.add_parser(
        "verify",
        help=(
            "verify the sha256 payload checksums of every cache entry; "
            "corrupt entries are quarantined (exit 1 when any are found)"
        ),
    )
    cache_verify_parser.add_argument(
        "--cache-dir", required=True, help="result cache directory"
    )
    cache_verify_parser.add_argument(
        "--no-repair", action="store_true",
        help="report corrupt entries without moving them to quarantine/",
    )
    cache_verify_parser.set_defaults(func=_cmd_cache_verify)

    cache_clear_parser = cache_subparsers.add_parser(
        "clear", help="remove every entry of a cache directory"
    )
    cache_clear_parser.add_argument(
        "--cache-dir", required=True, help="result cache directory"
    )
    cache_clear_parser.set_defaults(func=_cmd_cache_clear)

    cache_prune_parser = cache_subparsers.add_parser(
        "prune",
        help="evict least-recently-used entries until the cache fits a size cap",
    )
    cache_prune_parser.add_argument(
        "--cache-dir", required=True, help="result cache directory"
    )
    cache_prune_parser.add_argument(
        "--max-bytes", type=int, default=None,
        help=(
            "target size cap in bytes (0 empties the cache); required — "
            "omitting it means the cache is uncapped and there is nothing "
            "to prune to"
        ),
    )
    cache_prune_parser.set_defaults(func=_cmd_cache_prune)

    cache_serve_parser = cache_subparsers.add_parser(
        "serve",
        help=(
            "serve a cache directory as a shared tier over TCP for "
            "--shared-cache clients (blocking; checksum-verified reads "
            "and writes, concurrent-writer safe)"
        ),
    )
    cache_serve_parser.add_argument(
        "--cache-dir", required=True, help="result cache directory to serve"
    )
    cache_serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    cache_serve_parser.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = pick an ephemeral port)",
    )
    cache_serve_parser.add_argument(
        "--shard-depth", type=int, default=0, choices=range(0, 9),
        metavar="N",
        help=(
            "spread entries over 16^N fingerprint-prefix subdirectories "
            "(0-8, default: 0 = flat layout; existing flat entries stay "
            "readable)"
        ),
    )
    cache_serve_parser.set_defaults(func=_cmd_cache_serve)

    worker_parser = subparsers.add_parser(
        "worker",
        help=(
            "join a distributed campaign: execute leased task batches "
            "from a --backend distributed coordinator"
        ),
    )
    worker_parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address to connect to",
    )
    worker_parser.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help=(
            "liveness heartbeat period (default: the interval the "
            "coordinator advertises in its welcome frame)"
        ),
    )
    worker_parser.add_argument(
        "--reconnect-attempts", type=_positive_int, default=8, metavar="N",
        help=(
            "consecutive failed connection attempts before giving up "
            "(reset after any successful session; default: 8)"
        ),
    )
    worker_parser.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="SECONDS",
        help=(
            "exit if the coordinator link stays silent this long "
            "(default: 300)"
        ),
    )
    worker_parser.set_defaults(func=_cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
