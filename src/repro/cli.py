"""Command-line interface.

Subcommands:

``run``
    Run one of the paper's scenarios (A–L) and print its summary and
    connectivity time series.

``sweep-k``
    Run a scenario once per bucket size and print the figure-style series
    (the k-sweep of Figures 2–9).

``table1`` / ``table2``
    Print the reproduced Table 1 (definitional) and Table 2 (from fresh
    Simulations E–H runs).

``analyze-snapshot``
    Analyze a routing-table snapshot JSON file: connectivity, resilience.

``export-dimacs``
    Convert a snapshot JSON file into the DIMACS max-flow format of its
    Even-transformed connectivity graph (the paper's HIPR input format).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.analyzer import ConnectivityAnalyzer
from repro.experiments.profiles import PROFILES
from repro.experiments.report import (
    format_figure,
    format_summaries,
    format_table1,
    format_table2,
)
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.experiments.sweep import run_bucket_size_sweep
from repro.graph.io.dimacs import write_dimacs
from repro.graph.transform.even_transform import even_transform
from repro.analysis.figures import render_series_table


def _add_common_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default="bench", choices=sorted(PROFILES),
        help="scale profile (default: bench; 'paper' uses the original sizes)",
    )
    parser.add_argument("--seed", type=int, default=42, help="root random seed")
    parser.add_argument(
        "--bucket-size", type=int, default=None,
        help="override the Kademlia bucket size k",
    )
    parser.add_argument(
        "--alpha", type=int, default=None, help="override the request parallelism"
    )
    parser.add_argument(
        "--staleness", type=int, default=None, help="override the staleness limit s"
    )
    parser.add_argument(
        "--loss", default=None, choices=["none", "low", "medium", "high"],
        help="override the message loss scenario",
    )


def _apply_overrides(scenario, args):
    overrides = {}
    if args.bucket_size is not None:
        overrides["bucket_size"] = args.bucket_size
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.staleness is not None:
        overrides["staleness_limit"] = args.staleness
    if args.loss is not None:
        overrides["loss"] = args.loss
    return scenario.with_overrides(**overrides) if overrides else scenario


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    runner = ExperimentRunner(profile=args.profile, seed=args.seed)
    result = runner.run(scenario)
    print(format_summaries([result]))
    print()
    rows = result.series.to_rows()
    print(render_series_table(
        [row["time"] for row in rows],
        {
            "Min": [row["min"] for row in rows],
            "Avg": [row["avg"] for row in rows],
            "Network size": [row["network_size"] for row in rows],
        },
    ))
    return 0


def _cmd_sweep_k(args: argparse.Namespace) -> int:
    scenario = _apply_overrides(get_scenario(args.scenario), args)
    results = run_bucket_size_sweep(
        scenario, bucket_sizes=args.k, profile=args.profile, seed=args.seed
    )
    print(format_figure(results, f"Scenario {scenario.name}: bucket-size sweep"))
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    runner = ExperimentRunner(profile=args.profile, seed=args.seed)
    results = []
    for name in ("E", "F", "G", "H"):
        base = get_scenario(name)
        for k in args.k:
            results.append(runner.run(base.with_overrides(bucket_size=k)))
    print(format_table2(results))
    return 0


def _cmd_analyze_snapshot(args: argparse.Namespace) -> int:
    snapshot = RoutingTableSnapshot.load(args.snapshot)
    analyzer = ConnectivityAnalyzer(
        source_fraction=None if args.exact else args.sample_fraction,
        target_fraction=args.sample_fraction,
    )
    report = analyzer.analyze_snapshot(snapshot.routing_tables)
    print(f"snapshot time:        {snapshot.time}")
    print(f"network size:         {snapshot.network_size}")
    print(f"minimum connectivity: {report.minimum}")
    print(f"average connectivity: {report.average:.2f}")
    print(f"resilience r:         {report.resilience}")
    print(f"strongly connected:   {report.strongly_connected}")
    print(f"disconnected nodes:   {report.disconnected_count}")
    print(f"symmetry ratio:       {report.symmetry_ratio:.3f}")
    return 0


def _cmd_export_dimacs(args: argparse.Namespace) -> int:
    snapshot = RoutingTableSnapshot.load(args.snapshot)
    graph = snapshot.to_connectivity_graph()
    transformed = even_transform(graph).graph
    write_dimacs(
        transformed,
        args.output,
        comment=f"Even-transformed connectivity graph, t={snapshot.time}",
    )
    print(
        f"wrote {transformed.number_of_vertices()} vertices / "
        f"{transformed.number_of_edges()} arcs to {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the CLI tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-kademlia",
        description="Kademlia connection-resilience reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="run one scenario (A-L)")
    run_parser.add_argument("scenario", help="scenario name, e.g. E")
    _add_common_run_options(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    sweep_parser = subparsers.add_parser("sweep-k", help="bucket-size sweep of a scenario")
    sweep_parser.add_argument("scenario", help="scenario name, e.g. E")
    sweep_parser.add_argument(
        "--k", type=int, nargs="+", default=list(PAPER_BUCKET_SIZES),
        help="bucket sizes to sweep",
    )
    _add_common_run_options(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep_k)

    table1_parser = subparsers.add_parser("table1", help="print Table 1 (loss scenarios)")
    table1_parser.set_defaults(func=_cmd_table1)

    table2_parser = subparsers.add_parser(
        "table2", help="reproduce Table 2 (mean/RV of min connectivity)"
    )
    table2_parser.add_argument(
        "--k", type=int, nargs="+", default=list(PAPER_BUCKET_SIZES),
        help="bucket sizes to include",
    )
    _add_common_run_options(table2_parser)
    table2_parser.set_defaults(func=_cmd_table2)

    analyze_parser = subparsers.add_parser(
        "analyze-snapshot", help="analyze a routing-table snapshot JSON file"
    )
    analyze_parser.add_argument("snapshot", help="path to a snapshot JSON file")
    analyze_parser.add_argument(
        "--exact", action="store_true", help="exact (all-pairs) connectivity"
    )
    analyze_parser.add_argument(
        "--sample-fraction", type=float, default=0.05,
        help="source/target sampling fraction (ignored with --exact)",
    )
    analyze_parser.set_defaults(func=_cmd_analyze_snapshot)

    dimacs_parser = subparsers.add_parser(
        "export-dimacs",
        help="export a snapshot's Even-transformed graph in DIMACS format",
    )
    dimacs_parser.add_argument("snapshot", help="path to a snapshot JSON file")
    dimacs_parser.add_argument("output", help="output DIMACS file path")
    dimacs_parser.set_defaults(func=_cmd_export_dimacs)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
