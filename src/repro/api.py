"""Stable public API of the reproduction toolkit.

``repro.api`` is the one import surface external callers (and the
``examples/`` directory) should use.  Everything else under ``repro.*``
is internal: modules move, signatures grow identity-free knobs, and the
runtime layers get refactored between releases — this facade absorbs
those changes.

Five entry points cover the common workflows:

``run_scenario`` / ``run_sweep``
    Run one scenario, or a sweep of parameter overrides, through the
    cached/parallel experiment runtime.  All scheduling and backend
    knobs are keyword-only.
``analyze_snapshot``
    Connectivity + resilience of a routing-table snapshot (a
    :class:`RoutingTableSnapshot` or a path to one), in exact or
    estimate mode.
``estimate_connectivity``
    Sampled-pair connectivity estimation (average with a deterministic
    confidence interval, branch-and-bound minimum bound) of a snapshot,
    a routing-table mapping, or an already-built connectivity graph —
    the only feasible mode beyond ~10^4 nodes.
``open_campaign``
    A configured :class:`repro.runtime.campaign.Campaign` as a context
    manager, for callers that build their own task lists.

The curated re-exports below (scenarios, profiles, result/report types,
analysis helpers, simulation primitives) are part of the same stability
contract; import them from here rather than their defining modules.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Mapping, Optional, Sequence, Union

# -- curated re-exports (stable surface) -------------------------------
from repro.analysis.figures import format_table
from repro.experiments.report import format_figure, format_summaries
from repro.churn.churn_model import get_churn_scenario
from repro.churn.loss import get_loss_model
from repro.churn.traffic import TrafficModel
from repro.core.analyzer import ConnectivityAnalyzer, ConnectivityReport
from repro.core.estimation import (
    ConnectivityEstimator,
    EstimatedConnectivityReport,
    EstimateValidation,
    validate_exact_vs_estimate,
)
from repro.core.resilience import ResilienceModel, resilience_of
from repro.experiments.profiles import PROFILES, ScaleProfile, get_profile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import SCENARIOS, Scenario, get_scenario
from repro.experiments.simulation import KademliaSimulation
from repro.experiments.snapshot import RoutingTableSnapshot, synthetic_snapshot
from repro.experiments import sweep as _sweep
from repro.experiments.sweep import (
    run_alpha_sweep,
    run_bucket_size_sweep,
    run_loss_sweep,
    run_staleness_sweep,
)
from repro.extensions.evaluation import (
    disjoint_path_study,
    hardening_study,
    hardening_summary,
)
from repro.extensions.hardening import HardeningConfig
from repro.graph.algorithms.paths import vertex_disjoint_paths
from repro.graph.digraph import DiGraph
from repro.kademlia.config import KademliaConfig
from repro.runtime.cache import ResultCache
from repro.runtime.campaign import Campaign
from repro.runtime.executor import make_executor
from repro.runtime.resilience import RetryPolicy
from repro.simulator.random_source import RandomSource

__all__ = [
    # entry points
    "run_scenario",
    "run_sweep",
    "analyze_snapshot",
    "estimate_connectivity",
    "open_campaign",
    # scenarios / profiles
    "Scenario",
    "get_scenario",
    "SCENARIOS",
    "ScaleProfile",
    "get_profile",
    "PROFILES",
    # results / reports
    "ExperimentResult",
    "ConnectivityReport",
    "EstimatedConnectivityReport",
    "EstimateValidation",
    "validate_exact_vs_estimate",
    # analysis helpers
    "format_figure",
    "format_summaries",
    "format_table",
    "ResilienceModel",
    "resilience_of",
    "vertex_disjoint_paths",
    # named sweeps
    "run_bucket_size_sweep",
    "run_alpha_sweep",
    "run_staleness_sweep",
    "run_loss_sweep",
    # extension studies
    "HardeningConfig",
    "hardening_study",
    "hardening_summary",
    "disjoint_path_study",
    # snapshots / graphs / measurement objects
    "RoutingTableSnapshot",
    "synthetic_snapshot",
    "DiGraph",
    "ConnectivityAnalyzer",
    "ConnectivityEstimator",
    "ExperimentRunner",
    # simulation primitives (quickstart-level control)
    "KademliaConfig",
    "KademliaSimulation",
    "TrafficModel",
    "get_churn_scenario",
    "get_loss_model",
    "RandomSource",
    # runtime building blocks for open_campaign callers
    "Campaign",
    "ResultCache",
    "RetryPolicy",
]


def _resolve_scenario(scenario: Union[Scenario, str]) -> Scenario:
    return get_scenario(scenario) if isinstance(scenario, str) else scenario


def run_scenario(
    scenario: Union[Scenario, str],
    *,
    profile: Union[ScaleProfile, str] = "bench",
    seed: int = 42,
    algorithm: str = "dinic",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
    keep_snapshots: bool = False,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    schedule: str = "fifo",
    adaptive_shards: bool = False,
    batch: Union[None, str, int] = None,
    backend: str = "local",
    progress=None,
) -> ExperimentResult:
    """Run one scenario end-to-end and return its result.

    ``scenario`` is a scenario name (``"A"``–``"L"``) or a
    :class:`Scenario`.  ``connectivity`` selects exact or sampled-pair
    estimated per-snapshot measurement (identity-bearing, parameterised
    by ``sample_pairs`` / ``ci_level``).  Everything after ``seed`` is
    keyword-only; the scheduling/backend knobs (``jobs``, ``flow_jobs``,
    ``schedule``, ``adaptive_shards``, ``batch``, ``backend``) are
    identity-free — any combination returns bit-identical results.
    ``cache_dir`` enables the content-addressed result cache.
    """
    return _sweep.run_scenario(
        _resolve_scenario(scenario),
        profile=profile,
        seed=seed,
        algorithm=algorithm,
        jobs=jobs,
        flow_jobs=flow_jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        progress=progress,
        schedule=schedule,
        adaptive_shards=adaptive_shards,
        batch=batch,
        backend=backend,
        keep_snapshots=keep_snapshots,
        connectivity=connectivity,
        sample_pairs=sample_pairs,
        ci_level=ci_level,
    )


def run_sweep(
    scenario: Union[Scenario, str],
    overrides: Iterable[Mapping[str, object]],
    *,
    profile: Union[ScaleProfile, str] = "bench",
    seed: int = 42,
    algorithm: str = "dinic",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
    keep_snapshots: bool = False,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    schedule: str = "fifo",
    adaptive_shards: bool = False,
    batch: Union[None, str, int] = None,
    backend: str = "local",
    progress=None,
) -> List[ExperimentResult]:
    """Run one variant of ``scenario`` per override mapping.

    The generic sweep: ``overrides`` is an iterable of scenario-field
    mappings (e.g. ``[{"bucket_size": 8}, {"bucket_size": 16}]``) and
    results come back in override order.  For the paper's named sweeps
    use :func:`run_bucket_size_sweep` and friends, which key their
    return values by the swept parameter.  Knob semantics match
    :func:`run_scenario`.
    """
    return _sweep.run_sweep(
        _resolve_scenario(scenario),
        overrides,
        profile=profile,
        seed=seed,
        algorithm=algorithm,
        jobs=jobs,
        flow_jobs=flow_jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        progress=progress,
        schedule=schedule,
        adaptive_shards=adaptive_shards,
        batch=batch,
        backend=backend,
        keep_snapshots=keep_snapshots,
        connectivity=connectivity,
        sample_pairs=sample_pairs,
        ci_level=ci_level,
    )


def analyze_snapshot(
    snapshot: Union[RoutingTableSnapshot, str, Path],
    *,
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
    sample_fraction: Optional[float] = None,
    seed: int = 0,
    algorithm: str = "dinic",
    flow_jobs: int = 1,
):
    """Analyze a routing-table snapshot's connectivity and resilience.

    ``snapshot`` is a :class:`RoutingTableSnapshot` or a path to one
    saved as JSON.  ``connectivity="exact"`` runs the paper's pipeline —
    all pairs when ``sample_fraction`` is None, else the ``c * n``
    source/target sampling — and returns a :class:`ConnectivityReport`;
    ``"estimate"`` runs the sampled-pair estimator and returns an
    :class:`EstimatedConnectivityReport`.  Both satisfy the shared
    report protocol (``min_connectivity`` / ``avg_connectivity`` /
    ``is_exact`` / ``confidence_interval``).
    """
    if not isinstance(snapshot, RoutingTableSnapshot):
        snapshot = RoutingTableSnapshot.load(snapshot)
    if connectivity == "estimate":
        estimator = ConnectivityEstimator(
            sample_pairs=sample_pairs,
            ci_level=ci_level,
            seed=seed,
            algorithm=algorithm,
            flow_jobs=flow_jobs,
        )
        with estimator:
            return estimator.analyze_snapshot(snapshot.routing_tables)
    if connectivity != "exact":
        raise ValueError(
            f"connectivity must be 'exact' or 'estimate', got {connectivity!r}"
        )
    analyzer = ConnectivityAnalyzer(
        algorithm=algorithm,
        source_fraction=sample_fraction,
        target_fraction=sample_fraction if sample_fraction else 0.05,
        seed=seed,
        flow_jobs=flow_jobs,
    )
    with analyzer:
        return analyzer.analyze_snapshot(snapshot.routing_tables)


def estimate_connectivity(
    source: Union[RoutingTableSnapshot, DiGraph, Mapping[int, Sequence[int]]],
    *,
    sample_pairs: int = 256,
    ci_level: float = 0.95,
    seed: int = 0,
    algorithm: str = "dinic",
    flow_jobs: int = 1,
    adaptive_shards: bool = False,
) -> EstimatedConnectivityReport:
    """Estimate the connectivity of a snapshot, table mapping, or graph.

    The deployment-scale entry point: a stratified sample of ordered
    vertex pairs is evaluated exactly through the batched pair-flow
    engine, the average is reported with a seeded deterministic
    confidence interval at ``ci_level``, and the minimum is bounded by
    an ascending-degree-bound branch-and-bound pass (see
    :mod:`repro.core.estimation`).  ``flow_jobs`` / ``adaptive_shards``
    are identity-free: any setting returns the same bits.
    """
    estimator = ConnectivityEstimator(
        sample_pairs=sample_pairs,
        ci_level=ci_level,
        seed=seed,
        algorithm=algorithm,
        flow_jobs=flow_jobs,
        adaptive_shards=adaptive_shards,
    )
    with estimator:
        if isinstance(source, DiGraph):
            return estimator.analyze_graph(source)
        if isinstance(source, RoutingTableSnapshot):
            return estimator.analyze_snapshot(source.routing_tables)
        return estimator.analyze_snapshot(source)


def open_campaign(
    *,
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    schedule: str = "fifo",
    batch: Union[None, str, int] = None,
    backend: str = "local",
    retry_policy: Optional[RetryPolicy] = None,
    progress=None,
) -> Campaign:
    """Build a configured :class:`Campaign` (use as a context manager).

    For callers that assemble their own :class:`ExperimentTask` lists
    (e.g. cross-scenario grids).  The campaign owns its executor and, on
    exit, its worker pools::

        with open_campaign(jobs=4, cache_dir=".cache") as campaign:
            results = campaign.run(tasks)
    """
    return Campaign(
        executor=make_executor(jobs, backend=backend),
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        progress=progress,
        schedule=schedule,
        batch=batch,
        retry_policy=retry_policy,
    )
