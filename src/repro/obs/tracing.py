"""Lightweight span-style tracing with JSONL export.

One record per traced unit of work — campaign, task, batch, experiment
run, snapshot, pair-flow evaluation, shard — appended as a single JSON
line to the file named by ``REPRO_OBS_TRACE`` (or
:func:`configure_tracer`).  Records carry span/parent ids so a trace can
be reassembled into a tree:

``{"name": ..., "id": "<pid>-<n>", "parent": ... | null, "pid": ...,``
``"t": <epoch seconds>, "dur": <seconds, spans only>, "attrs": {...}}``

Parenting is per process and per thread: a :meth:`Tracer.span` pushed on
the thread-local stack becomes the parent of every span/point opened
beneath it.  Worker processes append to the same file (ids embed the
pid, so they never collide); cross-process linkage is by *attributes* —
a worker-side ``experiment.run`` span carries the scenario/profile/seed
that identify its campaign-side ``task`` point — not by parent ids.

Virtual time rides in the attributes: snapshot points record the
simulated time ``vt`` at which they were taken, so a trace interleaves
wall-clock duration with virtual-time position.

Like the metrics registry, tracing is identity-free: it only ever
*writes* to a sidecar file and never feeds anything back into the
simulation.  When no tracer is configured, :func:`span` returns a
shared no-op context manager and :func:`point` returns immediately —
no allocations.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional, TextIO

#: Environment variable naming the JSONL trace file (unset = tracing off).
ENV_VAR = "REPRO_OBS_TRACE"


class Span:
    """One open span; a context manager that writes its record on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "attrs", "_started")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = tracer._new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._started = 0.0

    def __enter__(self) -> "Span":
        self._started = time.time()
        self._tracer._push(self)
        return self

    def __exit__(self, *_exc_info) -> None:
        self._tracer._pop(self)
        self._tracer._write(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "pid": os.getpid(),
                "t": self._started,
                "dur": time.time() - self._started,
                "attrs": self.attrs,
            }
        )


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Appends span/point records to one JSONL file.

    The file is opened lazily (first record) in append mode, one
    ``json.dumps`` line per record, flushed per write — short lines stay
    atomic enough for several worker processes appending to the same
    trace in practice, and a reader only ever sees whole lines plus at
    most one partial tail.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file: Optional[TextIO] = None
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _new_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"{os.getpid():x}-{self._next_id:x}"

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span on this thread (None at top level)."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Open a span parented to the innermost span on this thread."""
        return Span(self, name, self.current_span_id(), attrs)

    def point(self, name: str, **attrs: Any) -> None:
        """Write a zero-duration record (one task / batch / shard / snapshot)."""
        self._write(
            {
                "name": name,
                "id": self._new_id(),
                "parent": self.current_span_id(),
                "pid": os.getpid(),
                "t": time.time(),
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    def _write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            if self._file is None:
                try:
                    self._file = open(self.path, "a", encoding="utf-8")
                except OSError:
                    return  # tracing is best-effort; never fail the run
            try:
                self._file.write(line)
                self._file.flush()
            except OSError:  # pragma: no cover - disk full etc.
                pass

    def close(self) -> None:
        """Close the trace file (idempotent)."""
        with self._lock:
            file, self._file = self._file, None
            if file is not None:
                file.close()


#: Process tracer (None = tracing off).  Created at import time from the
#: environment so worker processes trace without extra plumbing.
_TRACER: Optional[Tracer] = (
    Tracer(os.environ[ENV_VAR]) if os.environ.get(ENV_VAR) else None
)
_ENV_EXPORTED = False


def active_tracer() -> Optional[Tracer]:
    """The process tracer, or None when tracing is off."""
    return _TRACER


def configure_tracer(path: str) -> Tracer:
    """Enable tracing to ``path`` and export it to worker processes."""
    global _TRACER, _ENV_EXPORTED
    if _TRACER is not None:
        _TRACER.close()
    _TRACER = Tracer(str(path))
    if os.environ.get(ENV_VAR) != str(path):
        os.environ[ENV_VAR] = str(path)
        _ENV_EXPORTED = True
    return _TRACER


def reset_tracer() -> None:
    """Reset tracing to what the environment says (tests/CLI teardown).

    Closes the current tracer, undoes any export made by
    :func:`configure_tracer`, then re-initialises from ``REPRO_OBS_TRACE``
    — exactly the state a freshly spawned process would observe.
    """
    global _TRACER, _ENV_EXPORTED
    if _TRACER is not None:
        _TRACER.close()
    if _ENV_EXPORTED:
        os.environ.pop(ENV_VAR, None)
        _ENV_EXPORTED = False
    _TRACER = Tracer(os.environ[ENV_VAR]) if os.environ.get(ENV_VAR) else None


def span(name: str, **attrs: Any):
    """Module-level convenience: a span, or a shared no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def point(name: str, **attrs: Any) -> None:
    """Module-level convenience: a point record, or nothing when off."""
    tracer = _TRACER
    if tracer is not None:
        tracer.point(name, **attrs)
