"""Process-local metrics: counters, gauges, histograms and timers.

A :class:`MetricsRegistry` is a plain in-memory aggregation structure —
three dicts and no locks — designed around two constraints:

* **zero cost when off** — instrumented call sites hold ``None`` instead
  of a registry when observability is disabled (see :mod:`repro.obs`),
  so the disabled hot path is a single ``is not None`` check and zero
  allocations; nothing in this module is ever imported into a hot loop's
  inner body;
* **identity-free by construction** — a registry only ever *receives*
  values; it owns no RNG, no clock that feeds back into scheduling, and
  nothing here is reachable from task fingerprints or result
  persistence.  Metrics can therefore be attached to any run without
  moving a single simulated bit (gated by the determinism digest suite).

Snapshots (:meth:`MetricsRegistry.snapshot`) are nested plain-JSON dicts
so they can ride on pickled results from worker processes and be merged
into a campaign-level registry (:meth:`MetricsRegistry.merge`).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, Optional


class Histogram:
    """Streaming summary of observed values: count / total / min / max.

    Deliberately not a bucketed histogram: the consumers (the CLI summary,
    the metrics JSON, progress snapshots) want means and extremes, and a
    four-slot accumulator keeps ``observe`` allocation-free.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one value into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 before the first observation)."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form used by snapshots."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Fold a snapshot's histogram dict into this histogram."""
        count = int(data.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(data.get("total", 0.0))
        other_min = data.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = float(other_min)
        other_max = data.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = float(other_max)


class _WallTimer:
    """Context manager observing wall-clock seconds into a histogram."""

    __slots__ = ("_registry", "_name", "_started")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_WallTimer":
        self._started = perf_counter()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._registry.observe(self._name, perf_counter() - self._started)


class _VirtualTimer:
    """Context manager observing a *virtual clock* delta into a histogram.

    The clock callable is typically :meth:`repro.simulator.engine
    .Simulator.clock` — the delta is in simulated minutes, not wall time.
    """

    __slots__ = ("_registry", "_name", "_clock", "_started")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        clock: Callable[[], float],
    ) -> None:
        self._registry = registry
        self._name = name
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "_VirtualTimer":
        self._started = self._clock()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._registry.observe(self._name, self._clock() - self._started)


class MetricsRegistry:
    """Counters, gauges, histograms and timers under dotted metric names.

    Conventions (followed by every instrumented layer):

    * **counters** are monotonically accumulated event counts
      (``cache.hits``, ``sim.events``); merging adds them;
    * **gauges** are point-in-time values of *this* registry's scope
      (``campaign.worker_utilisation``); merging a worker snapshot folds
      its gauges into same-named **histograms** of the target, so a
      campaign sees the distribution of a per-run gauge across tasks;
    * **histograms** summarise repeated observations
      (``kademlia.lookup.virtual_latency``).
    """

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        counters = self._counters
        counters[name] = counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the histogram ``name`` (created empty)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def time(self, name: str) -> _WallTimer:
        """Context manager observing wall-clock seconds into ``name``."""
        return _WallTimer(self, name)

    def time_virtual(
        self, name: str, clock: Callable[[], float]
    ) -> _VirtualTimer:
        """Context manager observing a virtual-clock delta into ``name``."""
        return _VirtualTimer(self, name, clock)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name`` (None when never set)."""
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The histogram ``name`` (None when nothing was observed)."""
        return self._histograms.get(name)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Plain-JSON snapshot of everything recorded so far."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self._histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this registry.

        Counters add, histograms combine, and the snapshot's *gauges*
        become observations of same-named histograms here — a gauge is a
        per-scope value (one task's events/sec), and the merging scope
        wants its distribution, not whichever task merged last.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, int(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge_dict(data)
        for name, value in snapshot.get("gauges", {}).items():
            self.observe(name, float(value))

    def clear(self) -> None:
        """Drop every recorded value (tests)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
