"""``repro.obs`` — zero-cost-when-off metrics and virtual-time tracing.

The observability subsystem used by the runtime (campaign / executor /
cache / pair-flow), the simulator and the Kademlia layer.  Three design
rules govern everything in this package:

* **zero cost when off** — enablement is decided once (the ``REPRO_OBS``
  environment variable, or :func:`enable`); instrumented objects capture
  :func:`active` at construction and hold ``None`` when disabled, so hot
  paths pay one ``is not None`` check and allocate nothing;
* **identity-free by construction** — metrics never enter task
  fingerprints, never perturb RNG draws or event ordering, and never
  reach result persistence; the determinism digest suite passes
  byte-identically with ``REPRO_OBS=1`` (gated in CI);
* **process-local, merged upward** — each experiment run records into a
  fresh per-run registry (:func:`run_scope`); the snapshot rides on the
  (transient) ``ExperimentResult.obs_metrics`` field back to the
  campaign, which merges task snapshots into its own registry.

:func:`enable` also exports ``REPRO_OBS=1`` into the environment so
spawned worker processes observe their half of a parallel campaign.

Span-style tracing (JSONL, one record per task/batch/shard/snapshot)
lives in :mod:`repro.obs.tracing` and is enabled independently through
``REPRO_OBS_TRACE=<path>``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "ENV_VAR",
    "Histogram",
    "MetricsRegistry",
    "active",
    "disable",
    "enable",
    "enabled",
    "run_scope",
]

#: Environment variable gating metrics collection (any value but ``""``
#: and ``"0"`` enables it).  Like every scheduling knob it is excluded
#: from task fingerprints — flipping it can never miss or split a cache.
ENV_VAR = "REPRO_OBS"


def _env_enabled() -> bool:
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0")


#: Root registry of this process (None = observability off).  Created at
#: import time when the environment enables it, so worker processes of a
#: parallel campaign come up instrumented without any extra plumbing.
_ROOT: Optional[MetricsRegistry] = MetricsRegistry() if _env_enabled() else None

#: Stack of per-run scopes pushed by :func:`run_scope`; the innermost one
#: is what instrumented constructors capture while a run is in flight.
_SCOPES: List[MetricsRegistry] = []

#: Whether :func:`enable` exported ``REPRO_OBS=1`` itself (so
#: :func:`disable` knows to remove it again).
_ENV_EXPORTED = False


def enabled() -> bool:
    """Whether metrics collection is on in this process."""
    return _ROOT is not None


def active() -> Optional[MetricsRegistry]:
    """The registry new instrumented objects should record into.

    ``None`` when observability is off — call sites store the result and
    guard every recording with ``is not None`` (the zero-cost-off
    contract).  Inside a :func:`run_scope` this is the per-run registry;
    otherwise the process root.
    """
    if _SCOPES:
        return _SCOPES[-1]
    return _ROOT


def enable() -> MetricsRegistry:
    """Turn metrics collection on and return the process root registry.

    Idempotent.  Also exports ``REPRO_OBS=1`` so worker processes
    spawned from here (campaign pools, pair-flow pools) come up
    instrumented; :func:`disable` removes the export again.
    """
    global _ROOT, _ENV_EXPORTED
    if _ROOT is None:
        _ROOT = MetricsRegistry()
    if not _env_enabled():
        os.environ[ENV_VAR] = "1"
        _ENV_EXPORTED = True
    return _ROOT


def disable() -> None:
    """Turn metrics collection off and drop every registry (tests/CLI)."""
    global _ROOT, _ENV_EXPORTED
    _ROOT = None
    _SCOPES.clear()
    if _ENV_EXPORTED:
        os.environ.pop(ENV_VAR, None)
        _ENV_EXPORTED = False


@contextmanager
def run_scope() -> Iterator[Optional[MetricsRegistry]]:
    """Scope one experiment run to a fresh registry (None when off).

    Everything constructed inside the scope — transport, protocols,
    pair-flow engines — captures the scoped registry through
    :func:`active`, so a warm worker that executes many tasks in one
    process yields cleanly separated per-task metrics.  The caller (the
    experiment runner) snapshots the yielded registry at the end of the
    run and attaches it to the result.
    """
    if active() is None:
        yield None
        return
    registry = MetricsRegistry()
    _SCOPES.append(registry)
    try:
        yield registry
    finally:
        _SCOPES.pop()
