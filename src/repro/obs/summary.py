"""Human-readable summary and JSON export of a metrics snapshot.

Consumes the nested dict produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot`.  Because a campaign
merges per-task snapshots into its own registry (task *gauges* fold into
histograms, see :meth:`MetricsRegistry.merge`), a quantity like
``sim.events_per_sec`` may arrive as a gauge (single run) or as a
histogram (campaign of runs); the accessors below accept either and the
summary reports the mean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Schema tag written into ``--metrics-out`` documents.
METRICS_SCHEMA = "repro-obs-metrics/1"


def _counter(snapshot: Dict[str, Any], name: str) -> int:
    return int(snapshot.get("counters", {}).get(name, 0))


def _value(snapshot: Dict[str, Any], name: str) -> Optional[float]:
    """A gauge value, or the mean of the same-named merged histogram."""
    gauge = snapshot.get("gauges", {}).get(name)
    if gauge is not None:
        return float(gauge)
    histogram = snapshot.get("histograms", {}).get(name)
    if histogram and histogram.get("count"):
        return float(histogram["mean"])
    return None


def _hist(snapshot: Dict[str, Any], name: str) -> Optional[Dict[str, Any]]:
    histogram = snapshot.get("histograms", {}).get(name)
    if histogram and histogram.get("count"):
        return histogram
    return None


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


def format_summary(snapshot: Dict[str, Any]) -> str:
    """Render the per-layer one-liners of ``repro obs summary``.

    Every line is always present (zeros when a layer recorded nothing),
    so scripts can grep for a stable set of labels.
    """
    lines: List[str] = ["repro obs summary", "================="]

    # Runtime: campaign / executor -------------------------------------
    submitted = _counter(snapshot, "campaign.tasks_submitted")
    completed = _counter(snapshot, "campaign.tasks_completed")
    hits = _counter(snapshot, "campaign.cache_hits")
    workers = _value(snapshot, "campaign.workers")
    utilisation = _value(snapshot, "campaign.worker_utilisation")
    sessions = _counter(snapshot, "campaign.sessions_opened")
    batches = _counter(snapshot, "campaign.batches_dispatched")
    lines.append(
        f"campaign   tasks: {submitted} submitted, {completed} run, "
        f"{hits} cache hits | workers: {int(workers) if workers else 1} | "
        f"worker utilisation: {(utilisation or 0.0):.0%} | "
        f"batches: {batches} over {sessions} sessions"
    )

    # Runtime: distributed backend -------------------------------------
    connected = _counter(snapshot, "distributed.workers_connected")
    lost = _counter(snapshot, "distributed.workers_lost")
    respawns = _counter(snapshot, "distributed.worker_respawns")
    assigned = _counter(snapshot, "distributed.leases_assigned")
    reassigned = _counter(snapshot, "distributed.leases_reassigned")
    duplicates = _counter(snapshot, "distributed.duplicate_results")
    lines.append(
        f"distrib    workers: {connected} connected, {lost} lost, "
        f"{respawns} respawned | leases: {assigned} assigned, "
        f"{reassigned} reassigned | duplicate results: {duplicates}"
    )

    # Runtime: result cache --------------------------------------------
    cache_hits = _value(snapshot, "cache.hits") or 0.0
    cache_misses = _value(snapshot, "cache.misses") or 0.0
    bytes_served = _value(snapshot, "cache.bytes_served") or 0.0
    remote_hits = _value(snapshot, "cache.remote_hits") or 0.0
    remote_puts = _value(snapshot, "cache.remote_puts") or 0.0
    lines.append(
        f"cache      hit rate: {_ratio(cache_hits, cache_hits + cache_misses):.0%} "
        f"({int(cache_hits)} hits / {int(cache_misses)} misses) | "
        f"bytes served: {int(bytes_served)} | "
        f"remote: {int(remote_hits)} hits, {int(remote_puts)} puts"
    )

    # Simulator ---------------------------------------------------------
    events = _counter(snapshot, "sim.events")
    events_per_sec = _value(snapshot, "sim.events_per_sec") or 0.0
    heap_live = _value(snapshot, "sim.heap_live") or 0.0
    heap_dead = _value(snapshot, "sim.heap_dead") or 0.0
    compactions = _counter(snapshot, "sim.heap_compactions")
    lines.append(
        f"simulator  events: {events} | events/sec: {events_per_sec:.0f} | "
        f"heap dead ratio: {_ratio(heap_dead, heap_live + heap_dead):.0%} | "
        f"compactions: {compactions}"
    )

    # Transport ---------------------------------------------------------
    ok = _counter(snapshot, "transport.round_trips_ok")
    failed = _counter(snapshot, "transport.round_trips_failed")
    message_counts = sorted(
        (
            (name.rsplit(".", 1)[1], count)
            for name, count in snapshot.get("counters", {}).items()
            if name.startswith("transport.messages.")
        ),
        key=lambda item: (-item[1], item[0]),
    )
    rendered = (
        ", ".join(f"{name}={count}" for name, count in message_counts[:4])
        or "none"
    )
    lines.append(
        f"transport  round-trips: {ok} ok, {failed} failed "
        f"(timeout rate: {_ratio(failed, ok + failed):.1%}) | "
        f"messages: {rendered}"
    )

    # Overlay protocols --------------------------------------------------
    # One line per registered overlay (kademlia, chord, pastry), each
    # reading the protocol-prefixed counters its implementation records
    # (``<name>.lookups``, ``<name>.lookup.virtual_latency``, ...).  The
    # registry import is deferred: repro.overlay imports the obs layer.
    from repro.overlay import overlay_names

    refresh_labels = {"kademlia": "bucket refreshes"}
    for protocol in overlay_names():
        lookups = _counter(snapshot, f"{protocol}.lookups")
        latency = _hist(snapshot, f"{protocol}.lookup.virtual_latency")
        rounds = _hist(snapshot, f"{protocol}.lookup.rounds")
        failed = _counter(snapshot, f"{protocol}.lookup.failed_rpcs")
        evictions = _counter(snapshot, f"{protocol}.evictions")
        refreshes = _counter(snapshot, f"{protocol}.refreshes")
        refresh_label = refresh_labels.get(protocol, "refreshes")
        lines.append(
            f"{protocol:<10} lookups: {lookups} | "
            f"mean lookup virtual-time latency: "
            f"{(latency['mean'] if latency else 0.0):.2f} RTT "
            f"({(rounds['mean'] if rounds else 0.0):.2f} rounds) | "
            f"{refresh_label}: {refreshes} | evictions: {evictions} | "
            f"failed RPCs: {failed}"
        )

    # Pair-flow engine ---------------------------------------------------
    pairs_submitted = _counter(snapshot, "pairflow.pairs_submitted")
    pairs_evaluated = _counter(snapshot, "pairflow.pairs_evaluated")
    pruned = _counter(snapshot, "pairflow.pairs_pruned")
    shards = _counter(snapshot, "pairflow.shards")
    resizes = _counter(snapshot, "pairflow.adaptive_resizes")
    lines.append(
        f"pairflow   pairs: {pairs_submitted} submitted, "
        f"{pairs_evaluated} evaluated "
        f"(prune rate: {_ratio(pruned, pairs_submitted):.0%}) | "
        f"shards: {shards} | adaptive resizes: {resizes}"
    )

    # Connectivity estimator --------------------------------------------
    est_runs = _counter(snapshot, "estimation.runs")
    est_sampled = _counter(snapshot, "estimation.pairs_sampled")
    est_evaluated = _counter(snapshot, "estimation.pairs_evaluated")
    est_pruned = _counter(snapshot, "estimation.pairs_pruned")
    ci_width = _hist(snapshot, "estimation.ci_width")
    lines.append(
        f"estimate   runs: {est_runs} | pairs: {est_sampled} sampled, "
        f"{est_evaluated} evaluated, {est_pruned} pruned | "
        f"mean CI width: {(ci_width['mean'] if ci_width else 0.0):.3f}"
    )
    return "\n".join(lines)


def write_metrics(path: Union[str, Path], snapshot: Dict[str, Any]) -> Path:
    """Write a metrics snapshot as a stable, diff-friendly JSON document."""
    path = Path(path)
    document = {"schema": METRICS_SCHEMA, "metrics": snapshot}
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
