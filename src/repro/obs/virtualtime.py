"""Synthetic virtual-time latency model for Kademlia lookups.

The simulation executes a whole iterative lookup inside one simulator
event (see the design note in :mod:`repro.simulator`), so simulated time
cannot advance *during* a lookup — there is no virtual duration to
measure directly.  What the lookup does expose is its per-hop structure:
``rounds`` parallel query rounds, each one request/response round-trip
deep, plus ``failures`` timed-out round-trips along the way.

This module turns that structure into a virtual-time latency figure the
way latency-focused Kademlia simulators do (advance a virtual clock by
one RTT per lookup round — the shape of the kvcache-research benchmark
referenced from SNIPPETS.md): each round costs one RTT and each failed
round-trip additionally costs a timeout penalty, expressed in RTT units.
A well-populated routing table resolves a lookup in O(log N) rounds, so
the derived latency inherits the paper-relevant O(log N) bound that the
property test in ``tests/kademlia/test_lookup_latency.py`` asserts.

The accumulation itself lives on
:meth:`repro.kademlia.lookup.LookupResult.virtual_latency`; this module
owns the canonical constants and the registry-facing helper so the
protocol layer has one place to read them from.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kademlia.lookup import LookupResult

#: Virtual cost of one parallel query round, in RTT units.  The model is
#: relative — latencies are reported as multiples of the network RTT —
#: so the unit round keeps every figure directly comparable to the
#: O(log N) bound.
LOOKUP_RTT = 1.0

#: Additional virtual cost of one failed (timed-out) round-trip, in RTT
#: units.  Deployed Kademlia implementations wait a small multiple of
#: the RTT before declaring a timeout; 3x is the conventional choice.
LOOKUP_TIMEOUT_PENALTY = 3.0


def lookup_virtual_latency(result: "LookupResult") -> float:
    """Virtual-time latency of one lookup under the canonical constants."""
    return result.virtual_latency(LOOKUP_RTT, LOOKUP_TIMEOUT_PENALTY)
