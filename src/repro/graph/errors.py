"""Exception hierarchy for the graph subpackage."""


class GraphError(Exception):
    """Base class for all graph-related errors."""


class VertexNotFoundError(GraphError, KeyError):
    """Raised when an operation references a vertex that is not in the graph."""

    def __init__(self, vertex):
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an operation references an edge that is not in the graph."""

    def __init__(self, source, target):
        super().__init__(f"edge ({source!r}, {target!r}) is not in the graph")
        self.source = source
        self.target = target


class NegativeCapacityError(GraphError, ValueError):
    """Raised when an edge is given a negative capacity."""

    def __init__(self, source, target, capacity):
        super().__init__(
            f"edge ({source!r}, {target!r}) has negative capacity {capacity!r}"
        )
        self.source = source
        self.target = target
        self.capacity = capacity


class SelfLoopError(GraphError, ValueError):
    """Raised when a self-loop is added to a graph that forbids them.

    Even's transformation (Section 4.3 of the paper) assumes the input
    connectivity graph has neither self-loops nor parallel edges, so the
    graph type guards against self-loops by default.
    """

    def __init__(self, vertex):
        super().__init__(f"self-loop on vertex {vertex!r} is not allowed")
        self.vertex = vertex
