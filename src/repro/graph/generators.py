"""Synthetic graph generators.

These are used by tests, benchmarks and examples to produce graphs with a
known connectivity: complete graphs (kappa = n - 1), directed cycles
(kappa = 1), circulant graphs (kappa = 2d for offsets 1..d in both
directions), random Erdos-Renyi digraphs, and the 9-vertex example graph of
the paper's Figure 1.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.graph.digraph import DiGraph


def complete_graph(n: int) -> DiGraph:
    """Return the complete directed graph on vertices ``0..n-1``."""
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j:
                graph.add_edge(i, j)
    return graph


def directed_cycle(n: int) -> DiGraph:
    """Return a directed cycle ``0 -> 1 -> ... -> n-1 -> 0`` (kappa = 1)."""
    if n < 2:
        raise ValueError("a cycle needs at least two vertices")
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    return graph


def bidirectional_cycle(n: int) -> DiGraph:
    """Return a cycle with edges in both directions (kappa = 2 for n >= 3)."""
    graph = directed_cycle(n)
    for i in range(n):
        graph.add_edge((i + 1) % n, i)
    return graph


def circulant_graph(n: int, offsets: Sequence[int]) -> DiGraph:
    """Return the circulant graph C_n(offsets) with symmetric edges.

    Each vertex ``i`` is connected (both directions) to ``i +/- o`` for every
    offset ``o``.  For offsets ``1..d`` with ``2d < n`` the vertex
    connectivity is ``2d``, making circulants a convenient family of graphs
    with a *known* connectivity for property-based tests.
    """
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for offset in offsets:
            graph.add_edge(i, (i + offset) % n)
            graph.add_edge(i, (i - offset) % n)
    return graph


def random_digraph(
    n: int, edge_probability: float, rng: Optional[random.Random] = None
) -> DiGraph:
    """Return an Erdos-Renyi directed graph G(n, p) without self-loops."""
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = rng or random.Random()
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < edge_probability:
                graph.add_edge(i, j)
    return graph


def random_regular_out_digraph(
    n: int, out_degree: int, rng: Optional[random.Random] = None
) -> DiGraph:
    """Return a digraph where every vertex has exactly ``out_degree`` random successors.

    This mimics the structure of a Kademlia connectivity graph with full
    buckets: the out-degree is capped by the routing-table capacity while
    in-degrees vary.
    """
    if out_degree >= n:
        raise ValueError("out_degree must be smaller than n")
    rng = rng or random.Random()
    graph = DiGraph()
    graph.add_vertices(range(n))
    for i in range(n):
        others = [j for j in range(n) if j != i]
        for j in rng.sample(others, out_degree):
            graph.add_edge(i, j)
    return graph


def figure1_example_graph() -> DiGraph:
    """Return the 9-vertex example graph of the paper's Figure 1a.

    The graph is constructed so that the maximum flow from ``a`` to ``i`` is
    3 while the vertex connectivity ``kappa(a, i)`` is 1: all paths from
    ``a`` to ``i`` run through the cut vertex ``e``.
    """
    graph = DiGraph()
    edges = [
        ("a", "b"),
        ("a", "c"),
        ("a", "d"),
        ("b", "e"),
        ("c", "e"),
        ("d", "e"),
        ("e", "f"),
        ("e", "g"),
        ("e", "h"),
        ("f", "i"),
        ("g", "i"),
        ("h", "i"),
    ]
    for source, target in edges:
        graph.add_edge(source, target)
    return graph
