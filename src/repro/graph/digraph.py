"""A compact directed graph with per-edge capacities.

The connectivity graph of a Kademlia network (paper Section 4.2) is a
directed graph with one vertex per network node and an edge ``(v, w)``
whenever ``w`` appears in ``v``'s routing table.  Every edge carries a
capacity of 1 so that max-flow computations on the (transformed) graph count
vertex-disjoint paths.

The class below is intentionally small and dependency-free: adjacency is a
``dict`` of ``dict`` so that edge insertion, removal and capacity lookup are
O(1), and the vertex set is stable under iteration order (insertion order),
which keeps simulations deterministic for a fixed seed.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.graph.errors import (
    EdgeNotFoundError,
    NegativeCapacityError,
    SelfLoopError,
    VertexNotFoundError,
)

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]


class DiGraph:
    """A directed graph with optional per-edge capacities.

    Parameters
    ----------
    allow_self_loops:
        Whether self-loops may be inserted.  The connectivity analysis
        requires graphs without self-loops (Even's transformation assumes
        this), so the default is ``False``.

    Examples
    --------
    >>> g = DiGraph()
    >>> g.add_edge("a", "b")
    >>> g.add_edge("b", "c", capacity=2.0)
    >>> g.number_of_vertices(), g.number_of_edges()
    (3, 2)
    >>> sorted(g.successors("a"))
    ['b']
    """

    __slots__ = ("_succ", "_pred", "_allow_self_loops")

    def __init__(self, allow_self_loops: bool = False) -> None:
        self._succ: Dict[Vertex, Dict[Vertex, float]] = {}
        self._pred: Dict[Vertex, Dict[Vertex, float]] = {}
        self._allow_self_loops = allow_self_loops

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Vertex, Vertex]],
        capacity: float = 1.0,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Build a graph from an iterable of ``(source, target)`` pairs."""
        graph = cls(allow_self_loops=allow_self_loops)
        for source, target in edges:
            graph.add_edge(source, target, capacity=capacity)
        return graph

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Dict[Vertex, Iterable[Vertex]],
        capacity: float = 1.0,
        allow_self_loops: bool = False,
    ) -> "DiGraph":
        """Build a graph from a mapping ``vertex -> iterable of successors``.

        Vertices that appear only as keys (with no successors) are added as
        isolated vertices, which matters for connectivity: a node with an
        empty routing table must still appear in the connectivity graph.
        """
        graph = cls(allow_self_loops=allow_self_loops)
        for source, targets in adjacency.items():
            graph.add_vertex(source)
            for target in targets:
                graph.add_edge(source, target, capacity=capacity)
        return graph

    def copy(self) -> "DiGraph":
        """Return an independent copy of this graph."""
        clone = DiGraph(allow_self_loops=self._allow_self_loops)
        for vertex in self._succ:
            clone.add_vertex(vertex)
        for source, targets in self._succ.items():
            for target, capacity in targets.items():
                clone.add_edge(source, target, capacity=capacity)
        return clone

    def reverse(self) -> "DiGraph":
        """Return a copy of the graph with all edges reversed."""
        reversed_graph = DiGraph(allow_self_loops=self._allow_self_loops)
        for vertex in self._succ:
            reversed_graph.add_vertex(vertex)
        for source, targets in self._succ.items():
            for target, capacity in targets.items():
                reversed_graph.add_edge(target, source, capacity=capacity)
        return reversed_graph

    def to_undirected_edges(self) -> List[Edge]:
        """Return the set of undirected edges (each unordered pair once)."""
        seen = set()
        result: List[Edge] = []
        for source, targets in self._succ.items():
            for target in targets:
                key = frozenset((source, target))
                if key in seen:
                    continue
                seen.add(key)
                result.append((source, target))
        return result

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` to the graph (no-op if already present)."""
        if vertex not in self._succ:
            self._succ[vertex] = {}
            self._pred[vertex] = {}

    def add_vertices(self, vertices: Iterable[Vertex]) -> None:
        """Add every vertex from ``vertices``."""
        for vertex in vertices:
            self.add_vertex(vertex)

    def add_edge(self, source: Vertex, target: Vertex, capacity: float = 1.0) -> None:
        """Insert the directed edge ``(source, target)``.

        Inserting an edge that already exists overwrites its capacity (the
        graph has no parallel edges).  Missing endpoints are added
        automatically.
        """
        if source == target and not self._allow_self_loops:
            raise SelfLoopError(source)
        if capacity < 0:
            raise NegativeCapacityError(source, target, capacity)
        self.add_vertex(source)
        self.add_vertex(target)
        self._succ[source][target] = capacity
        self._pred[target][source] = capacity

    def remove_edge(self, source: Vertex, target: Vertex) -> None:
        """Remove the directed edge ``(source, target)``."""
        if source not in self._succ or target not in self._succ[source]:
            raise EdgeNotFoundError(source, target)
        del self._succ[source][target]
        del self._pred[target][source]

    def replace_successors(
        self, vertex: Vertex, targets: Iterable[Vertex], capacity: float = 1.0
    ) -> None:
        """Replace ``vertex``'s out-edges with edges to ``targets``, in order.

        The incremental snapshot-graph maintainer uses this to rewrite one
        vertex's row in a single pass: predecessor links of dropped targets
        are removed, new targets gain them, and the successor dict is
        rebuilt in the given order — the same row order a from-scratch
        build would produce.  All targets must already be vertices (the
        maintainer adds the alive vertex set first) and must not equal
        ``vertex``.
        """
        succ = self._succ
        if vertex not in succ:
            raise VertexNotFoundError(vertex)
        pred = self._pred
        new_row = dict.fromkeys(targets, capacity)
        if vertex in new_row:
            raise SelfLoopError(vertex)
        old_row = succ[vertex]
        for target in old_row:
            if target not in new_row:
                del pred[target][vertex]
        for target in new_row:
            pred[target][vertex] = capacity
        succ[vertex] = new_row

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        for target in list(self._succ[vertex]):
            del self._pred[target][vertex]
        for source in list(self._pred[vertex]):
            del self._succ[source][vertex]
        del self._succ[vertex]
        del self._pred[vertex]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._succ)

    def has_vertex(self, vertex: Vertex) -> bool:
        """Return True if ``vertex`` is in the graph."""
        return vertex in self._succ

    def has_edge(self, source: Vertex, target: Vertex) -> bool:
        """Return True if the directed edge ``(source, target)`` exists."""
        return source in self._succ and target in self._succ[source]

    def capacity(self, source: Vertex, target: Vertex) -> float:
        """Return the capacity of edge ``(source, target)``."""
        if not self.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._succ[source][target]

    def vertices(self) -> List[Vertex]:
        """Return the list of vertices in insertion order."""
        return list(self._succ)

    def edges(self) -> Iterator[Tuple[Vertex, Vertex, float]]:
        """Iterate over edges as ``(source, target, capacity)`` triples."""
        for source, targets in self._succ.items():
            for target, capacity in targets.items():
                yield (source, target, capacity)

    def successors(self, vertex: Vertex) -> List[Vertex]:
        """Return the out-neighbours of ``vertex``."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        return list(self._succ[vertex])

    def predecessors(self, vertex: Vertex) -> List[Vertex]:
        """Return the in-neighbours of ``vertex``."""
        if vertex not in self._pred:
            raise VertexNotFoundError(vertex)
        return list(self._pred[vertex])

    def out_degree(self, vertex: Vertex) -> int:
        """Return the number of outgoing edges of ``vertex``."""
        if vertex not in self._succ:
            raise VertexNotFoundError(vertex)
        return len(self._succ[vertex])

    def in_degree(self, vertex: Vertex) -> int:
        """Return the number of incoming edges of ``vertex``."""
        if vertex not in self._pred:
            raise VertexNotFoundError(vertex)
        return len(self._pred[vertex])

    def number_of_vertices(self) -> int:
        """Return the number of vertices."""
        return len(self._succ)

    def number_of_edges(self) -> int:
        """Return the number of directed edges."""
        return sum(len(targets) for targets in self._succ.values())

    def is_complete(self) -> bool:
        """Return True if every ordered pair of distinct vertices is an edge.

        The paper (Section 4.4) treats complete graphs specially: the vertex
        connectivity of a complete graph on ``n`` vertices is ``n - 1``.
        """
        n = self.number_of_vertices()
        return self.number_of_edges() == n * (n - 1)

    def non_adjacent_pairs(self) -> Iterator[Edge]:
        """Yield ordered pairs ``(v, w)`` of distinct vertices with no edge v->w."""
        for v in self._succ:
            out = self._succ[v]
            for w in self._succ:
                if v is w or v == w:
                    continue
                if w not in out:
                    yield (v, w)

    def min_out_degree(self) -> int:
        """Return the smallest out-degree (0 for an empty graph)."""
        if not self._succ:
            return 0
        return min(len(targets) for targets in self._succ.values())

    def min_in_degree(self) -> int:
        """Return the smallest in-degree (0 for an empty graph)."""
        if not self._pred:
            return 0
        return min(len(sources) for sources in self._pred.values())

    def degree_statistics(self) -> Dict[str, float]:
        """Return simple degree statistics used by the analysis reports."""
        n = self.number_of_vertices()
        if n == 0:
            return {
                "min_out_degree": 0,
                "max_out_degree": 0,
                "mean_out_degree": 0.0,
                "min_in_degree": 0,
                "max_in_degree": 0,
                "mean_in_degree": 0.0,
            }
        out_degrees = [len(t) for t in self._succ.values()]
        in_degrees = [len(s) for s in self._pred.values()]
        return {
            "min_out_degree": min(out_degrees),
            "max_out_degree": max(out_degrees),
            "mean_out_degree": sum(out_degrees) / n,
            "min_in_degree": min(in_degrees),
            "max_in_degree": max(in_degrees),
            "mean_in_degree": sum(in_degrees) / n,
        }

    def symmetry_ratio(self) -> float:
        """Fraction of edges whose reverse edge also exists.

        The paper observes (Section 5.2) that Kademlia connectivity graphs
        are "very close to being undirected"; this metric quantifies that
        claim for a concrete snapshot.  Returns 1.0 for an empty graph.
        """
        total = self.number_of_edges()
        if total == 0:
            return 1.0
        symmetric = sum(
            1
            for source, targets in self._succ.items()
            for target in targets
            if source in self._succ.get(target, {})
        )
        return symmetric / total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DiGraph(vertices={self.number_of_vertices()}, "
            f"edges={self.number_of_edges()})"
        )
