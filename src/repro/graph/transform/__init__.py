"""Graph transformations.

Currently this package contains Even's vertex-splitting transformation,
which reduces vertex-connectivity queries to max-flow queries
(paper Section 4.3, Figure 1).
"""

from repro.graph.transform.even_transform import (
    EvenTransform,
    IndexedEvenTransform,
    even_transform,
    indexed_even_transform,
)

__all__ = [
    "EvenTransform",
    "IndexedEvenTransform",
    "even_transform",
    "indexed_even_transform",
]
