"""Even's vertex-splitting transformation.

Menger's theorem equates the vertex connectivity ``kappa(v, w)`` of two
non-adjacent vertices with the maximum number of pairwise vertex-disjoint
paths from ``v`` to ``w``.  Max-flow algorithms, however, bound *edge*
usage, not vertex usage.  Even's transformation (paper Section 4.3) closes
that gap:

* every vertex ``v`` of the original graph ``D(V, E)`` is split into an
  *incoming* vertex ``v'`` and an *outgoing* vertex ``v''``;
* all edges that pointed to ``v`` now point to ``v'``;
* all edges that left ``v`` now leave ``v''``;
* an internal edge ``(v', v'')`` with capacity 1 is inserted.

The resulting graph ``D'`` has ``2n`` vertices and ``m + n`` edges, and the
maximum flow from ``v''`` to ``w'`` equals ``kappa(v, w)`` for non-adjacent
``v`` and ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.residual import CompactNetwork, ResidualNetwork

Vertex = Hashable

#: Suffixes used to derive split-vertex names when the original vertices are
#: strings; arbitrary hashables are wrapped in tuples instead (see
#: :func:`split_names`).
IN_SUFFIX = "'"
OUT_SUFFIX = "''"


def split_names(vertex: Vertex) -> Tuple[Vertex, Vertex]:
    """Return the ``(incoming, outgoing)`` names for a split vertex.

    String vertices get readable primed names matching the paper's notation
    (``a`` becomes ``a'`` and ``a''``); all other vertex types are wrapped in
    ``(vertex, "in")`` / ``(vertex, "out")`` tuples, which keeps the mapping
    collision-free for integer node identifiers.
    """
    if isinstance(vertex, str):
        return vertex + IN_SUFFIX, vertex + OUT_SUFFIX
    return (vertex, "in"), (vertex, "out")


@dataclass(frozen=True)
class EvenTransform:
    """Result of Even's transformation.

    Attributes
    ----------
    graph:
        The transformed graph ``D'`` with ``2n`` vertices and ``m + n`` edges.
    incoming:
        Mapping from original vertex to its incoming copy ``v'``.
    outgoing:
        Mapping from original vertex to its outgoing copy ``v''``.
    """

    graph: DiGraph
    incoming: Dict[Vertex, Vertex]
    outgoing: Dict[Vertex, Vertex]

    def flow_endpoints(self, source: Vertex, target: Vertex) -> Tuple[Vertex, Vertex]:
        """Return the max-flow query endpoints for original pair (source, target).

        The flow must start at the *outgoing* copy of ``source`` (so that
        ``source``'s own internal unit edge does not constrain the flow) and
        end at the *incoming* copy of ``target``.
        """
        return self.outgoing[source], self.incoming[target]

    def original_vertices(self) -> list:
        """Return the original vertex set (insertion order preserved)."""
        return list(self.incoming)


def even_transform(graph: DiGraph, internal_capacity: float = 1.0) -> EvenTransform:
    """Apply Even's vertex-splitting transformation to ``graph``.

    Parameters
    ----------
    graph:
        The original connectivity graph.  Must not contain self-loops
        (enforced by :class:`DiGraph` by default).
    internal_capacity:
        Capacity of the internal ``(v', v'')`` edge.  The paper always uses
        1; other values are occasionally useful in tests (e.g. to model
        vertices that may be traversed more than once).

    Returns
    -------
    EvenTransform
        The transformed graph plus the vertex-name mappings.
    """
    transformed = DiGraph()
    incoming: Dict[Vertex, Vertex] = {}
    outgoing: Dict[Vertex, Vertex] = {}

    for vertex in graph.vertices():
        v_in, v_out = split_names(vertex)
        incoming[vertex] = v_in
        outgoing[vertex] = v_out
        transformed.add_vertex(v_in)
        transformed.add_vertex(v_out)
        transformed.add_edge(v_in, v_out, capacity=internal_capacity)

    for source, target, capacity in graph.edges():
        transformed.add_edge(outgoing[source], incoming[target], capacity=capacity)

    return EvenTransform(graph=transformed, incoming=incoming, outgoing=outgoing)


@dataclass(frozen=True)
class IndexedEvenTransform:
    """Even's transformation with integer-indexed split vertices.

    Original vertex ``i`` (by position in ``vertices``) is split into the
    incoming copy ``2 i`` and the outgoing copy ``2 i + 1``, so the flow
    endpoints of a pair are pure index arithmetic — no primed-name dicts in
    the hot path.  The transformed graph is materialised directly as a
    :class:`~repro.graph.maxflow.residual.ResidualNetwork` (never as a
    :class:`DiGraph`), which is what makes building one network per
    snapshot cheap enough to do eagerly.
    """

    network: ResidualNetwork
    vertices: List[Vertex] = field(repr=False)
    index: Dict[Vertex, int] = field(repr=False)

    def source_index(self, vertex: Vertex) -> int:
        """Dense index of the *outgoing* copy ``v''`` (flow source side)."""
        return 2 * self.index[vertex] + 1

    def target_index(self, vertex: Vertex) -> int:
        """Dense index of the *incoming* copy ``v'`` (flow target side)."""
        return 2 * self.index[vertex]

    def flow_endpoint_indices(self, source: Vertex, target: Vertex) -> Tuple[int, int]:
        """Return ``(source index, target index)`` for an original pair."""
        two_source = self.index[source] * 2
        two_target = self.index[target] * 2
        return two_source + 1, two_target

    def compact(self) -> CompactNetwork:
        """Picklable snapshot of the transformed network (see pairflow)."""
        return self.network.compact()


def indexed_even_transform(
    graph: DiGraph, internal_capacity: float = 1.0
) -> IndexedEvenTransform:
    """Apply Even's transformation, emitting integer-indexed vertices.

    Equivalent to ``ResidualNetwork(even_transform(graph).graph)`` up to arc
    ordering (max-flow values are identical), but roughly twice as cheap: the
    transformed graph goes straight into the arc arrays without an
    intermediate dict-of-dict graph or primed vertex names.
    """
    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    arcs: List[Tuple[int, int, float]] = [
        (2 * i, 2 * i + 1, internal_capacity) for i in range(len(vertices))
    ]
    for source, target, capacity in graph.edges():
        arcs.append((2 * index[source] + 1, 2 * index[target], capacity))
    network = ResidualNetwork.from_arcs(2 * len(vertices), arcs)
    return IndexedEvenTransform(network=network, vertices=vertices, index=index)
