"""DIMACS maximum-flow file format.

The paper converts every transformed connectivity graph to the DIMACS
max-flow format so HIPR can read it (Section 5.2).  We keep the format as an
interchange option: snapshots can be exported for inspection with external
solvers and the CLI exposes ``repro-kademlia export-dimacs``.

Format summary (http://dimacs.rutgers.edu/ max-flow challenge):

```
c  comment lines
p max <n> <m>          problem line: number of vertices and arcs
n <id> s               source designation (1-based vertex id)
n <id> t               sink designation
a <tail> <head> <cap>  one line per arc
```
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Hashable, Optional, TextIO, Tuple, Union

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphError

Vertex = Hashable
PathLike = Union[str, Path]


class DimacsFormatError(GraphError, ValueError):
    """Raised when a DIMACS file cannot be parsed."""


def write_dimacs(
    graph: DiGraph,
    destination: Union[PathLike, TextIO],
    source: Optional[Vertex] = None,
    sink: Optional[Vertex] = None,
    comment: Optional[str] = None,
) -> Dict[Vertex, int]:
    """Write ``graph`` in DIMACS max-flow format.

    Returns the mapping from graph vertices to the 1-based DIMACS vertex ids
    used in the file, so callers can relate solver output back to vertices.
    """
    index: Dict[Vertex, int] = {
        vertex: i + 1 for i, vertex in enumerate(graph.vertices())
    }

    def _write(stream: TextIO) -> None:
        if comment:
            for line in comment.splitlines():
                stream.write(f"c {line}\n")
        stream.write(
            f"p max {graph.number_of_vertices()} {graph.number_of_edges()}\n"
        )
        if source is not None:
            stream.write(f"n {index[source]} s\n")
        if sink is not None:
            stream.write(f"n {index[sink]} t\n")
        for tail, head, capacity in graph.edges():
            cap = int(capacity) if float(capacity).is_integer() else capacity
            stream.write(f"a {index[tail]} {index[head]} {cap}\n")

    if hasattr(destination, "write"):
        _write(destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as stream:
            _write(stream)
    return index


def read_dimacs(
    source: Union[PathLike, TextIO],
) -> Tuple[DiGraph, Optional[int], Optional[int]]:
    """Read a DIMACS max-flow file.

    Returns ``(graph, source_id, sink_id)`` where the graph vertices are the
    1-based integer ids from the file and source/sink are ``None`` when the
    file does not designate them.
    """
    if hasattr(source, "read"):
        stream: TextIO = source  # type: ignore[assignment]
        return _parse(stream)
    with open(source, "r", encoding="utf-8") as stream:
        return _parse(stream)


def _parse(stream: TextIO) -> Tuple[DiGraph, Optional[int], Optional[int]]:
    graph = DiGraph()
    declared_vertices: Optional[int] = None
    declared_arcs: Optional[int] = None
    seen_arcs = 0
    flow_source: Optional[int] = None
    flow_sink: Optional[int] = None

    for line_number, raw_line in enumerate(stream, start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        fields = line.split()
        kind = fields[0]
        if kind == "p":
            if len(fields) != 4 or fields[1] != "max":
                raise DimacsFormatError(
                    f"line {line_number}: malformed problem line {line!r}"
                )
            declared_vertices = int(fields[2])
            declared_arcs = int(fields[3])
            graph.add_vertices(range(1, declared_vertices + 1))
        elif kind == "n":
            if len(fields) != 3:
                raise DimacsFormatError(
                    f"line {line_number}: malformed node designation {line!r}"
                )
            node_id = int(fields[1])
            if fields[2] == "s":
                flow_source = node_id
            elif fields[2] == "t":
                flow_sink = node_id
            else:
                raise DimacsFormatError(
                    f"line {line_number}: unknown designation {fields[2]!r}"
                )
        elif kind == "a":
            if declared_vertices is None:
                raise DimacsFormatError(
                    f"line {line_number}: arc before problem line"
                )
            if len(fields) != 4:
                raise DimacsFormatError(
                    f"line {line_number}: malformed arc line {line!r}"
                )
            tail, head = int(fields[1]), int(fields[2])
            capacity = float(fields[3])
            graph.add_edge(tail, head, capacity=capacity)
            seen_arcs += 1
        else:
            raise DimacsFormatError(
                f"line {line_number}: unknown record type {kind!r}"
            )

    if declared_vertices is None:
        raise DimacsFormatError("missing problem line ('p max n m')")
    if declared_arcs is not None and declared_arcs != seen_arcs:
        raise DimacsFormatError(
            f"problem line declares {declared_arcs} arcs but file has {seen_arcs}"
        )
    return graph, flow_source, flow_sink


def dimacs_string(
    graph: DiGraph,
    source: Optional[Vertex] = None,
    sink: Optional[Vertex] = None,
    comment: Optional[str] = None,
) -> str:
    """Return the DIMACS representation of ``graph`` as a string."""
    buffer = io.StringIO()
    write_dimacs(graph, buffer, source=source, sink=sink, comment=comment)
    return buffer.getvalue()
