"""Plain-text edge-list serialisation.

One line per edge: ``<source> <target> [capacity]``.  Vertex labels are kept
as strings on read; this format is used by the snapshot export helpers and
the examples because it round-trips through standard Unix tooling easily.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def write_edgelist(graph: DiGraph, destination: Union[PathLike, TextIO]) -> None:
    """Write ``graph`` as a whitespace-separated edge list."""

    def _write(stream: TextIO) -> None:
        for vertex in graph.vertices():
            if graph.out_degree(vertex) == 0 and graph.in_degree(vertex) == 0:
                # Isolated vertices need an explicit record to round-trip.
                stream.write(f"# vertex {vertex}\n")
        for source, target, capacity in graph.edges():
            stream.write(f"{source} {target} {capacity}\n")

    if hasattr(destination, "write"):
        _write(destination)  # type: ignore[arg-type]
    else:
        with open(destination, "w", encoding="utf-8") as stream:
            _write(stream)


def read_edgelist(source: Union[PathLike, TextIO]) -> DiGraph:
    """Read an edge list written by :func:`write_edgelist`.

    Vertex labels are returned as strings.
    """

    def _parse(stream: TextIO) -> DiGraph:
        graph = DiGraph()
        for raw_line in stream:
            line = raw_line.strip()
            if not line:
                continue
            if line.startswith("#"):
                fields = line[1:].split()
                if len(fields) == 2 and fields[0] == "vertex":
                    graph.add_vertex(fields[1])
                continue
            fields = line.split()
            if len(fields) not in (2, 3):
                raise ValueError(f"malformed edge-list line: {line!r}")
            capacity = float(fields[2]) if len(fields) == 3 else 1.0
            graph.add_edge(fields[0], fields[1], capacity=capacity)
        return graph

    if hasattr(source, "read"):
        return _parse(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as stream:
        return _parse(stream)
