"""Graph serialisation: DIMACS max-flow format and plain edge lists."""

from repro.graph.io.dimacs import read_dimacs, write_dimacs
from repro.graph.io.edgelist import read_edgelist, write_edgelist

__all__ = ["read_dimacs", "read_edgelist", "write_dimacs", "write_edgelist"]
