"""Connected-component algorithms.

Whether a connectivity graph is strongly connected is a quick necessary
condition for a non-zero vertex connectivity: the paper's "single digit
number of disconnected nodes" (Section 5.5.1) shows up here as extra
strongly connected components, and the analyzer uses that as a cheap
pre-check before running any max-flow computation.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set

from repro.graph.digraph import DiGraph

Vertex = Hashable


def weakly_connected_components(graph: DiGraph) -> List[Set[Vertex]]:
    """Return the weakly connected components (ignoring edge direction)."""
    remaining = set(graph.vertices())
    components: List[Set[Vertex]] = []
    while remaining:
        start = next(iter(remaining))
        component = {start}
        stack = [start]
        while stack:
            vertex = stack.pop()
            for neighbour in graph.successors(vertex) + graph.predecessors(vertex):
                if neighbour not in component:
                    component.add(neighbour)
                    stack.append(neighbour)
        components.append(component)
        remaining -= component
    return components


def strongly_connected_components(graph: DiGraph) -> List[Set[Vertex]]:
    """Return strongly connected components (iterative Tarjan).

    The implementation is iterative to cope with the deep recursion that
    path-like graphs would otherwise cause.
    """
    index_counter = 0
    indices: Dict[Vertex, int] = {}
    lowlinks: Dict[Vertex, int] = {}
    on_stack: Set[Vertex] = set()
    stack: List[Vertex] = []
    components: List[Set[Vertex]] = []

    for root in graph.vertices():
        if root in indices:
            continue
        work = [(root, iter(graph.successors(root)))]
        indices[root] = lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            vertex, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in indices:
                    indices[successor] = lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[vertex] = min(lowlinks[vertex], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[vertex])
            if lowlinks[vertex] == indices[vertex]:
                component: Set[Vertex] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == vertex:
                        break
                components.append(component)
    return components


def is_weakly_connected(graph: DiGraph) -> bool:
    """Return True if the graph has at most one weakly connected component."""
    if graph.number_of_vertices() == 0:
        return True
    return len(weakly_connected_components(graph)) == 1


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return True if the graph has at most one strongly connected component."""
    if graph.number_of_vertices() == 0:
        return True
    return len(strongly_connected_components(graph)) == 1
