"""Path extraction helpers.

``vertex_disjoint_paths`` makes Menger's theorem tangible: it decomposes a
max flow on the Even-transformed graph back into concrete node-disjoint
paths of the original graph.  The examples use it to show *which* redundant
routes exist between two Kademlia nodes, and the tests use it to verify that
the number of recovered paths equals the computed connectivity.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.residual import ResidualNetwork
from repro.graph.maxflow.dinic import dinic_on_network
from repro.graph.transform.even_transform import even_transform

Vertex = Hashable


def shortest_path(graph: DiGraph, source: Vertex, target: Vertex) -> Optional[List[Vertex]]:
    """Return a shortest (hop-count) path from ``source`` to ``target``.

    Returns ``None`` when ``target`` is unreachable.
    """
    if source == target:
        return [source]
    parents: Dict[Vertex, Vertex] = {source: source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor in parents:
                continue
            parents[successor] = vertex
            if successor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(successor)
    return None


def vertex_disjoint_paths(
    graph: DiGraph, source: Vertex, target: Vertex
) -> List[List[Vertex]]:
    """Return a maximum set of internally vertex-disjoint source→target paths.

    The paths are recovered by running a unit-capacity max flow on the
    Even-transformed graph and then tracing flow-carrying arcs.  If
    ``target`` is a direct successor of ``source`` the direct edge is
    returned as one of the paths (it is trivially disjoint from the rest).
    """
    if source == target:
        raise ValueError("source and target must be distinct")
    transform = even_transform(graph)
    flow_source, flow_target = transform.flow_endpoints(source, target)
    network = ResidualNetwork(transform.graph)
    dinic_on_network(
        network, network.index_of(flow_source), network.index_of(flow_target)
    )

    # Build a successor map restricted to arcs that carry flow.
    flow_successors: Dict[Vertex, List[Vertex]] = {}
    for vertex_index in range(network.n):
        vertex = network.vertex_of(vertex_index)
        for arc in network.adjacency[vertex_index]:
            if arc % 2 != 0:  # reverse arcs are at odd indices
                continue
            if network.flow_on_arc(arc) > 0.5:
                flow_successors.setdefault(vertex, []).append(
                    network.vertex_of(network.heads[arc])
                )

    # Trace paths in the transformed graph, then collapse split vertices.
    incoming_of = {v_in: orig for orig, v_in in transform.incoming.items()}
    outgoing_of = {v_out: orig for orig, v_out in transform.outgoing.items()}
    paths: List[List[Vertex]] = []
    while flow_successors.get(flow_source):
        current = flow_successors[flow_source].pop()
        collapsed = [source]
        while current != flow_target:
            if current in incoming_of:
                original = incoming_of[current]
                if collapsed[-1] != original:
                    collapsed.append(original)
            elif current in outgoing_of:
                original = outgoing_of[current]
                if collapsed[-1] != original:
                    collapsed.append(original)
            successors = flow_successors.get(current, [])
            if not successors:
                collapsed = []
                break
            current = successors.pop()
        if collapsed:
            collapsed.append(target)
            paths.append(collapsed)
    return paths
