"""Classic graph algorithms used by the analysis and the test oracles."""

from repro.graph.algorithms.traversal import bfs_distances, bfs_order, dfs_order, is_reachable
from repro.graph.algorithms.components import (
    strongly_connected_components,
    weakly_connected_components,
    is_strongly_connected,
    is_weakly_connected,
)
from repro.graph.algorithms.paths import shortest_path, vertex_disjoint_paths

__all__ = [
    "bfs_distances",
    "bfs_order",
    "dfs_order",
    "is_reachable",
    "is_strongly_connected",
    "is_weakly_connected",
    "shortest_path",
    "strongly_connected_components",
    "vertex_disjoint_paths",
    "weakly_connected_components",
]
