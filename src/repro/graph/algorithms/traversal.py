"""Breadth-first and depth-first traversal helpers."""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List

from repro.graph.digraph import DiGraph
from repro.graph.errors import VertexNotFoundError

Vertex = Hashable


def bfs_distances(graph: DiGraph, source: Vertex) -> Dict[Vertex, int]:
    """Return hop distances from ``source`` to every reachable vertex."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    distances: Dict[Vertex, int] = {source: 0}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        next_distance = distances[vertex] + 1
        for successor in graph.successors(vertex):
            if successor not in distances:
                distances[successor] = next_distance
                queue.append(successor)
    return distances


def bfs_order(graph: DiGraph, source: Vertex) -> List[Vertex]:
    """Return vertices reachable from ``source`` in BFS visit order."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    visited = {source}
    order = [source]
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for successor in graph.successors(vertex):
            if successor not in visited:
                visited.add(successor)
                order.append(successor)
                queue.append(successor)
    return order


def dfs_order(graph: DiGraph, source: Vertex) -> List[Vertex]:
    """Return vertices reachable from ``source`` in (iterative) DFS order."""
    if not graph.has_vertex(source):
        raise VertexNotFoundError(source)
    visited = set()
    order: List[Vertex] = []
    stack = [source]
    while stack:
        vertex = stack.pop()
        if vertex in visited:
            continue
        visited.add(vertex)
        order.append(vertex)
        # Reverse so that the first successor is visited first.
        for successor in reversed(graph.successors(vertex)):
            if successor not in visited:
                stack.append(successor)
    return order


def is_reachable(graph: DiGraph, source: Vertex, target: Vertex) -> bool:
    """Return True if there is a directed path from ``source`` to ``target``."""
    if source == target:
        return True
    return target in bfs_distances(graph, source)
