"""Maximum-flow solvers.

The paper uses HIPR, a C implementation of the highest-label ("hi-level")
push-relabel algorithm of Cherkassky & Goldberg, to compute the maximum flow
between vertex pairs of the transformed connectivity graph.  This package
provides a pure-Python reimplementation of that algorithm together with two
classic baselines (Dinic and Edmonds-Karp) so that results can be
cross-checked and the algorithm choice can be ablated.

All solvers share the :class:`repro.graph.maxflow.residual.ResidualNetwork`
representation and return a :class:`MaxFlowResult`.
"""

from repro.graph.maxflow.base import (
    MaxFlowResult,
    NETWORK_SOLVERS,
    SOLVERS,
    max_flow,
    network_flow_function,
)
from repro.graph.maxflow.dinic import dinic_max_flow
from repro.graph.maxflow.edmonds_karp import edmonds_karp_max_flow
from repro.graph.maxflow.push_relabel import push_relabel_max_flow
from repro.graph.maxflow.residual import CompactNetwork, ResidualNetwork

__all__ = [
    "CompactNetwork",
    "MaxFlowResult",
    "NETWORK_SOLVERS",
    "ResidualNetwork",
    "SOLVERS",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "max_flow",
    "network_flow_function",
    "push_relabel_max_flow",
]
