"""Dinic's blocking-flow maximum-flow algorithm.

Dinic's algorithm is used as a baseline and as the default engine for the
global-connectivity search because it supports early termination via
``cutoff``: the running minimum of the max flows bounds how much flow we
actually need to find for the next vertex pair (if the flow reaches the
current minimum the pair cannot lower the graph connectivity further).

On unit-capacity graphs — which is exactly what Even's transformation
produces — Dinic runs in :math:`O(E \\sqrt{V})`.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.base import (
    MaxFlowResult,
    register_network_solver,
    register_solver,
)
from repro.graph.maxflow.residual import ResidualNetwork

Vertex = Hashable


def _build_level_graph(
    network: ResidualNetwork, source: int, sink: int, levels: List[int]
) -> bool:
    """BFS from ``source`` filling ``levels``; True if ``sink`` is reachable.

    Expansion stops at the sink's level: a shortest augmenting path visits
    levels ``0 .. L`` with only the sink at ``L``, so vertices that would
    land beyond ``L`` can never carry flow in this phase and are left
    unlabelled — which both shortens the BFS and spares the DFS from
    exploring dead branches.
    """
    for i in range(network.n):
        levels[i] = -1
    levels[source] = 0
    queue = deque([source])
    popleft = queue.popleft
    append = queue.append
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    sink_level = -1
    while queue:
        u = popleft()
        next_level = levels[u] + 1
        if sink_level >= 0 and next_level >= sink_level:
            break  # deeper vertices cannot lie on a shortest path
        for arc in adjacency[u]:
            v = heads[arc]
            if levels[v] < 0 and caps[arc] > 1e-12:
                levels[v] = next_level
                if v == sink:
                    sink_level = next_level
                else:
                    append(v)
    return levels[sink] >= 0


@register_network_solver("dinic")
def dinic_on_network(
    network: ResidualNetwork,
    source: int,
    sink: int,
    cutoff: Optional[float] = None,
) -> float:
    """Run Dinic on dense vertex indices; mutates the network in place.

    The blocking-flow phase uses an iterative DFS (an explicit arc path
    instead of recursion — the Even-transformed graphs of large snapshots
    exceed Python's recursion limit) over preallocated level/current-arc
    arrays owned by the network, with all hot containers bound to locals.
    """
    n = network.n
    if n == 0 or source == sink:
        return 0.0
    if cutoff is not None and cutoff <= 0:
        return 0.0
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    levels, iters = network.scratch_buffers()
    total = 0.0
    while _build_level_graph(network, source, sink, levels):
        for i in range(n):
            iters[i] = 0
        path: List[int] = []  # arcs of the current partial source->u path
        u = source
        while True:
            if u == sink:
                pushed = min(caps[arc] for arc in path)
                retreat = 0
                for position, arc in enumerate(path):
                    caps[arc] -= pushed
                    caps[arc ^ 1] += pushed
                    if retreat == 0 and caps[arc] <= 1e-12:
                        retreat = position + 1
                total += pushed
                if cutoff is not None and total >= cutoff:
                    return total
                # Restart from the tail of the first saturated arc.
                del path[max(retreat - 1, 0):]
                u = source if not path else heads[path[-1]]
                continue
            arcs = adjacency[u]
            degree = len(arcs)
            position = iters[u]
            next_level = levels[u] + 1
            advanced = False
            while position < degree:
                arc = arcs[position]
                v = heads[arc]
                if caps[arc] > 1e-12 and levels[v] == next_level:
                    advanced = True
                    break
                position += 1
            iters[u] = position
            if advanced:
                path.append(arcs[position])
                u = heads[arcs[position]]
            elif u == source:
                break  # blocking flow complete for this level graph
            else:
                # Dead end: prune u from the level graph and retreat.
                levels[u] = -1
                path.pop()
                u = source if not path else heads[path[-1]]
                iters[u] += 1
        if cutoff is not None and total >= cutoff:
            break
    return total


@register_solver("dinic")
def dinic_max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the maximum flow from ``source`` to ``target`` with Dinic."""
    network = ResidualNetwork(graph)
    value = dinic_on_network(
        network, network.index_of(source), network.index_of(target), cutoff=cutoff
    )
    return MaxFlowResult(value=value, source=source, target=target, algorithm="dinic")
