"""Dinic's blocking-flow maximum-flow algorithm.

Dinic's algorithm is used as a baseline and as the default engine for the
global-connectivity search because it supports early termination via
``cutoff``: the running minimum of the max flows bounds how much flow we
actually need to find for the next vertex pair (if the flow reaches the
current minimum the pair cannot lower the graph connectivity further).

On unit-capacity graphs — which is exactly what Even's transformation
produces — Dinic runs in :math:`O(E \\sqrt{V})`.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.base import MaxFlowResult, register_solver
from repro.graph.maxflow.residual import ResidualNetwork

Vertex = Hashable
_INF = float("inf")


def _build_level_graph(
    network: ResidualNetwork, source: int, sink: int, levels: List[int]
) -> bool:
    """BFS from ``source`` filling ``levels``; True if ``sink`` is reachable."""
    for i in range(network.n):
        levels[i] = -1
    levels[source] = 0
    queue = deque([source])
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    while queue:
        u = queue.popleft()
        for arc in adjacency[u]:
            v = heads[arc]
            if caps[arc] > 1e-12 and levels[v] < 0:
                levels[v] = levels[u] + 1
                queue.append(v)
    return levels[sink] >= 0


def _send_flow(
    network: ResidualNetwork,
    levels: List[int],
    iterators: List[int],
    u: int,
    sink: int,
    pushed: float,
) -> float:
    """DFS step of Dinic: push up to ``pushed`` units from ``u`` toward sink."""
    if u == sink:
        return pushed
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    arcs = adjacency[u]
    while iterators[u] < len(arcs):
        arc = arcs[iterators[u]]
        v = heads[arc]
        if caps[arc] > 1e-12 and levels[v] == levels[u] + 1:
            flow = _send_flow(
                network, levels, iterators, v, sink, min(pushed, caps[arc])
            )
            if flow > 1e-12:
                caps[arc] -= flow
                caps[arc ^ 1] += flow
                return flow
        iterators[u] += 1
    return 0.0


def dinic_on_network(
    network: ResidualNetwork,
    source: int,
    sink: int,
    cutoff: Optional[float] = None,
) -> float:
    """Run Dinic on dense vertex indices; mutates the network in place."""
    if network.n == 0 or source == sink:
        return 0.0
    total = 0.0
    levels = [-1] * network.n
    while _build_level_graph(network, source, sink, levels):
        iterators = [0] * network.n
        while True:
            flow = _send_flow(network, levels, iterators, source, sink, _INF)
            if flow <= 1e-12:
                break
            total += flow
            if cutoff is not None and total >= cutoff:
                return total
        if cutoff is not None and total >= cutoff:
            break
    return total


@register_solver("dinic")
def dinic_max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the maximum flow from ``source`` to ``target`` with Dinic."""
    network = ResidualNetwork(graph)
    value = dinic_on_network(
        network, network.index_of(source), network.index_of(target), cutoff=cutoff
    )
    return MaxFlowResult(value=value, source=source, target=target, algorithm="dinic")
