"""Edmonds-Karp (shortest augmenting path) maximum flow.

This is the simplest correct max-flow algorithm — BFS augmenting paths on
the residual network — and serves as a readable oracle for the faster
solvers in tests and as a baseline in the algorithm ablation benchmark.
Complexity :math:`O(V E^2)`.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.base import (
    MaxFlowResult,
    register_network_solver,
    register_solver,
)
from repro.graph.maxflow.residual import ResidualNetwork

Vertex = Hashable
_INF = float("inf")


def _find_augmenting_path(
    network: ResidualNetwork,
    source: int,
    sink: int,
    parent_arc: List[int],
    bottleneck: List[float],
) -> float:
    """BFS for an augmenting path; returns its bottleneck (0 if none)."""
    for i in range(network.n):
        parent_arc[i] = -1
        bottleneck[i] = 0.0
    parent_arc[source] = -2
    bottleneck[source] = _INF
    queue = deque([source])
    popleft = queue.popleft
    append = queue.append
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    while queue:
        u = popleft()
        slack = bottleneck[u]
        for arc in adjacency[u]:
            v = heads[arc]
            if parent_arc[v] == -1 and caps[arc] > 1e-12:
                parent_arc[v] = arc
                capacity = caps[arc]
                bottleneck[v] = slack if slack < capacity else capacity
                if v == sink:
                    return bottleneck[v]
                append(v)
    return 0.0


def edmonds_karp_on_network(
    network: ResidualNetwork,
    source: int,
    sink: int,
    cutoff: Optional[float] = None,
) -> tuple:
    """Run Edmonds-Karp on dense indices; returns (flow value, iterations).

    The parent-arc work array is the network's preallocated scratch
    buffer, so repeated pair queries on one network do not churn
    allocations (the same reuse pattern as :func:`dinic_on_network`).
    """
    if network.n == 0 or source == sink:
        return 0.0, 0
    if cutoff is not None and cutoff <= 0:
        return 0.0, 0
    heads = network.heads
    caps = network.caps
    total = 0.0
    iterations = 0
    parent_arc, _ = network.scratch_buffers()
    bottleneck = [0.0] * network.n
    while True:
        pushed = _find_augmenting_path(network, source, sink, parent_arc, bottleneck)
        if pushed <= 1e-12:
            break
        iterations += 1
        # Walk back from the sink applying the bottleneck.
        v = sink
        while v != source:
            arc = parent_arc[v]
            caps[arc] -= pushed
            caps[arc ^ 1] += pushed
            v = heads[arc ^ 1]
        total += pushed
        if cutoff is not None and total >= cutoff:
            break
    return total, iterations


@register_network_solver("edmonds_karp")
def _edmonds_karp_value(
    network: ResidualNetwork,
    source: int,
    sink: int,
    cutoff: Optional[float] = None,
) -> float:
    """Dense-index entry point returning only the flow value."""
    return edmonds_karp_on_network(network, source, sink, cutoff=cutoff)[0]


@register_solver("edmonds_karp")
def edmonds_karp_max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the maximum flow from ``source`` to ``target`` (Edmonds-Karp)."""
    network = ResidualNetwork(graph)
    value, iterations = edmonds_karp_on_network(
        network, network.index_of(source), network.index_of(target), cutoff=cutoff
    )
    return MaxFlowResult(
        value=value,
        source=source,
        target=target,
        algorithm="edmonds_karp",
        augmentations=iterations,
    )
