"""Highest-label push-relabel maximum flow (the HIPR substitute).

The paper computes max flows with HIPR, the hi-level (highest-label) variant
of the push-relabel algorithm described by Cherkassky & Goldberg, "On
implementing push-relabel method for the maximum flow problem" (IPCO 1995).
This module reimplements that variant in pure Python with the two standard
heuristics that make it fast in practice:

* **gap heuristic** — if no vertex has label ``h`` any more, every vertex
  with a label in ``(h, n)`` can be lifted straight to ``n + 1`` because it
  can no longer reach the sink;
* **global relabeling** — periodically recompute exact distance labels with
  a reverse BFS from the sink.

Worst-case complexity is :math:`O(n^2 \\sqrt{m})`, matching the figure the
paper quotes for HIPR.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Optional

from repro.graph.digraph import DiGraph
from repro.graph.maxflow.base import (
    MaxFlowResult,
    register_network_solver,
    register_solver,
)
from repro.graph.maxflow.residual import ResidualNetwork

Vertex = Hashable

#: Trigger a global relabel after this many relabel operations, expressed as
#: a multiple of the vertex count.  HIPR uses a similar frequency rule.
_GLOBAL_RELABEL_FREQUENCY = 1.0


def _global_relabel(
    network: ResidualNetwork, labels: List[int], sink: int, source: int
) -> None:
    """Recompute exact distance-to-sink labels with a reverse BFS."""
    n = network.n
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency
    for v in range(n):
        labels[v] = 2 * n
    labels[sink] = 0
    queue = deque([sink])
    while queue:
        v = queue.popleft()
        next_label = labels[v] + 1
        for arc in adjacency[v]:
            # Arc ``arc`` goes v -> u; flow could be pushed u -> v iff the
            # reverse arc (arc ^ 1) has residual capacity.
            u = heads[arc]
            if caps[arc ^ 1] > 1e-12 and labels[u] > next_label:
                labels[u] = next_label
                queue.append(u)
    labels[source] = n


@register_network_solver("push_relabel")
def push_relabel_on_network(
    network: ResidualNetwork,
    source: int,
    sink: int,
    cutoff: Optional[float] = None,
) -> float:
    """Run highest-label push-relabel on ``network`` (dense indices).

    The network's residual capacities are mutated in place; callers that
    reuse the network must call :meth:`ResidualNetwork.reset` afterwards.
    Returns the max-flow value.

    ``cutoff`` enables the same early exit as the augmenting-path solvers:
    push-relabel does not build the flow path-by-path, but the excess that
    has arrived at the sink is a monotonically non-decreasing lower bound
    on the final flow value, so once ``excess[sink] >= cutoff`` the search
    stops and returns that excess.  On the unit-capacity Even-transformed
    graphs of the connectivity analysis every push into the sink carries at
    most one unit, so the returned value equals ``min(max flow, cutoff)``
    for integer cutoffs — identical to Dinic and Edmonds-Karp.
    """
    n = network.n
    if n == 0 or source == sink:
        return 0.0
    if cutoff is not None and cutoff <= 0:
        return 0.0
    heads = network.heads
    caps = network.caps
    adjacency = network.adjacency

    excess: List[float] = [0.0] * n
    labels: List[int] = [0] * n
    current_arc: List[int] = [0] * n

    _global_relabel(network, labels, sink, source)

    # Buckets of active vertices by label (highest-label selection).
    buckets: List[List[int]] = [[] for _ in range(2 * n + 1)]
    in_bucket: List[bool] = [False] * n
    highest = 0

    def activate(v: int) -> None:
        nonlocal highest
        if v == source or v == sink or in_bucket[v] or excess[v] <= 1e-12:
            return
        label = labels[v]
        if label >= len(buckets):
            return
        buckets[label].append(v)
        in_bucket[v] = True
        if label > highest:
            highest = label

    # Saturate all source arcs.
    for arc in adjacency[source]:
        capacity = caps[arc]
        if capacity <= 1e-12:
            continue
        v = heads[arc]
        caps[arc] -= capacity
        caps[arc ^ 1] += capacity
        excess[v] += capacity
        excess[source] -= capacity
        activate(v)
    if cutoff is not None and excess[sink] >= cutoff:
        return excess[sink]

    # Count of vertices per label, for the gap heuristic.
    label_count: List[int] = [0] * (2 * n + 1)
    for v in range(n):
        label_count[min(labels[v], 2 * n)] += 1

    relabels_since_global = 0
    relabel_limit = max(1, int(_GLOBAL_RELABEL_FREQUENCY * n))
    work = 0

    while highest >= 0:
        if not buckets[highest]:
            highest -= 1
            continue
        v = buckets[highest].pop()
        in_bucket[v] = False
        if excess[v] <= 1e-12 or v == source or v == sink:
            continue

        arcs = adjacency[v]
        degree = len(arcs)
        while excess[v] > 1e-12:
            if current_arc[v] >= degree:
                # Relabel v: find the minimum admissible label.
                old_label = labels[v]
                min_label = 2 * n
                for arc in arcs:
                    if caps[arc] > 1e-12:
                        candidate = labels[heads[arc]] + 1
                        if candidate < min_label:
                            min_label = candidate
                label_count[min(old_label, 2 * n)] -= 1
                labels[v] = min_label
                label_count[min(min_label, 2 * n)] += 1
                current_arc[v] = 0
                relabels_since_global += 1
                work += degree

                # Gap heuristic: the old label became empty.
                if (
                    old_label < n
                    and label_count[old_label] == 0
                ):
                    for u in range(n):
                        if old_label < labels[u] < n and u != source:
                            label_count[min(labels[u], 2 * n)] -= 1
                            labels[u] = n + 1
                            label_count[min(labels[u], 2 * n)] += 1
                if labels[v] >= 2 * n:
                    break
                if relabels_since_global >= relabel_limit:
                    _global_relabel(network, labels, sink, source)
                    label_count = [0] * (2 * n + 1)
                    for u in range(n):
                        label_count[min(labels[u], 2 * n)] += 1
                    current_arc = [0] * n
                    relabels_since_global = 0
                continue

            arc = arcs[current_arc[v]]
            if caps[arc] > 1e-12 and labels[v] == labels[heads[arc]] + 1:
                # Push.
                u = heads[arc]
                delta = min(excess[v], caps[arc])
                caps[arc] -= delta
                caps[arc ^ 1] += delta
                excess[v] -= delta
                excess[u] += delta
                if u == sink and cutoff is not None and excess[sink] >= cutoff:
                    return excess[sink]
                activate(u)
            else:
                current_arc[v] += 1

        # A vertex that left the inner loop with excess did so because its
        # label reached 2n, i.e. it can no longer reach the sink; its excess
        # is stranded and does not affect the flow into the sink, so it is
        # intentionally not reactivated.

    return excess[sink]


@register_solver("push_relabel")
def push_relabel_max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the maximum flow from ``source`` to ``target``.

    ``cutoff`` stops the search once at least that much flow has reached
    the sink (see :func:`push_relabel_on_network`).
    """
    network = ResidualNetwork(graph)
    value = push_relabel_on_network(
        network, network.index_of(source), network.index_of(target), cutoff=cutoff
    )
    return MaxFlowResult(
        value=value, source=source, target=target, algorithm="push_relabel"
    )
