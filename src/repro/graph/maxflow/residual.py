"""Residual-network representation shared by every max-flow solver.

Vertices of the input :class:`~repro.graph.digraph.DiGraph` are mapped to
dense integer indices so the solvers can use flat lists instead of hash maps
in their inner loops.  Edges are stored in a single arc array where the arc
``i`` and its reverse arc ``i ^ 1`` are adjacent — the standard trick that
makes pushing flow on the residual edge O(1).

For the batched pair-flow engine (:mod:`repro.runtime.pairflow`) the network
can be frozen into a :class:`CompactNetwork` — a flat, ``array``-backed,
picklable snapshot.  One Even-transformed network is built per connectivity
graph, compacted once, shipped to every worker process once (through the
pool initializer), and thawed back into a :class:`ResidualNetwork` there;
no worker ever rebuilds the transformation per pair.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.errors import VertexNotFoundError

Vertex = Hashable


@dataclass(frozen=True)
class CompactNetwork:
    """Flat, picklable snapshot of a :class:`ResidualNetwork`.

    Adjacency is stored in CSR form (``offsets`` has ``n + 1`` entries;
    the arcs leaving vertex ``v`` are ``arcs[offsets[v]:offsets[v + 1]]``)
    and every field is a typed :mod:`array`, so pickling the snapshot costs
    one contiguous buffer copy per field instead of a per-element walk.
    Vertex identity is the dense index itself — callers that need the
    original vertex objects keep their own index mapping (see
    :class:`repro.graph.transform.even_transform.IndexedEvenTransform`).
    """

    n: int
    heads: array
    caps: array
    offsets: array
    arcs: array

    def thaw(self) -> "ResidualNetwork":
        """Rebuild a mutable :class:`ResidualNetwork` from this snapshot."""
        return ResidualNetwork.from_compact(self)

    def arc_count(self) -> int:
        """Return the number of arcs (forward + reverse)."""
        return len(self.heads)


class ResidualNetwork:
    """Arc-list residual network built from a :class:`DiGraph`.

    Attributes
    ----------
    n:
        Number of vertices.
    heads:
        ``heads[a]`` is the head vertex index of arc ``a``.
    caps:
        ``caps[a]`` is the residual capacity of arc ``a``.
    adjacency:
        ``adjacency[v]`` is the list of arc indices leaving ``v``.
    """

    __slots__ = (
        "n",
        "heads",
        "caps",
        "adjacency",
        "_index_of",
        "_vertex_of",
        "_initial_caps",
        "_levels",
        "_iters",
    )

    def __init__(self, graph: Optional[DiGraph]) -> None:
        self._levels: Optional[List[int]] = None
        self._iters: Optional[List[int]] = None
        if graph is None:  # shell for the alternate constructors
            self.n = 0
            self._index_of: Dict[Vertex, int] = {}
            self._vertex_of: List[Vertex] = []
            self.heads: List[int] = []
            self.caps: List[float] = []
            self.adjacency: List[List[int]] = []
            self._initial_caps: List[float] = []
            return
        vertices = graph.vertices()
        self.n = len(vertices)
        self._index_of = {v: i for i, v in enumerate(vertices)}
        self._vertex_of = vertices
        self.heads = []
        self.caps = []
        self.adjacency = [[] for _ in range(self.n)]
        for source, target, capacity in graph.edges():
            self._add_arc(self._index_of[source], self._index_of[target], capacity)
        self._initial_caps = list(self.caps)

    # ------------------------------------------------------------------
    @classmethod
    def from_arcs(
        cls,
        n: int,
        forward_arcs: Sequence[Tuple[int, int, float]],
        vertex_of: Optional[Sequence[Vertex]] = None,
    ) -> "ResidualNetwork":
        """Build a network directly from ``(tail, head, capacity)`` triples.

        Bypasses the :class:`DiGraph` construction entirely — the batched
        pair-flow path emits the Even-transformed graph straight as integer
        arcs, so there is no dict-of-dict intermediate to build or walk.
        When ``vertex_of`` is omitted, vertices are their own indices.
        """
        network = cls(None)
        network.n = n
        labels = list(vertex_of) if vertex_of is not None else list(range(n))
        network._vertex_of = labels
        network._index_of = {v: i for i, v in enumerate(labels)}
        network.adjacency = [[] for _ in range(n)]
        for tail, head, capacity in forward_arcs:
            network._add_arc(tail, head, capacity)
        network._initial_caps = list(network.caps)
        return network

    @classmethod
    def from_compact(cls, compact: "CompactNetwork") -> "ResidualNetwork":
        """Thaw a :class:`CompactNetwork` snapshot into a mutable network.

        The heads/caps buffers are converted back to plain lists because
        list indexing is measurably faster than ``array`` indexing in the
        solvers' inner loops; the conversion is a one-time O(m) cost per
        worker process.
        """
        network = cls(None)
        n = compact.n
        network.n = n
        network._vertex_of = list(range(n))
        network._index_of = {i: i for i in range(n)}
        network.heads = list(compact.heads)
        network.caps = list(compact.caps)
        offsets = compact.offsets
        arcs = compact.arcs
        network.adjacency = [
            list(arcs[offsets[v]:offsets[v + 1]]) for v in range(n)
        ]
        network._initial_caps = list(compact.caps)
        return network

    def compact(self) -> CompactNetwork:
        """Freeze the *initial* capacities into a picklable snapshot."""
        offsets = array("q", [0] * (self.n + 1))
        total = 0
        for v in range(self.n):
            offsets[v] = total
            total += len(self.adjacency[v])
        offsets[self.n] = total
        flat_arcs = array("q", [arc for arcs in self.adjacency for arc in arcs])
        return CompactNetwork(
            n=self.n,
            heads=array("q", self.heads),
            caps=array("d", self._initial_caps),
            offsets=offsets,
            arcs=flat_arcs,
        )

    # ------------------------------------------------------------------
    def _add_arc(self, u: int, v: int, capacity: float) -> None:
        """Add forward arc u->v with ``capacity`` and reverse arc v->u with 0."""
        self.adjacency[u].append(len(self.heads))
        self.heads.append(v)
        self.caps.append(capacity)
        self.adjacency[v].append(len(self.heads))
        self.heads.append(u)
        self.caps.append(0.0)

    # ------------------------------------------------------------------
    def scratch_buffers(self) -> Tuple[List[int], List[int]]:
        """Return the preallocated ``(levels, iterators)`` work arrays.

        The BFS/DFS solvers overwrite both arrays fully before reading
        them, so they can be shared across calls; allocating them once per
        network (instead of twice per max-flow query) matters when one
        Even-transformed network answers thousands of pair queries.
        """
        if self._levels is None or len(self._levels) != self.n:
            self._levels = [0] * self.n
            self._iters = [0] * self.n
        return self._levels, self._iters  # type: ignore[return-value]
    def index_of(self, vertex: Vertex) -> int:
        """Return the dense index of ``vertex``."""
        try:
            return self._index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_of(self, index: int) -> Vertex:
        """Return the original vertex for a dense index."""
        return self._vertex_of[index]

    def reset(self) -> None:
        """Restore all residual capacities to their initial values.

        Solvers mutate ``caps`` in place; resetting lets one network object
        be reused for many source/target pairs, which is exactly the access
        pattern of the global-connectivity computation (one transformed graph,
        many max-flow queries).
        """
        self.caps[:] = self._initial_caps

    def flow_on_arc(self, arc: int) -> float:
        """Return the flow currently routed through forward arc ``arc``."""
        return self._initial_caps[arc] - self.caps[arc]

    def arc_count(self) -> int:
        """Return the number of arcs (forward + reverse)."""
        return len(self.heads)

    def min_cut_reachable(self, source_index: int) -> List[int]:
        """Vertices reachable from ``source_index`` in the residual network.

        After a max-flow computation the reachable set defines the source
        side of a minimum cut, which tests use to verify the max-flow
        min-cut theorem.
        """
        seen = [False] * self.n
        seen[source_index] = True
        stack = [source_index]
        while stack:
            u = stack.pop()
            for arc in self.adjacency[u]:
                if self.caps[arc] > 1e-12 and not seen[self.heads[arc]]:
                    seen[self.heads[arc]] = True
                    stack.append(self.heads[arc])
        return [i for i, flag in enumerate(seen) if flag]
