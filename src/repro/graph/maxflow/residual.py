"""Residual-network representation shared by every max-flow solver.

Vertices of the input :class:`~repro.graph.digraph.DiGraph` are mapped to
dense integer indices so the solvers can use flat lists instead of hash maps
in their inner loops.  Edges are stored in a single arc array where the arc
``i`` and its reverse arc ``i ^ 1`` are adjacent — the standard trick that
makes pushing flow on the residual edge O(1).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.errors import VertexNotFoundError

Vertex = Hashable


class ResidualNetwork:
    """Arc-list residual network built from a :class:`DiGraph`.

    Attributes
    ----------
    n:
        Number of vertices.
    heads:
        ``heads[a]`` is the head vertex index of arc ``a``.
    caps:
        ``caps[a]`` is the residual capacity of arc ``a``.
    adjacency:
        ``adjacency[v]`` is the list of arc indices leaving ``v``.
    """

    __slots__ = (
        "n",
        "heads",
        "caps",
        "adjacency",
        "_index_of",
        "_vertex_of",
        "_initial_caps",
    )

    def __init__(self, graph: DiGraph) -> None:
        vertices = graph.vertices()
        self.n: int = len(vertices)
        self._index_of: Dict[Vertex, int] = {v: i for i, v in enumerate(vertices)}
        self._vertex_of: List[Vertex] = vertices
        self.heads: List[int] = []
        self.caps: List[float] = []
        self.adjacency: List[List[int]] = [[] for _ in range(self.n)]
        for source, target, capacity in graph.edges():
            self._add_arc(self._index_of[source], self._index_of[target], capacity)
        self._initial_caps: List[float] = list(self.caps)

    # ------------------------------------------------------------------
    def _add_arc(self, u: int, v: int, capacity: float) -> None:
        """Add forward arc u->v with ``capacity`` and reverse arc v->u with 0."""
        self.adjacency[u].append(len(self.heads))
        self.heads.append(v)
        self.caps.append(capacity)
        self.adjacency[v].append(len(self.heads))
        self.heads.append(u)
        self.caps.append(0.0)

    # ------------------------------------------------------------------
    def index_of(self, vertex: Vertex) -> int:
        """Return the dense index of ``vertex``."""
        try:
            return self._index_of[vertex]
        except KeyError:
            raise VertexNotFoundError(vertex) from None

    def vertex_of(self, index: int) -> Vertex:
        """Return the original vertex for a dense index."""
        return self._vertex_of[index]

    def reset(self) -> None:
        """Restore all residual capacities to their initial values.

        Solvers mutate ``caps`` in place; resetting lets one network object
        be reused for many source/target pairs, which is exactly the access
        pattern of the global-connectivity computation (one transformed graph,
        many max-flow queries).
        """
        self.caps[:] = self._initial_caps

    def flow_on_arc(self, arc: int) -> float:
        """Return the flow currently routed through forward arc ``arc``."""
        return self._initial_caps[arc] - self.caps[arc]

    def arc_count(self) -> int:
        """Return the number of arcs (forward + reverse)."""
        return len(self.heads)

    def min_cut_reachable(self, source_index: int) -> List[int]:
        """Vertices reachable from ``source_index`` in the residual network.

        After a max-flow computation the reachable set defines the source
        side of a minimum cut, which tests use to verify the max-flow
        min-cut theorem.
        """
        seen = [False] * self.n
        seen[source_index] = True
        stack = [source_index]
        while stack:
            u = stack.pop()
            for arc in self.adjacency[u]:
                if self.caps[arc] > 1e-12 and not seen[self.heads[arc]]:
                    seen[self.heads[arc]] = True
                    stack.append(self.heads[arc])
        return [i for i, flag in enumerate(seen) if flag]
