"""Common result type and solver dispatch for max-flow computations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Optional

from repro.graph.digraph import DiGraph

Vertex = Hashable


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a single max-flow computation.

    Attributes
    ----------
    value:
        The maximum flow value from ``source`` to ``target``.
    source, target:
        The query endpoints (original graph vertices).
    algorithm:
        Name of the solver that produced the result.
    augmentations:
        Number of augmenting paths / relabel passes, for diagnostics.
    """

    value: float
    source: Vertex
    target: Vertex
    algorithm: str
    augmentations: int = 0

    def as_int(self) -> int:
        """Return the flow value rounded to the nearest integer.

        Connectivity graphs have unit capacities, so flows are integral;
        rounding guards against floating-point noise.
        """
        return int(round(self.value))


SolverFunc = Callable[..., MaxFlowResult]

#: Registry of available solvers, keyed by name.  Populated by the solver
#: modules at import time (see :mod:`repro.graph.maxflow.__init__`).
SOLVERS: Dict[str, SolverFunc] = {}


def register_solver(name: str) -> Callable[[SolverFunc], SolverFunc]:
    """Class decorator registering a solver function under ``name``."""

    def decorator(func: SolverFunc) -> SolverFunc:
        SOLVERS[name] = func
        return func

    return decorator


def max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    algorithm: str = "push_relabel",
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the max flow from ``source`` to ``target`` using ``algorithm``.

    Parameters
    ----------
    graph:
        The capacitated directed graph.
    source, target:
        Query endpoints; must be distinct vertices of ``graph``.
    algorithm:
        One of ``"push_relabel"`` (default, the HIPR-equivalent),
        ``"dinic"`` or ``"edmonds_karp"``.
    cutoff:
        Optional early-termination threshold: solvers that support it stop
        as soon as the flow value reaches ``cutoff``.  The global
        connectivity search uses this to avoid computing flows larger than
        the current minimum.
    """
    if algorithm not in SOLVERS:
        raise ValueError(
            f"unknown max-flow algorithm {algorithm!r}; "
            f"available: {sorted(SOLVERS)}"
        )
    if source == target:
        raise ValueError("source and target must be distinct")
    return SOLVERS[algorithm](graph, source, target, cutoff=cutoff)
