"""Common result type and solver dispatch for max-flow computations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional

from repro.graph.digraph import DiGraph

Vertex = Hashable


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a single max-flow computation.

    Attributes
    ----------
    value:
        The maximum flow value from ``source`` to ``target``.
    source, target:
        The query endpoints (original graph vertices).
    algorithm:
        Name of the solver that produced the result.
    augmentations:
        Number of augmenting paths / relabel passes, for diagnostics.
    """

    value: float
    source: Vertex
    target: Vertex
    algorithm: str
    augmentations: int = 0

    def as_int(self) -> int:
        """Return the flow value rounded to the nearest integer.

        Connectivity graphs have unit capacities, so flows are integral;
        rounding guards against floating-point noise.
        """
        return int(round(self.value))


SolverFunc = Callable[..., MaxFlowResult]

#: Registry of available solvers, keyed by name.  Populated by the solver
#: modules at import time (see :mod:`repro.graph.maxflow.__init__`).
SOLVERS: Dict[str, SolverFunc] = {}

#: Registry of the dense-index solver entry points
#: ``fn(network, source, sink, cutoff=None) -> float``.  This is the form
#: the connectivity hot paths use (one prebuilt network, many pair
#: queries); populated by the solver modules alongside :data:`SOLVERS`.
NETWORK_SOLVERS: Dict[str, Callable[..., float]] = {}


def register_solver(name: str) -> Callable[[SolverFunc], SolverFunc]:
    """Class decorator registering a solver function under ``name``."""

    def decorator(func: SolverFunc) -> SolverFunc:
        SOLVERS[name] = func
        return func

    return decorator


def register_network_solver(
    name: str,
) -> Callable[[Callable[..., float]], Callable[..., float]]:
    """Decorator registering a dense-index solver under ``name``."""

    def decorator(func: Callable[..., float]) -> Callable[..., float]:
        NETWORK_SOLVERS[name] = func
        return func

    return decorator


def network_flow_function(algorithm: str) -> Callable[..., float]:
    """Return the registered dense-index solver for ``algorithm``.

    All three solvers honour ``cutoff`` identically: the returned value is
    exact when it is below the cutoff, and at least the cutoff otherwise
    (on unit-capacity graphs with integer cutoffs, exactly
    ``min(max flow, cutoff)``).
    """
    try:
        return NETWORK_SOLVERS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; "
            f"available: {sorted(NETWORK_SOLVERS)}"
        ) from None


def max_flow(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    algorithm: str = "push_relabel",
    cutoff: Optional[float] = None,
) -> MaxFlowResult:
    """Compute the max flow from ``source`` to ``target`` using ``algorithm``.

    Parameters
    ----------
    graph:
        The capacitated directed graph.
    source, target:
        Query endpoints; must be distinct vertices of ``graph``.
    algorithm:
        One of ``"push_relabel"`` (default, the HIPR-equivalent),
        ``"dinic"`` or ``"edmonds_karp"``.
    cutoff:
        Optional early-termination threshold: solvers that support it stop
        as soon as the flow value reaches ``cutoff``.  The global
        connectivity search uses this to avoid computing flows larger than
        the current minimum.
    """
    if algorithm not in SOLVERS:
        raise ValueError(
            f"unknown max-flow algorithm {algorithm!r}; "
            f"available: {sorted(SOLVERS)}"
        )
    if source == target:
        raise ValueError("source and target must be distinct")
    return SOLVERS[algorithm](graph, source, target, cutoff=cutoff)
