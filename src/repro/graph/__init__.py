"""Directed-graph substrate used by the connectivity analysis.

The paper's tool-chain used a Java graph representation plus the C max-flow
solver HIPR.  This subpackage replaces both with pure-Python code:

* :class:`repro.graph.digraph.DiGraph` — a compact adjacency-based directed
  graph with per-edge capacities.
* :mod:`repro.graph.maxflow` — max-flow solvers (highest-label push-relabel,
  Dinic, Edmonds-Karp) sharing one residual-network representation.
* :mod:`repro.graph.transform` — Even's vertex-splitting transformation that
  turns vertex-connectivity queries into max-flow queries.
* :mod:`repro.graph.io` — DIMACS and edge-list readers/writers.
* :mod:`repro.graph.algorithms` — BFS/DFS, connected components, strongly
  connected components and degree statistics.
"""

from repro.graph.digraph import DiGraph
from repro.graph.errors import GraphError, NegativeCapacityError, VertexNotFoundError
from repro.graph.maxflow import (
    MaxFlowResult,
    dinic_max_flow,
    edmonds_karp_max_flow,
    max_flow,
    push_relabel_max_flow,
)
from repro.graph.transform.even_transform import (
    EvenTransform,
    IndexedEvenTransform,
    even_transform,
    indexed_even_transform,
)

__all__ = [
    "DiGraph",
    "EvenTransform",
    "GraphError",
    "IndexedEvenTransform",
    "MaxFlowResult",
    "NegativeCapacityError",
    "VertexNotFoundError",
    "dinic_max_flow",
    "edmonds_karp_max_flow",
    "even_transform",
    "indexed_even_transform",
    "max_flow",
    "push_relabel_max_flow",
]
