"""High-level connectivity analyzer used at every snapshot.

The analyzer packages the paper's measurement pipeline (Sections 4.2–4.4 and
the sampling reduction of Section 5.2) into one object with a configurable
cost/exactness trade-off:

* **exact mode** (``source_fraction=None``) — every vertex is a flow source,
  every non-adjacent vertex a target; used as the oracle in tests and for
  small graphs.
* **sampled mode** (default) — a two-pass scheme per snapshot:

  1. *minimum pass*: the strongly-connected-components check settles
     ``kappa = 0`` exactly (a graph that is not strongly connected has a
     pair with no path at all).  Otherwise flow sources are the vertices
     with the smallest out-degree and flow targets the vertices with the
     smallest in-degree (a two-sided variant of the paper's ``c * n``
     lowest-out-degree source sampling), with each flow cut off at the
     running minimum.
  2. *average pass*: uniformly random non-adjacent ordered pairs are
     evaluated without cutoffs, giving an unbiased estimate of the mean
     pairwise connectivity (the figures' "Avg" series).

Both deviations from the paper's single-pass sampling are substitutions for
the missing compute cluster and are documented in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import random
import time as wallclock
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.core.connectivity_graph import build_connectivity_graph, disconnected_vertices
from repro.core.resilience import resilience_of
from repro.core.vertex_connectivity import (
    connectivity_statistics,
    lowest_in_degree_vertices,
    lowest_out_degree_vertices,
    sample_non_adjacent_pairs,
)
from repro.graph.algorithms.components import strongly_connected_components
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class ConnectivityReport:
    """Everything the experiments record about one connectivity graph.

    Attributes
    ----------
    minimum / average:
        The "Min" and "Avg" connectivity series of the paper's figures.
    resilience:
        ``max(minimum - 1, 0)`` — the number of compromised nodes the
        network tolerates (Equation 2).
    vertex_count / edge_count:
        Size of the connectivity graph.
    disconnected_count:
        Number of vertices with in- or out-degree 0 (the paper's
        "disconnected nodes" that drive the minimum to zero after setup).
    strongly_connected:
        Whether the graph is one strongly connected component.
    symmetry_ratio:
        Fraction of edges whose reverse also exists (Section 5.2 argues
        this is close to 1, justifying the source-sampling reduction).
    min_pairs_evaluated / avg_pairs_evaluated:
        Number of max-flow computations spent on each pass.
    exact:
        True when the minimum was computed over all vertex pairs.
    elapsed_seconds:
        Wall-clock cost of the analysis (for the scaling discussion).
    """

    minimum: int
    average: float
    resilience: int
    vertex_count: int
    edge_count: int
    disconnected_count: int
    strongly_connected: bool
    symmetry_ratio: float
    min_pairs_evaluated: int
    avg_pairs_evaluated: int
    exact: bool
    elapsed_seconds: float

    # -- shared report protocol ----------------------------------------
    # Exact and estimated reports (see repro.core.estimation) expose the
    # same four accessors so downstream tables, figures and obs code
    # never branch on the result class.
    @property
    def min_connectivity(self) -> int:
        """Protocol accessor: the reported minimum connectivity."""
        return self.minimum

    @property
    def avg_connectivity(self) -> float:
        """Protocol accessor: the reported average connectivity."""
        return self.average

    @property
    def is_exact(self) -> bool:
        """Protocol accessor: True — this class carries measured values.

        (The ``exact`` field distinguishes full-pair from sampled-pair
        measurement *within* the exact pipeline; either way the values
        are real flow computations, not statistical estimates.)
        """
        return True

    @property
    def confidence_interval(self) -> Optional[Tuple[float, float]]:
        """Protocol accessor: None — exact-mode reports carry no CI."""
        return None

    def as_dict(self) -> dict:
        """Return the report as a plain dictionary (JSON-friendly)."""
        return {
            "minimum": self.minimum,
            "average": self.average,
            "resilience": self.resilience,
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "disconnected_count": self.disconnected_count,
            "strongly_connected": self.strongly_connected,
            "symmetry_ratio": self.symmetry_ratio,
            "min_pairs_evaluated": self.min_pairs_evaluated,
            "avg_pairs_evaluated": self.avg_pairs_evaluated,
            "exact": self.exact,
            "elapsed_seconds": self.elapsed_seconds,
        }


class FlowEngineHost:
    """Shared engine plumbing of the exact analyzer and the estimator.

    Owns the max-flow engine configuration (algorithm, worker count,
    shard geometry, adaptive scheduling) and the lazily opened worker
    pool that persists across every snapshot the host sees.  Subclasses
    implement ``analyze_graph`` / ``analyze_snapshot`` on top of
    :meth:`_make_engine`.
    """

    def __init__(
        self,
        algorithm: str = "dinic",
        flow_jobs: int = 1,
        flow_shard_size: Optional[int] = None,
        flow_wave_width: Optional[int] = None,
        adaptive_shards: bool = False,
    ) -> None:
        if flow_jobs < 1:
            raise ValueError("flow_jobs must be >= 1")
        self.algorithm = algorithm
        self.flow_jobs = flow_jobs
        self.flow_shard_size = flow_shard_size
        self.flow_wave_width = flow_wave_width
        self.adaptive_shards = adaptive_shards
        self._pair_costs = None
        if adaptive_shards:
            from repro.runtime.costmodel import PairCostTracker

            self._pair_costs = PairCostTracker()
        self._flow_session = None

    # ------------------------------------------------------------------
    # Worker-pool lifetime.  One host typically serves every snapshot of
    # a run; with flow_jobs > 1 the process pool is opened on the first
    # analysis and reused until close() — only the compact network differs
    # between snapshots, the workers persist (ROADMAP: pool reuse across
    # consecutive snapshots).
    # ------------------------------------------------------------------
    def _flow_pool(self):
        """Return (opening lazily) the shared worker-pool session, or None."""
        if self.flow_jobs <= 1:
            return None
        if self._flow_session is None:
            from repro.runtime.executor import make_executor

            self._flow_session = make_executor(self.flow_jobs).open_session()
        return self._flow_session

    def close(self) -> None:
        """Release the shared worker pool (idempotent; serial is a no-op)."""
        session, self._flow_session = self._flow_session, None
        if session is not None:
            session.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _make_engine(self, graph: DiGraph):
        """Build the pair-flow engine for one connectivity graph.

        Imported lazily: ``repro.runtime`` depends on the experiments
        layer, which imports this module — resolving the engine at call
        time keeps the package import graph acyclic.
        """
        from repro.runtime.pairflow import (
            DEFAULT_SHARD_SIZE,
            DEFAULT_WAVE_WIDTH,
            PairFlowEngine,
        )

        return PairFlowEngine(
            graph,
            algorithm=self.algorithm,
            flow_jobs=self.flow_jobs,
            shard_size=(
                DEFAULT_SHARD_SIZE
                if self.flow_shard_size is None
                else self.flow_shard_size
            ),
            wave_width=(
                DEFAULT_WAVE_WIDTH
                if self.flow_wave_width is None
                else self.flow_wave_width
            ),
            adaptive=self.adaptive_shards,
            cost_tracker=self._pair_costs,
            session=self._flow_pool(),
        )


class ConnectivityAnalyzer(FlowEngineHost):
    """Computes :class:`ConnectivityReport` objects from connectivity graphs.

    Parameters
    ----------
    algorithm:
        Max-flow algorithm used for the pairwise computations.
    source_fraction:
        The paper's ``c`` — fraction of lowest-out-degree vertices used as
        flow sources in the minimum pass.  ``None`` selects every vertex
        (exact mode).
    target_fraction:
        Fraction of lowest-in-degree vertices used as flow targets in the
        minimum pass (ignored in exact mode).
    min_sources / min_targets:
        Lower bounds on the sampled counts, so tiny graphs still evaluate a
        meaningful set of pairs.
    average_pairs:
        Number of random non-adjacent pairs evaluated (without cutoff) for
        the "Avg" series.  0 disables the average pass (the average is then
        reported equal to the minimum).
    seed:
        Seed of the internal sampling stream.
    flow_jobs:
        Worker processes for the batched pair-flow engine
        (:class:`repro.runtime.pairflow.PairFlowEngine`).  ``1`` (default)
        evaluates shards in-process; any value produces bit-identical
        reports because the engine's shard/wave structure is independent
        of the worker count.
    flow_shard_size / flow_wave_width:
        Engine scheduling granularity overrides (``None`` keeps the
        engine defaults).
    adaptive_shards:
        Enable the engine's cost-aware scheduling (shard sizes derived
        from the observed per-pair cost, tightness-ordered minimum
        passes).  One cost tracker is shared across every snapshot the
        analyzer sees, so costs observed early in a run schedule the
        later snapshots.  Purely an execution knob: reports are
        bit-identical with it on or off (the order-invariance guarantee
        asserted by the determinism digest suite).
    """

    def __init__(
        self,
        algorithm: str = "dinic",
        source_fraction: Optional[float] = 0.05,
        target_fraction: float = 0.05,
        min_sources: int = 4,
        min_targets: int = 8,
        average_pairs: int = 48,
        seed: int = 0,
        flow_jobs: int = 1,
        flow_shard_size: Optional[int] = None,
        flow_wave_width: Optional[int] = None,
        adaptive_shards: bool = False,
    ) -> None:
        if source_fraction is not None and source_fraction <= 0:
            raise ValueError("source_fraction must be positive or None")
        if target_fraction <= 0:
            raise ValueError("target_fraction must be positive")
        super().__init__(
            algorithm=algorithm,
            flow_jobs=flow_jobs,
            flow_shard_size=flow_shard_size,
            flow_wave_width=flow_wave_width,
            adaptive_shards=adaptive_shards,
        )
        self.source_fraction = source_fraction
        self.target_fraction = target_fraction
        self.min_sources = min_sources
        self.min_targets = min_targets
        self.average_pairs = average_pairs
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    def analyze_graph(self, graph: DiGraph) -> ConnectivityReport:
        """Analyze an already-built connectivity graph."""
        started = wallclock.perf_counter()
        n = graph.number_of_vertices()
        disconnected = disconnected_vertices(graph)
        scc_count = len(strongly_connected_components(graph)) if n else 0
        strongly_connected = scc_count <= 1

        if n <= 1:
            elapsed = wallclock.perf_counter() - started
            return self._report(
                minimum=0, average=0.0, graph=graph, disconnected=disconnected,
                strongly_connected=True, min_pairs=0, avg_pairs=0, exact=True,
                elapsed=elapsed,
            )

        if self.source_fraction is None:
            stats = connectivity_statistics(graph, algorithm=self.algorithm)
            elapsed = wallclock.perf_counter() - started
            return self._report(
                minimum=stats.minimum, average=stats.average, graph=graph,
                disconnected=disconnected, strongly_connected=strongly_connected,
                min_pairs=stats.pairs_evaluated, avg_pairs=stats.pairs_evaluated,
                exact=True, elapsed=elapsed,
            )

        if graph.is_complete():
            elapsed = wallclock.perf_counter() - started
            return self._report(
                minimum=n - 1, average=float(n - 1), graph=graph,
                disconnected=disconnected, strongly_connected=strongly_connected,
                min_pairs=0, avg_pairs=0, exact=True, elapsed=elapsed,
            )

        # One Even-transformed network is built here and reused for every
        # pair of both passes; with flow_jobs > 1 the surrounding ``with``
        # additionally pins one worker pool (the network ships to each
        # worker once) across both passes.
        with self._make_engine(graph) as engine:
            # Minimum pass.  A graph that is not strongly connected
            # contains a pair with no directed path, so its connectivity
            # is exactly 0 and no flow computation is needed.
            min_pairs = 0
            if not strongly_connected:
                minimum = 0
            else:
                source_count = max(
                    self.min_sources, math.ceil(self.source_fraction * n)
                )
                target_count = max(
                    self.min_targets, math.ceil(self.target_fraction * n)
                )
                sources = lowest_out_degree_vertices(graph, min(source_count, n))
                targets = lowest_in_degree_vertices(graph, min(target_count, n))
                degree_bound = min(graph.min_out_degree(), graph.min_in_degree())
                minimum, min_pairs = engine.minimum_over(
                    sources, targets, initial_minimum=degree_bound
                )

            # Average pass (unbiased, no cutoffs).  The pairs are sampled
            # before evaluation — the rng stream depends only on the graph,
            # so serial and parallel runs see identical pairs.
            if self.average_pairs > 0:
                average, avg_pairs = engine.average_over(
                    sample_non_adjacent_pairs(graph, self.average_pairs, self._rng)
                )
                if avg_pairs == 0:
                    average = float(minimum)
            else:
                average, avg_pairs = float(minimum), 0

        elapsed = wallclock.perf_counter() - started
        return self._report(
            minimum=minimum, average=average, graph=graph,
            disconnected=disconnected, strongly_connected=strongly_connected,
            min_pairs=min_pairs, avg_pairs=avg_pairs, exact=False, elapsed=elapsed,
        )

    def analyze_snapshot(
        self,
        routing_tables: Mapping[int, Sequence[int]],
        alive_nodes: Optional[Sequence[int]] = None,
    ) -> ConnectivityReport:
        """Build the connectivity graph from a snapshot and analyze it."""
        graph = build_connectivity_graph(routing_tables, alive_nodes=alive_nodes)
        return self.analyze_graph(graph)

    # ------------------------------------------------------------------
    def _report(
        self,
        minimum: int,
        average: float,
        graph: DiGraph,
        disconnected,
        strongly_connected: bool,
        min_pairs: int,
        avg_pairs: int,
        exact: bool,
        elapsed: float,
    ) -> ConnectivityReport:
        return ConnectivityReport(
            minimum=minimum,
            average=average,
            resilience=resilience_of(minimum),
            vertex_count=graph.number_of_vertices(),
            edge_count=graph.number_of_edges(),
            disconnected_count=len(disconnected),
            strongly_connected=strongly_connected,
            symmetry_ratio=graph.symmetry_ratio(),
            min_pairs_evaluated=min_pairs,
            avg_pairs_evaluated=avg_pairs,
            exact=exact,
            elapsed_seconds=elapsed,
        )
