"""Sampled-pair connectivity estimation for deployment-scale graphs.

The paper's exact pipeline costs O(n^2) max-flows per snapshot (~250
CPU-hours for one 2500-node graph), which caps the reproduction at
paper scale.  This module is the road past that limit: a seeded,
deterministic estimator that analyzes 10^4-10^6-node connectivity
graphs with a fixed flow budget.

Estimation scheme
-----------------
*Average connectivity* — ordered non-adjacent pairs are sampled
**stratified by degree bound**: vertices are ranked by out-degree and
split into contiguous strata, each stratum receives a share of the pair
budget proportional to its number of non-adjacent ordered pairs (the
exact per-stratum population size, computable in O(n)), and every
sampled pair is evaluated *exactly* through the batched
:class:`~repro.runtime.pairflow.PairFlowEngine` — so ``--flow-jobs``,
adaptive shards and the distributed backend apply unchanged.  The
stratified mean is reported with a confidence interval built from the
per-stratum sample variance plus one pseudo-observation at the
conservative range variance (Popoviciu's ``B^2/4`` for values bounded
by the stratum's degree bound ``B``) — the regularisation keeps tiny
samples from reporting a dishonest zero-width interval and makes the
width a smooth, strictly shrinking function of the budget on
homogeneous graphs.  The whole computation is a pure function of
``(graph, seed, budget)``: the rng stream never depends on a flow
value, so serial, parallel and distributed runs report identical
estimates bit for bit.

*Minimum connectivity* — a branch-and-bound **bound**, not an exact
minimum: candidates are the lowest-out-degree x lowest-in-degree corner
of the pair grid (the paper's ``c * n`` sampling, Section 5.2),
evaluated in ascending order of their degree bound
``min(out_degree(s), in_degree(t))`` (the PR 4 tightness ordering) with
the running minimum as the flow cutoff.  Because the order is
ascending, the first candidate whose bound reaches the running minimum
prunes *every* remaining candidate.  The reported value is an upper
bound on ``kappa(D)``; the explicit ``min_is_exact`` flag is True only
when the bound is provably tight (graph not strongly connected,
complete graph, bound 0, or the sample exhausted every non-adjacent
pair).

Exact recovery — when the requested budget covers every non-adjacent
ordered pair, the estimator enumerates them all: the average equals the
exhaustive mean, the interval collapses to zero width and
``min_is_exact`` is True.

Results ship as :class:`EstimatedConnectivityReport` — deliberately
**not** bit-compatible with the exact pipeline's
:class:`~repro.core.analyzer.ConnectivityReport` (its own task
fingerprint dimension, its own persisted encoding) — but both satisfy
the shared report protocol (``min_connectivity`` / ``avg_connectivity``
/ ``is_exact`` / ``confidence_interval``) so downstream tables, figures
and observability never branch on the result class.
"""

from __future__ import annotations

import math
import random
import time as wallclock
import warnings
from dataclasses import dataclass
from statistics import NormalDist
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.core.analyzer import FlowEngineHost
from repro.core.connectivity_graph import build_connectivity_graph, disconnected_vertices
from repro.core.resilience import resilience_of
from repro.graph.algorithms.components import strongly_connected_components
from repro.graph.digraph import DiGraph

#: Default ordered-pair budget of the average pass.
DEFAULT_SAMPLE_PAIRS = 256
#: Default two-sided confidence level of the reported interval.
DEFAULT_CI_LEVEL = 0.95
#: Default number of degree-bound strata for the average pass.
DEFAULT_STRATA = 4
#: Minimum-pass candidate corner: ``max(MIN_CANDIDATES, ceil(frac * n))``
#: lowest-out-degree sources x lowest-in-degree targets.
DEFAULT_MIN_FRACTION = 0.02
DEFAULT_MIN_CANDIDATES = 8
#: Pairs dispatched per branch-and-bound block of the minimum pass (the
#: running minimum is re-read between blocks, so a small block prunes
#: early; within a block the engine's cutoff propagation does the work).
_MIN_BLOCK = 32


@dataclass(frozen=True)
class EstimatedConnectivityReport:
    """Estimate-mode counterpart of :class:`ConnectivityReport`.

    Attributes
    ----------
    minimum_bound / min_is_exact:
        Branch-and-bound upper bound on ``kappa(D)`` and whether it is
        provably the exact minimum (see module docstring).
    average_estimate / ci_low / ci_high / ci_level:
        Stratified estimate of the mean pairwise connectivity and its
        two-sided confidence interval at ``ci_level``.
    sample_pairs / pairs_sampled:
        Requested pair budget and the number of pairs actually drawn for
        the average pass (rejection sampling on near-complete strata can
        fall short of the quota).
    pairs_pruned:
        Minimum-pass candidates skipped because the ascending degree-
        bound order proved they could not lower the bound further.
    min_pairs_evaluated / avg_pairs_evaluated:
        Max-flow computations spent on each pass.
    resilience:
        ``max(minimum_bound - 1, 0)`` — an upper bound on the tolerated
        attacker budget (Equation 2), exact iff ``min_is_exact``.
    vertex_count / edge_count / disconnected_count / strongly_connected /
    symmetry_ratio / seed / elapsed_seconds:
        Same meaning as on the exact report.
    """

    minimum_bound: int
    min_is_exact: bool
    average_estimate: float
    ci_low: float
    ci_high: float
    ci_level: float
    sample_pairs: int
    pairs_sampled: int
    pairs_pruned: int
    min_pairs_evaluated: int
    avg_pairs_evaluated: int
    resilience: int
    vertex_count: int
    edge_count: int
    disconnected_count: int
    strongly_connected: bool
    symmetry_ratio: float
    seed: int
    elapsed_seconds: float

    # -- shared report protocol (see ConnectivityReport) ----------------
    @property
    def min_connectivity(self) -> int:
        """Protocol accessor: the reported minimum (here: an upper bound)."""
        return self.minimum_bound

    @property
    def avg_connectivity(self) -> float:
        """Protocol accessor: the reported average connectivity."""
        return self.average_estimate

    @property
    def is_exact(self) -> bool:
        """Protocol accessor: estimated reports are never exact-mode."""
        return False

    @property
    def confidence_interval(self) -> Tuple[float, float]:
        """Protocol accessor: ``(ci_low, ci_high)``."""
        return (self.ci_low, self.ci_high)

    @property
    def ci_width(self) -> float:
        """Width of the confidence interval (0.0 on exact recovery)."""
        return self.ci_high - self.ci_low

    # -- legacy attribute aliases (deprecated) --------------------------
    @property
    def minimum(self) -> int:
        """Deprecated alias for :attr:`minimum_bound`."""
        warnings.warn(
            "EstimatedConnectivityReport.minimum is deprecated; use "
            ".min_connectivity (protocol) or .minimum_bound (explicit)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.minimum_bound

    @property
    def average(self) -> float:
        """Deprecated alias for :attr:`average_estimate`."""
        warnings.warn(
            "EstimatedConnectivityReport.average is deprecated; use "
            ".avg_connectivity (protocol) or .average_estimate (explicit)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.average_estimate

    @property
    def exact(self) -> bool:
        """Deprecated alias: estimated reports are never exact."""
        warnings.warn(
            "EstimatedConnectivityReport.exact is deprecated; use .is_exact",
            DeprecationWarning,
            stacklevel=2,
        )
        return False

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-friendly encoding.

        The leading ``"estimated": True`` marker is the persistence
        discriminator between the two report classes; exact-mode report
        dicts never carry the key, so their bytes are untouched.
        """
        return {
            "estimated": True,
            "minimum_bound": self.minimum_bound,
            "min_is_exact": self.min_is_exact,
            "average_estimate": self.average_estimate,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "ci_level": self.ci_level,
            "sample_pairs": self.sample_pairs,
            "pairs_sampled": self.pairs_sampled,
            "pairs_pruned": self.pairs_pruned,
            "min_pairs_evaluated": self.min_pairs_evaluated,
            "avg_pairs_evaluated": self.avg_pairs_evaluated,
            "resilience": self.resilience,
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "disconnected_count": self.disconnected_count,
            "strongly_connected": self.strongly_connected,
            "symmetry_ratio": self.symmetry_ratio,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "EstimatedConnectivityReport":
        """Rebuild a report from :meth:`as_dict` output."""
        fields = dict(data)
        fields.pop("estimated", None)
        return cls(**fields)


class ConnectivityEstimator(FlowEngineHost):
    """Drop-in estimation-mode analyzer (same ``analyze_*`` surface).

    Parameters
    ----------
    sample_pairs:
        Ordered-pair budget of the average pass.  When it covers every
        non-adjacent ordered pair the estimator switches to exhaustive
        evaluation (exact recovery).
    ci_level:
        Two-sided confidence level of the reported interval, in (0, 1).
    strata:
        Number of degree-bound strata for the average pass.
    min_fraction / min_candidates:
        Size of the minimum-pass candidate corner:
        ``max(min_candidates, ceil(min_fraction * n))`` lowest-out-degree
        sources (and as many lowest-in-degree targets).
    seed:
        Seed of the sampling stream.  One stream persists across the
        snapshots an estimator instance sees (like the exact analyzer's),
        and it depends only on graph structure — never a flow value.
    algorithm / flow_jobs / flow_shard_size / flow_wave_width /
    adaptive_shards:
        Engine knobs, identical to :class:`ConnectivityAnalyzer` — all
        identity-free (any combination reports the same bits).
    """

    def __init__(
        self,
        sample_pairs: int = DEFAULT_SAMPLE_PAIRS,
        ci_level: float = DEFAULT_CI_LEVEL,
        strata: int = DEFAULT_STRATA,
        min_fraction: float = DEFAULT_MIN_FRACTION,
        min_candidates: int = DEFAULT_MIN_CANDIDATES,
        seed: int = 0,
        algorithm: str = "dinic",
        flow_jobs: int = 1,
        flow_shard_size: Optional[int] = None,
        flow_wave_width: Optional[int] = None,
        adaptive_shards: bool = False,
    ) -> None:
        if sample_pairs < 1:
            raise ValueError(f"sample_pairs must be >= 1, got {sample_pairs}")
        if not 0.0 < ci_level < 1.0:
            raise ValueError(f"ci_level must be in (0, 1), got {ci_level}")
        if strata < 1:
            raise ValueError(f"strata must be >= 1, got {strata}")
        super().__init__(
            algorithm=algorithm,
            flow_jobs=flow_jobs,
            flow_shard_size=flow_shard_size,
            flow_wave_width=flow_wave_width,
            adaptive_shards=adaptive_shards,
        )
        self.sample_pairs = int(sample_pairs)
        self.ci_level = float(ci_level)
        self.strata = int(strata)
        self.min_fraction = float(min_fraction)
        self.min_candidates = int(min_candidates)
        self.seed = int(seed)
        self._rng = random.Random(seed)
        # The normal quantile is a pure function of ci_level; hoist it so
        # every snapshot reports from the same constant.
        self._z = NormalDist().inv_cdf((1.0 + self.ci_level) / 2.0)

    # ------------------------------------------------------------------
    def analyze_graph(self, graph: DiGraph) -> EstimatedConnectivityReport:
        """Estimate the connectivity of an already-built graph."""
        started = wallclock.perf_counter()
        n = graph.number_of_vertices()
        disconnected = disconnected_vertices(graph)
        scc_count = len(strongly_connected_components(graph)) if n else 0
        strongly_connected = scc_count <= 1

        if n <= 1:
            return self._finish(
                graph, disconnected, strongly_connected=True, started=started,
                minimum=0, min_is_exact=True, average=0.0, ci=(0.0, 0.0),
                sampled=0, pruned=0, min_pairs=0, avg_pairs=0,
            )
        if graph.is_complete():
            value = float(n - 1)
            return self._finish(
                graph, disconnected, strongly_connected, started,
                minimum=n - 1, min_is_exact=True, average=value,
                ci=(value, value), sampled=0, pruned=0, min_pairs=0,
                avg_pairs=0,
            )

        total_pairs = n * (n - 1) - graph.number_of_edges()
        with self._make_engine(graph) as engine:
            if total_pairs <= self.sample_pairs:
                return self._analyze_exhaustive(
                    graph, engine, disconnected, strongly_connected, started
                )
            return self._analyze_sampled(
                graph, engine, disconnected, strongly_connected, started
            )

    def analyze_snapshot(
        self,
        routing_tables: Mapping[int, Sequence[int]],
        alive_nodes: Optional[Sequence[int]] = None,
    ) -> EstimatedConnectivityReport:
        """Build the connectivity graph from a snapshot and estimate it."""
        graph = build_connectivity_graph(routing_tables, alive_nodes=alive_nodes)
        return self.analyze_graph(graph)

    # ------------------------------------------------------------------
    def _analyze_exhaustive(
        self, graph, engine, disconnected, strongly_connected, started
    ) -> EstimatedConnectivityReport:
        """Exact recovery: the budget covers every non-adjacent pair."""
        pairs = list(graph.non_adjacent_pairs())
        outcome = engine.evaluate(pairs, use_cutoff=False)
        if outcome.pairs_evaluated:
            average = outcome.average
            minimum = int(outcome.minimum)
        else:
            average, minimum = 0.0, 0
        if not strongly_connected:
            minimum = 0
        return self._finish(
            graph, disconnected, strongly_connected, started,
            minimum=minimum, min_is_exact=True, average=average,
            ci=(average, average), sampled=len(pairs), pruned=0,
            min_pairs=0, avg_pairs=outcome.pairs_evaluated,
        )

    def _analyze_sampled(
        self, graph, engine, disconnected, strongly_connected, started
    ) -> EstimatedConnectivityReport:
        vertices = graph.vertices()
        n = len(vertices)

        # -- average pass: stratified sample, exact kappa, CI ----------
        plan = self._stratified_plan(graph, vertices)
        pair_blocks = self._draw_pairs(graph, vertices, plan)
        flat_pairs = [pair for block in pair_blocks for pair in block]
        outcome = engine.evaluate(flat_pairs, use_cutoff=False)
        values = outcome.values
        sampled = len(flat_pairs)
        average, ci = self._stratified_estimate(graph, plan, pair_blocks, values)
        observed_min = min(values) if values else None

        # -- minimum pass: ascending-bound branch-and-bound ------------
        degree_bound = min(graph.min_out_degree(), graph.min_in_degree())
        min_pairs = 0
        pruned = 0
        min_is_exact = False
        if not strongly_connected:
            minimum = 0
            min_is_exact = True
        else:
            from repro.core.vertex_connectivity import (
                lowest_in_degree_vertices,
                lowest_out_degree_vertices,
            )

            count = max(self.min_candidates, math.ceil(self.min_fraction * n))
            sources = lowest_out_degree_vertices(graph, min(count, n))
            targets = lowest_in_degree_vertices(graph, min(count, n))
            has_edge = graph.has_edge
            out_degree = graph.out_degree
            in_degree = graph.in_degree
            candidates = sorted(
                (
                    (min(out_degree(source), in_degree(target)), source, target)
                    for source in sources
                    for target in targets
                    if target != source and not has_edge(source, target)
                ),
                key=lambda item: item[0],
            )
            running = degree_bound
            if observed_min is not None:
                running = min(running, observed_min)
            index = 0
            while index < len(candidates) and candidates[index][0] < running:
                block: List[Tuple] = []
                while (
                    index < len(candidates)
                    and len(block) < _MIN_BLOCK
                    and candidates[index][0] < running
                ):
                    block.append(candidates[index][1:])
                    index += 1
                block_outcome = engine.evaluate(
                    block, use_cutoff=True, initial_minimum=running
                )
                min_pairs += block_outcome.pairs_evaluated
                if (
                    block_outcome.minimum is not None
                    and block_outcome.minimum < running
                ):
                    running = block_outcome.minimum
            pruned = len(candidates) - min_pairs
            minimum = running
            if minimum == 0:
                # kappa(D) >= 0 always; an achieved 0 bound is tight.
                min_is_exact = True

        return self._finish(
            graph, disconnected, strongly_connected, started,
            minimum=minimum, min_is_exact=min_is_exact, average=average,
            ci=ci, sampled=sampled, pruned=pruned, min_pairs=min_pairs,
            avg_pairs=outcome.pairs_evaluated,
        )

    # ------------------------------------------------------------------
    def _stratified_plan(self, graph, vertices) -> List[Tuple[List, int, int]]:
        """Partition vertices into degree strata and allocate the budget.

        Returns ``[(members, weight, quota), ...]`` where ``weight`` is
        the stratum's exact ordered non-adjacent pair population
        (``sum over sources of n - 1 - out_degree``) and quotas follow
        the largest-remainder method over those weights — deterministic,
        and exactly proportional in the equal-weight (regular graph)
        case.
        """
        n = len(vertices)
        out_degree = graph.out_degree
        order = sorted(range(n), key=lambda i: (out_degree(vertices[i]), i))
        count = min(self.strata, n)
        base, extra = divmod(n, count)
        strata: List[Tuple[List, int]] = []
        position = 0
        for index in range(count):
            size = base + (1 if index < extra else 0)
            members = [vertices[i] for i in order[position:position + size]]
            position += size
            weight = sum(n - 1 - out_degree(v) for v in members)
            strata.append((members, weight))
        total_weight = sum(weight for _, weight in strata)
        if total_weight <= 0:
            return [(members, weight, 0) for members, weight in strata]
        raw = [
            self.sample_pairs * weight / total_weight for _, weight in strata
        ]
        quotas = [int(share) for share in raw]
        remainder = self.sample_pairs - sum(quotas)
        by_fraction = sorted(
            range(len(strata)),
            key=lambda i: (-(raw[i] - quotas[i]), i),
        )
        for i in by_fraction[:remainder]:
            quotas[i] += 1
        return [
            (members, weight, quotas[i] if weight > 0 else 0)
            for i, (members, weight) in enumerate(strata)
        ]

    def _draw_pairs(self, graph, vertices, plan) -> List[List[Tuple]]:
        """Rejection-sample each stratum's quota of non-adjacent pairs.

        Sources are drawn uniformly from the stratum, targets uniformly
        from the whole graph; within a stratum this weights sources by
        their non-adjacent target count, which matches the stratum
        weights used by :meth:`_stratified_estimate` (the estimator stays
        unbiased over ordered non-adjacent pairs).  Attempts are bounded
        so near-complete strata terminate (with a short sample).
        """
        n = len(vertices)
        rng = self._rng
        has_edge = graph.has_edge
        blocks: List[List[Tuple]] = []
        for members, _weight, quota in plan:
            drawn: List[Tuple] = []
            attempts = 0
            max_attempts = quota * 10
            size = len(members)
            while len(drawn) < quota and attempts < max_attempts:
                attempts += 1
                source = members[rng.randrange(size)]
                target = vertices[rng.randrange(n)]
                if target == source or has_edge(source, target):
                    continue
                drawn.append((source, target))
            blocks.append(drawn)
        return blocks

    def _stratified_estimate(
        self, graph, plan, pair_blocks, values
    ) -> Tuple[float, Tuple[float, float]]:
        """Combine per-stratum means into the estimate and its interval.

        Per stratum: the sample mean, and a regularised variance
        ``(sum (x - mean)^2 + B^2/4) / n`` — the sum of squares plus one
        pseudo-observation at the conservative range variance, where
        ``B`` is the largest degree bound among the stratum's sampled
        pairs (Popoviciu: values in ``[0, B]`` have variance <= B^2/4).
        Stratum weights are the exact pair-population shares, so the
        combined mean is unbiased and its standard error shrinks as
        ``1/sqrt(quota)`` per stratum.
        """
        out_degree = graph.out_degree
        in_degree = graph.in_degree
        offset = 0
        terms: List[Tuple[int, float, float, int]] = []
        for (members, weight, _quota), block in zip(plan, pair_blocks):
            block_values = values[offset:offset + len(block)]
            offset += len(block)
            if not block_values:
                continue
            size = len(block_values)
            mean = sum(block_values) / size
            square_sum = sum((value - mean) ** 2 for value in block_values)
            bound = max(
                min(out_degree(source), in_degree(target))
                for source, target in block
            )
            variance = (square_sum + bound * bound / 4.0) / size
            terms.append((weight, mean, variance, size))
        if not terms:
            return 0.0, (0.0, 0.0)
        total_weight = sum(weight for weight, _, _, _ in terms)
        estimate = sum(
            weight * mean for weight, mean, _, _ in terms
        ) / total_weight
        variance = sum(
            (weight / total_weight) ** 2 * var / size
            for weight, _, var, size in terms
        )
        half_width = self._z * variance ** 0.5
        return estimate, (max(0.0, estimate - half_width), estimate + half_width)

    # ------------------------------------------------------------------
    def _finish(
        self,
        graph,
        disconnected,
        strongly_connected: bool,
        started: float,
        minimum: int,
        min_is_exact: bool,
        average: float,
        ci: Tuple[float, float],
        sampled: int,
        pruned: int,
        min_pairs: int,
        avg_pairs: int,
    ) -> EstimatedConnectivityReport:
        elapsed = wallclock.perf_counter() - started
        report = EstimatedConnectivityReport(
            minimum_bound=minimum,
            min_is_exact=min_is_exact,
            average_estimate=average,
            ci_low=ci[0],
            ci_high=ci[1],
            ci_level=self.ci_level,
            sample_pairs=self.sample_pairs,
            pairs_sampled=sampled,
            pairs_pruned=pruned,
            min_pairs_evaluated=min_pairs,
            avg_pairs_evaluated=avg_pairs,
            resilience=resilience_of(minimum),
            vertex_count=graph.number_of_vertices(),
            edge_count=graph.number_of_edges(),
            disconnected_count=len(disconnected),
            strongly_connected=strongly_connected,
            symmetry_ratio=graph.symmetry_ratio(),
            seed=self.seed,
            elapsed_seconds=elapsed,
        )
        self._record_obs(report)
        return report

    def _record_obs(self, report: EstimatedConnectivityReport) -> None:
        from repro.obs import active as obs_active

        registry = obs_active()
        if registry is None:
            return
        registry.inc("estimation.runs")
        registry.inc("estimation.pairs_sampled", report.pairs_sampled)
        registry.inc(
            "estimation.pairs_evaluated",
            report.min_pairs_evaluated + report.avg_pairs_evaluated,
        )
        registry.inc("estimation.pairs_pruned", report.pairs_pruned)
        registry.observe("estimation.ci_width", report.ci_width)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EstimateValidation:
    """Outcome of one exact-vs-estimate comparison (validation harness)."""

    exact_minimum: int
    exact_average: float
    estimate: EstimatedConnectivityReport

    @property
    def average_within_ci(self) -> bool:
        """True when the exhaustive average lies inside the reported CI."""
        return (
            self.estimate.ci_low <= self.exact_average <= self.estimate.ci_high
        )

    @property
    def minimum_bound_valid(self) -> bool:
        """True when the bound dominates (and, if flagged exact, equals)
        the exhaustive minimum."""
        if self.estimate.min_is_exact:
            return self.estimate.minimum_bound == self.exact_minimum
        return self.estimate.minimum_bound >= self.exact_minimum


def validate_exact_vs_estimate(
    graph: DiGraph,
    sample_pairs: int = DEFAULT_SAMPLE_PAIRS,
    ci_level: float = DEFAULT_CI_LEVEL,
    seed: int = 0,
    algorithm: str = "dinic",
    flow_jobs: int = 1,
) -> EstimateValidation:
    """Run the exhaustive pipeline and the estimator on the same graph.

    The validation harness behind the CI estimator gate: on graphs small
    enough for the O(n^2) exact computation, the exhaustive average must
    fall inside the estimator's confidence interval and the minimum
    bound must dominate the exhaustive minimum.  ``EXPERIMENTS.md``
    documents running it at paper scale.
    """
    from repro.core.vertex_connectivity import connectivity_statistics

    stats = connectivity_statistics(graph, algorithm=algorithm)
    estimator = ConnectivityEstimator(
        sample_pairs=sample_pairs,
        ci_level=ci_level,
        seed=seed,
        algorithm=algorithm,
        flow_jobs=flow_jobs,
    )
    with estimator:
        estimate = estimator.analyze_graph(graph)
    return EstimateValidation(
        exact_minimum=stats.minimum,
        exact_average=stats.average,
        estimate=estimate,
    )
