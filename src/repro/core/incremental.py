"""Incremental maintenance of the per-snapshot connectivity graph.

Building the connectivity graph used to be a from-scratch pass over every
alive node's routing table at every snapshot
(:func:`repro.core.connectivity_graph.build_connectivity_graph`).  Most of
that work repeats: between two snapshots only some tables change
*membership* (reordering inside a bucket is invisible to the graph), and
only a handful of nodes join or leave.  :class:`IncrementalGraphMaintainer`
keeps one persistent :class:`~repro.graph.digraph.DiGraph` in sync with the
simulation instead:

* a node death removes its vertex (and with it every incident edge — the
  other rows need no touch-up, which also covers the alive-filtering the
  from-scratch build performs);
* a node birth appends its vertex, preserving the network's insertion
  order — the vertex order a fresh build would produce, which matters
  because the analyzer's degree-ranked source/target selection breaks ties
  by vertex order;
* a routing-table membership change (tracked by
  :attr:`~repro.kademlia.routing_table.RoutingTable.membership_version`)
  rewrites exactly that node's row via
  :meth:`~repro.graph.digraph.DiGraph.replace_successors`.

The maintained graph is **content- and vertex-order-identical** to the
from-scratch build (asserted by ``tests/core/test_incremental_graph.py``
and, when ``REPRO_VERIFY_INCREMENTAL=1``, cross-checked on every refresh);
row-dict iteration order can differ for rows last rebuilt before an
adjacent death, which no analyzer statistic observes — max-flow values are
exact regardless of arc order.

The returned graph is **live**: it is mutated by the next ``refresh``, so
consumers must finish with it before the simulation advances (the
experiment runner analyzes each snapshot synchronously).
"""

from __future__ import annotations

import os
from typing import Dict

from repro.graph.digraph import DiGraph

#: Environment switch: cross-check every refreshed graph against a
#: from-scratch build (used by the test suite; expensive, off by default).
VERIFY_ENV = "REPRO_VERIFY_INCREMENTAL"


class IncrementalGraphMaintainer:
    """Keeps a connectivity graph in lock-step with a simulated network.

    Parameters
    ----------
    protocol_name:
        Name under which each node's Kademlia protocol is registered.
    """

    def __init__(self, protocol_name: str = "kademlia") -> None:
        self.protocol_name = protocol_name
        self._graph = DiGraph()
        #: node id -> routing-table membership version at the last refresh.
        self._versions: Dict[int, int] = {}
        #: vertices currently in the graph (alive at the last refresh).
        self._present: set = set()
        self._verify = os.environ.get(VERIFY_ENV, "") not in ("", "0")
        #: refreshes performed / rows rewritten (diagnostics + tests).
        self.refreshes = 0
        self.rows_rebuilt = 0

    # ------------------------------------------------------------------
    def refresh(self, network) -> DiGraph:
        """Bring the maintained graph up to date and return it (live).

        ``network`` is the simulation's :class:`~repro.simulator.network
        .Network`; the vertex set becomes its alive nodes, in registry
        (insertion) order.
        """
        graph = self._graph
        versions = self._versions
        present = self._present
        protocol_name = self.protocol_name

        alive_nodes = network.alive_nodes()
        alive_set = {node.node_id for node in alive_nodes}

        # Deaths first: removing the vertex also strips every edge pointing
        # at it out of the surviving rows, which is exactly the alive-filter
        # of the from-scratch build (dead ids linger in routing tables until
        # staleness evicts them, but never resurrect).
        for node_id in present - alive_set:
            graph.remove_vertex(node_id)
            versions.pop(node_id, None)

        # Births next, in registry order, so that every row rewritten below
        # can link to any alive contact and new vertices land at the end of
        # the vertex order exactly like a fresh build over the registry.
        for node in alive_nodes:
            node_id = node.node_id
            if node_id not in alive_set:  # pragma: no cover - defensive
                continue
            if node_id not in present:
                graph.add_vertex(node_id)

        # Rows: rebuild only where snapshot membership changed since the
        # last refresh (the *protocol's* snapshot view — extensions may
        # merge state beyond the routing table into it, e.g. supplemental
        # links).  Rows of unchanged tables are already correct — their
        # content did not change, edges to the dead were stripped above,
        # and a newly alive contact can only appear in a row through a
        # membership change.
        rebuilt = 0
        for node in alive_nodes:
            node_id = node.node_id
            protocol = node.protocols[protocol_name]
            version = protocol.snapshot_version()
            if versions.get(node_id) == version and node_id in present:
                continue
            versions[node_id] = version
            row = [
                contact_id
                for contact_id in protocol.routing_table_snapshot()
                if contact_id in alive_set and contact_id != node_id
            ]
            graph.replace_successors(node_id, row)
            rebuilt += 1

        self._present = alive_set
        self.refreshes += 1
        self.rows_rebuilt += rebuilt

        if self._verify:
            self._cross_check(network, graph)
        return graph

    # ------------------------------------------------------------------
    def _cross_check(self, network, graph: DiGraph) -> None:
        """Assert equality with a from-scratch build (debug/test mode)."""
        from repro.core.connectivity_graph import build_connectivity_graph

        tables = {
            node.node_id: node.protocols[self.protocol_name].routing_table_snapshot()
            for node in network.alive_nodes()
        }
        fresh = build_connectivity_graph(tables)
        if fresh.vertices() != graph.vertices():
            raise AssertionError(
                "incremental graph vertex order diverged from fresh build"
            )
        for vertex in fresh.vertices():
            if set(fresh._succ[vertex]) != set(graph._succ[vertex]):
                raise AssertionError(
                    f"incremental graph row for {vertex!r} diverged from fresh build"
                )
