"""Connectivity time series — the data behind every figure of the paper.

Each figure plots, against simulated time, the minimum and average
connectivity (left axis) and the network size (right axis), for several
parameter settings.  :class:`ConnectivityTimeSeries` stores one such curve
(one parameter setting) and provides the aggregations used by Table 2 and
Figure 10 (mean and relative variance of the minimum connectivity during the
churn phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.statistics import mean, relative_variance
from repro.core.analyzer import ConnectivityReport


@dataclass(frozen=True)
class ConnectivitySample:
    """One snapshot's worth of measurements.

    ``report`` is either an exact-mode :class:`ConnectivityReport` or an
    estimate-mode :class:`~repro.core.estimation.EstimatedConnectivityReport`;
    the accessors below go through the shared report protocol, so every
    aggregation downstream (tables, figures, obs) works for both.
    """

    time: float
    network_size: int
    report: ConnectivityReport

    @property
    def minimum(self) -> int:
        """Minimum connectivity at this snapshot."""
        return self.report.min_connectivity

    @property
    def average(self) -> float:
        """Average connectivity at this snapshot."""
        return self.report.avg_connectivity


@dataclass
class ConnectivityTimeSeries:
    """A labelled sequence of connectivity samples over simulated time."""

    label: str
    samples: List[ConnectivitySample] = field(default_factory=list)

    # ------------------------------------------------------------------
    def append(self, sample: ConnectivitySample) -> None:
        """Add a sample (samples must be appended in time order)."""
        if self.samples and sample.time < self.samples[-1].time:
            raise ValueError(
                f"samples must be time-ordered: {sample.time} < {self.samples[-1].time}"
            )
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------
    def times(self) -> List[float]:
        """Snapshot times."""
        return [sample.time for sample in self.samples]

    def minimum_series(self) -> List[int]:
        """The "Min" curve."""
        return [sample.minimum for sample in self.samples]

    def average_series(self) -> List[float]:
        """The "Avg" curve."""
        return [sample.average for sample in self.samples]

    def network_size_series(self) -> List[int]:
        """The network-size curve (right axis of the figures)."""
        return [sample.network_size for sample in self.samples]

    # ------------------------------------------------------------------
    def window(self, start: float, end: Optional[float] = None) -> "ConnectivityTimeSeries":
        """Return the sub-series with ``start <= time`` (and ``< end`` if given)."""
        selected = [
            sample
            for sample in self.samples
            if sample.time >= start and (end is None or sample.time < end)
        ]
        return ConnectivityTimeSeries(label=self.label, samples=selected)

    def mean_minimum(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean of the minimum connectivity within a time window.

        Table 2 and Figure 10 report this over the churn phase.
        """
        values = self.window(start, end).minimum_series()
        return mean(values) if values else 0.0

    def relative_variance_minimum(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> float:
        """Relative variance (variance / mean) of the minimum connectivity.

        The paper's Table 2 statistic; defined as 0 when the mean is 0
        (the paper reports RV = 0.00 for the all-zero size-2500 / k=5 rows).
        """
        values = self.window(start, end).minimum_series()
        return relative_variance(values)

    def mean_average(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Mean of the average connectivity within a time window."""
        values = self.window(start, end).average_series()
        return mean(values) if values else 0.0

    def final_sample(self) -> ConnectivitySample:
        """Return the last sample (raises ``IndexError`` when empty)."""
        return self.samples[-1]

    # ------------------------------------------------------------------
    def to_rows(self) -> List[Dict[str, float]]:
        """Return plot-ready rows: time, min, avg, network size."""
        return [
            {
                "time": sample.time,
                "min": sample.minimum,
                "avg": sample.average,
                "network_size": sample.network_size,
            }
            for sample in self.samples
        ]
