"""Connectivity and resilience analysis — the paper's primary contribution.

The pipeline mirrors Sections 4.2–4.5 of the paper:

1. :mod:`repro.core.connectivity_graph` turns a routing-table snapshot into
   a directed *connectivity graph* (one vertex per node, an edge ``(v, w)``
   when ``w`` is in ``v``'s routing table, capacity 1 on every edge);
2. Even's transformation (:mod:`repro.graph.transform`) reduces
   vertex-connectivity queries to max-flow queries;
3. :mod:`repro.core.vertex_connectivity` computes pairwise connectivity
   ``kappa(v, w)`` and the global connectivity ``kappa(D)`` — exactly, or
   with the paper's ``c * n`` lowest-out-degree source sampling;
4. :mod:`repro.core.resilience` converts connectivity into the resilience
   statement of Equation 2: ``kappa(D) > r >= a``;
5. :class:`repro.core.analyzer.ConnectivityAnalyzer` packages the above into
   the object the experiment runner calls at every snapshot, and
   :mod:`repro.core.timeseries` collects the per-snapshot reports into the
   time series shown in the paper's figures.

Beyond the paper's exact pipeline, :mod:`repro.core.estimation` provides
the sampled-pair estimation mode for deployment-scale graphs
(10^4–10^6 nodes): exact kappa on a stratified pair sample with a
deterministic confidence interval, and a branch-and-bound bound on the
minimum.
"""

from repro.core.analyzer import (
    ConnectivityAnalyzer,
    ConnectivityReport,
    FlowEngineHost,
)
from repro.core.estimation import (
    ConnectivityEstimator,
    EstimatedConnectivityReport,
    EstimateValidation,
    validate_exact_vs_estimate,
)
from repro.core.connectivity_graph import (
    build_connectivity_graph,
    connectivity_graph_from_protocols,
)
from repro.core.resilience import (
    ResilienceModel,
    required_bucket_size,
    required_connectivity,
    resilience_of,
)
from repro.core.timeseries import ConnectivitySample, ConnectivityTimeSeries
from repro.core.vertex_connectivity import (
    ConnectivityStatistics,
    global_vertex_connectivity,
    pairwise_vertex_connectivity,
)

__all__ = [
    "ConnectivityAnalyzer",
    "ConnectivityEstimator",
    "ConnectivityReport",
    "ConnectivitySample",
    "ConnectivityStatistics",
    "ConnectivityTimeSeries",
    "EstimateValidation",
    "EstimatedConnectivityReport",
    "FlowEngineHost",
    "ResilienceModel",
    "validate_exact_vs_estimate",
    "build_connectivity_graph",
    "connectivity_graph_from_protocols",
    "global_vertex_connectivity",
    "pairwise_vertex_connectivity",
    "required_bucket_size",
    "required_connectivity",
    "resilience_of",
]
