"""Resilience model (paper Section 4.5, Equation 2).

A network is *r-resilient* when it keeps functioning — a path still exists
between every pair of nodes — with up to ``r`` compromised nodes.  Since
every compromised node can cut at most one of the ``kappa(D)`` node-disjoint
paths between a pair, the requirement is

    kappa(D) > r >= a

where ``a`` is the number of nodes an attacker can subvert.  From this:

* the resilience of a measured network is ``r = kappa(D) - 1``;
* to tolerate ``a`` compromised nodes the network needs ``kappa(D) > a``;
* and, per the paper's conclusion, the bucket size must satisfy ``k > r``
  because the achievable connectivity tracks ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass

def resilience_of(connectivity: int) -> int:
    """Return the resilience ``r`` of a network with connectivity ``kappa``.

    ``r = kappa - 1``; a network with connectivity 0 (some pair has no path)
    has resilience -1 in the strict reading of the formula, which we clamp
    to 0 compromised nodes tolerated — it cannot even tolerate zero failures
    for every pair, but a negative count of tolerated nodes is meaningless
    to report.
    """
    if connectivity < 0:
        raise ValueError(f"connectivity must be non-negative, got {connectivity}")
    return max(connectivity - 1, 0)


def required_connectivity(attacker_budget: int) -> int:
    """Smallest connectivity that tolerates ``attacker_budget`` compromised nodes.

    ``kappa(D) > a`` means ``kappa(D) >= a + 1``.
    """
    if attacker_budget < 0:
        raise ValueError(f"attacker budget must be non-negative, got {attacker_budget}")
    return attacker_budget + 1


def required_bucket_size(target_resilience: int) -> int:
    """Smallest bucket size ``k`` recommended for a target resilience ``r``.

    The paper's conclusion: the achievable connectivity strongly correlates
    with ``k`` and the bucket size needs to be *greater* than ``r``
    (``k > r``), i.e. at least ``r + 1``.  The paper additionally advises
    ``k >= 10`` as the minimum for a connected network (Section 5.6), so the
    returned value never drops below 10.
    """
    if target_resilience < 0:
        raise ValueError(
            f"target resilience must be non-negative, got {target_resilience}"
        )
    return max(target_resilience + 1, 10)


@dataclass(frozen=True)
class ResilienceModel:
    """Convenience wrapper tying an attacker budget to network requirements.

    Examples
    --------
    >>> model = ResilienceModel(attacker_budget=4)
    >>> model.required_connectivity
    5
    >>> model.recommended_bucket_size
    10
    >>> model.is_satisfied_by(connectivity=6)
    True
    >>> model.is_satisfied_by(connectivity=4)
    False
    """

    attacker_budget: int

    def __post_init__(self) -> None:
        if self.attacker_budget < 0:
            raise ValueError(
                f"attacker budget must be non-negative, got {self.attacker_budget}"
            )

    @property
    def required_resilience(self) -> int:
        """The resilience level ``r`` needed: at least the attacker budget."""
        return self.attacker_budget

    @property
    def required_connectivity(self) -> int:
        """The connectivity needed to tolerate the attacker budget."""
        return required_connectivity(self.attacker_budget)

    @property
    def recommended_bucket_size(self) -> int:
        """Bucket size recommendation derived from the paper's conclusion."""
        return required_bucket_size(self.required_resilience)

    def is_satisfied_by(self, connectivity: int) -> bool:
        """True if a network with ``connectivity`` tolerates the attacker budget."""
        return connectivity > self.attacker_budget

    def margin(self, connectivity: int) -> int:
        """How many extra compromised nodes beyond the budget could be tolerated.

        Negative values quantify the shortfall.
        """
        return resilience_of(connectivity) - self.attacker_budget
