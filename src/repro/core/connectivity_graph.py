"""Connectivity-graph construction (paper Section 4.2).

A snapshot of the network at time ``t`` is a mapping
``node id -> list of routing-table contact ids`` over the nodes that are
alive at ``t``.  The connectivity graph ``D(V, E)`` has one vertex per alive
node and a directed edge ``(v, w)`` exactly when ``w`` appears in ``v``'s
routing table *and* ``w`` is itself alive — edges pointing at departed nodes
cannot carry any communication, so they are not part of the graph, matching
how the paper builds graphs from snapshots of the current network.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.graph.digraph import DiGraph


def build_connectivity_graph(
    routing_tables: Mapping[int, Sequence[int]],
    alive_nodes: Iterable[int] = None,
) -> DiGraph:
    """Build the connectivity graph from routing-table contents.

    Parameters
    ----------
    routing_tables:
        ``node id -> contact ids`` for every node to include as a vertex.
    alive_nodes:
        Optional explicit vertex set.  Defaults to the keys of
        ``routing_tables``.  Contacts outside this set are ignored (they
        refer to nodes that already left the network).

    Returns
    -------
    DiGraph
        The directed connectivity graph with capacity 1 on every edge.
        Nodes with no (alive) contacts still appear as isolated vertices.
    """
    vertex_set = set(routing_tables) if alive_nodes is None else set(alive_nodes)
    graph = DiGraph()
    for node_id in routing_tables:
        if node_id in vertex_set:
            graph.add_vertex(node_id)
    for node_id, contacts in routing_tables.items():
        if node_id not in vertex_set:
            continue
        for contact_id in contacts:
            if contact_id == node_id or contact_id not in vertex_set:
                continue
            graph.add_edge(node_id, contact_id, capacity=1.0)
    return graph


def connectivity_graph_from_protocols(protocols: Iterable) -> DiGraph:
    """Build the connectivity graph directly from live protocol objects.

    ``protocols`` is an iterable of :class:`repro.kademlia.KademliaProtocol`
    instances (one per alive node); this is the convenience entry point used
    by the examples when no snapshot file is involved.
    """
    tables: Dict[int, List[int]] = {
        protocol.node_id: protocol.routing_table_snapshot() for protocol in protocols
    }
    return build_connectivity_graph(tables)


def disconnected_vertices(graph: DiGraph) -> List[int]:
    """Return vertices that cannot possibly lie on any cycle of communication.

    A vertex with out-degree 0 cannot reach anyone; a vertex with in-degree 0
    cannot be reached.  Either condition forces the global vertex
    connectivity to 0, and the paper traces its zero-connectivity setups to
    exactly such nodes ("they themselves only appear in the routing tables
    of less than k other nodes or none at all", Section 5.5.1).
    """
    return [
        vertex
        for vertex in graph.vertices()
        if graph.out_degree(vertex) == 0 or graph.in_degree(vertex) == 0
    ]
