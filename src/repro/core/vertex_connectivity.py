"""Vertex connectivity for vertex pairs and whole graphs (paper Sections 4.3, 4.4).

``kappa(v, w)`` for non-adjacent vertices is the maximum number of pairwise
vertex-disjoint paths from ``v`` to ``w`` (Menger), computed as the max flow
from ``v''`` to ``w'`` in the Even-transformed graph.  The global
connectivity ``kappa(D)`` is the minimum of ``kappa(v, w)`` over all ordered
non-adjacent pairs; a complete graph has ``kappa = n - 1`` by definition.

Computing all ``n (n - 1)`` pairs is expensive — the paper quotes roughly
250 CPU-hours for one 2500-node graph — so Section 5.2 introduces a
reduction: only the ``c * n`` vertices with the smallest *out*-degree are
used as flow sources (the authors verified that ``c = 0.02`` recovered the
exact minimum on 20 fully analysed graphs).  Both the exact computation and
that sampling strategy are implemented here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.maxflow import network_flow_function as _flow_function
from repro.graph.transform.even_transform import indexed_even_transform

Vertex = Hashable


@dataclass
class ConnectivityStatistics:
    """Connectivity figures computed from one connectivity graph.

    ``minimum`` is the (sampled or exact) graph connectivity ``kappa(D)``;
    ``average`` is the mean of the pairwise connectivities over the evaluated
    pairs — the two quantities plotted as "Min" and "Avg" in the paper's
    figures.
    """

    minimum: int
    average: float
    pairs_evaluated: int
    sources_evaluated: int
    vertex_count: int
    edge_count: int
    exact: bool
    min_pair: Optional[Tuple[Vertex, Vertex]] = None

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary (for reports/JSON)."""
        return {
            "minimum": self.minimum,
            "average": self.average,
            "pairs_evaluated": self.pairs_evaluated,
            "sources_evaluated": self.sources_evaluated,
            "vertex_count": self.vertex_count,
            "edge_count": self.edge_count,
            "exact": self.exact,
            "min_pair": self.min_pair,
        }


def pairwise_vertex_connectivity(
    graph: DiGraph,
    source: Vertex,
    target: Vertex,
    algorithm: str = "dinic",
) -> int:
    """Return ``kappa(source, target)`` for a non-adjacent ordered pair.

    Raises ``ValueError`` when ``source == target`` or when the edge
    ``(source, target)`` exists — Menger's theorem (and hence the max-flow
    reduction) only applies to non-adjacent pairs, and the paper excludes
    adjacent pairs from the graph connectivity for the same reason.
    """
    if source == target:
        raise ValueError("source and target must be distinct")
    if graph.has_edge(source, target):
        raise ValueError(
            "vertex connectivity is undefined for adjacent pairs "
            f"({source!r} -> {target!r} is an edge)"
        )
    flow_fn = _flow_function(algorithm)
    transform = indexed_even_transform(graph)
    flow_source, flow_target = transform.flow_endpoint_indices(source, target)
    value = flow_fn(transform.network, flow_source, flow_target)
    return int(round(value))


def _sample_sources(
    graph: DiGraph,
    sample_fraction: Optional[float],
    min_sources: int,
    rng: Optional[random.Random],
) -> Tuple[List[Vertex], bool]:
    """Pick flow sources; returns (sources, exact flag).

    ``sample_fraction=None`` (or >= 1) keeps every vertex — the exact
    computation.  Otherwise the ``ceil(c * n)`` vertices with the smallest
    out-degree are used, as in the paper; ties are broken deterministically
    by insertion order unless an ``rng`` is given to shuffle equal-degree
    groups.
    """
    vertices = graph.vertices()
    n = len(vertices)
    if sample_fraction is None or sample_fraction >= 1.0 or n == 0:
        return vertices, True
    if sample_fraction <= 0.0:
        raise ValueError(f"sample_fraction must be positive, got {sample_fraction}")
    count = max(min_sources, int(-(-sample_fraction * n // 1)))  # ceil
    count = min(count, n)
    if rng is not None:
        shuffled = vertices[:]
        rng.shuffle(shuffled)
        vertices = shuffled
    ranked = sorted(vertices, key=graph.out_degree)
    return ranked[:count], False


def connectivity_statistics(
    graph: DiGraph,
    algorithm: str = "dinic",
    sample_fraction: Optional[float] = None,
    min_sources: int = 2,
    use_cutoff: bool = False,
    rng: Optional[random.Random] = None,
) -> ConnectivityStatistics:
    """Compute the minimum and average pairwise vertex connectivity.

    Parameters
    ----------
    graph:
        The connectivity graph ``D``.
    algorithm:
        Max-flow algorithm: ``"dinic"`` (default), ``"push_relabel"`` or
        ``"edmonds_karp"``.
    sample_fraction:
        The paper's ``c``: fraction of vertices used as flow sources,
        selected by smallest out-degree.  ``None`` means exact (all
        sources).
    min_sources:
        Lower bound on the number of sampled sources (tiny graphs).
    use_cutoff:
        When True, each flow computation stops at the current running
        minimum.  This keeps the *minimum* exact over the evaluated pairs
        but turns the *average* into a lower bound, so it is off by
        default; the experiment runner enables it for minimum-only passes.
    rng:
        Optional random stream for tie-shuffling of equal-out-degree
        sources.

    Notes
    -----
    Fast paths: an empty or single-vertex graph has connectivity 0;
    a complete graph has connectivity ``n - 1``; any vertex with in- or
    out-degree 0 forces connectivity 0 (and average computation still
    proceeds over the evaluated pairs).
    """
    n = graph.number_of_vertices()
    m = graph.number_of_edges()
    if n <= 1:
        return ConnectivityStatistics(
            minimum=0, average=0.0, pairs_evaluated=0, sources_evaluated=0,
            vertex_count=n, edge_count=m, exact=True,
        )
    if graph.is_complete():
        return ConnectivityStatistics(
            minimum=n - 1, average=float(n - 1), pairs_evaluated=0,
            sources_evaluated=0, vertex_count=n, edge_count=m, exact=True,
        )

    flow_fn = _flow_function(algorithm)
    sources, exact = _sample_sources(graph, sample_fraction, min_sources, rng)
    transform = indexed_even_transform(graph)
    network = transform.network
    target_index = transform.target_index

    minimum: Optional[int] = None
    min_pair: Optional[Tuple[Vertex, Vertex]] = None
    total = 0.0
    pairs = 0
    vertices = graph.vertices()

    for source in sources:
        source_index = transform.source_index(source)
        out_degree = graph.out_degree(source)
        if out_degree == 0:
            # No outgoing edges: kappa(source, w) = 0 for every non-adjacent w.
            non_adjacent = n - 1
            pairs += non_adjacent
            if non_adjacent > 0 and (minimum is None or minimum > 0):
                minimum = 0
                min_pair = (source, next(v for v in vertices if v != source))
            continue
        for target in vertices:
            if target == source or graph.has_edge(source, target):
                continue
            cutoff = None
            if use_cutoff and minimum is not None:
                if minimum == 0:
                    # The global minimum cannot go lower; only the average
                    # would benefit from more work, and with cutoffs enabled
                    # the caller accepted a lower-bound average.
                    cutoff = 0.0
                else:
                    cutoff = float(minimum)
            network.reset()
            value = flow_fn(
                network,
                source_index,
                target_index(target),
                cutoff=cutoff,
            )
            kappa = int(round(value))
            total += kappa
            pairs += 1
            if minimum is None or kappa < minimum:
                minimum = kappa
                min_pair = (source, target)

    if pairs == 0:
        # Every evaluated source was adjacent to every other vertex; fall
        # back to the degree bound (the graph is "locally complete" around
        # the sampled sources).
        minimum = min(graph.out_degree(v) for v in sources) if sources else 0
        return ConnectivityStatistics(
            minimum=int(minimum), average=float(minimum), pairs_evaluated=0,
            sources_evaluated=len(sources), vertex_count=n, edge_count=m,
            exact=exact,
        )

    return ConnectivityStatistics(
        minimum=int(minimum if minimum is not None else 0),
        average=total / pairs,
        pairs_evaluated=pairs,
        sources_evaluated=len(sources),
        vertex_count=n,
        edge_count=m,
        exact=exact,
        min_pair=min_pair,
    )


class PairFlowEvaluator:
    """Reusable evaluator of ``kappa(v, w)`` queries on one connectivity graph.

    Building Even's transformation and the residual network dominates the
    setup cost of a single pairwise query, so the evaluator builds both once
    and then answers any number of pair queries by resetting the residual
    capacities in place.  The experiment analyzer performs two passes per
    snapshot with the same evaluator:

    * a *minimum* pass over sources with the smallest out-degree and targets
      with the smallest in-degree (a two-sided version of the paper's
      ``c * n`` source sampling), with flow cutoffs at the running minimum;
    * an *average* pass over uniformly random non-adjacent pairs without
      cutoffs, so the "Avg" series stays unbiased.
    """

    def __init__(self, graph: DiGraph, algorithm: str = "dinic") -> None:
        self.graph = graph
        self.algorithm = algorithm
        self._flow_fn = _flow_function(algorithm)
        self._transform = indexed_even_transform(graph)
        self._network = self._transform.network

    def kappa(
        self, source: Vertex, target: Vertex, cutoff: Optional[float] = None
    ) -> int:
        """Return ``kappa(source, target)`` (the pair must be non-adjacent)."""
        if source == target:
            raise ValueError("source and target must be distinct")
        if self.graph.has_edge(source, target):
            raise ValueError("pair is adjacent; vertex connectivity is undefined")
        self._network.reset()
        flow_source, flow_target = self._transform.flow_endpoint_indices(
            source, target
        )
        value = self._flow_fn(
            self._network, flow_source, flow_target, cutoff=cutoff
        )
        return int(round(value))

    def minimum_over(
        self,
        sources: Sequence[Vertex],
        targets: Sequence[Vertex],
        use_cutoff: bool = True,
        initial_minimum: Optional[int] = None,
    ) -> Tuple[int, int]:
        """Minimum ``kappa`` over the non-adjacent pairs of ``sources x targets``.

        Returns ``(minimum, pairs evaluated)``.  ``initial_minimum`` seeds
        the cutoff (e.g. with the degree bound ``min out-degree``).  If no
        valid pair exists the degree bound itself is returned.
        """
        minimum = initial_minimum
        pairs = 0
        for source in sources:
            if self.graph.out_degree(source) == 0:
                first_other = next(
                    (v for v in targets if v != source), None
                )
                if first_other is not None:
                    return 0, pairs + 1
            for target in targets:
                if target == source or self.graph.has_edge(source, target):
                    continue
                cutoff = float(minimum) if (use_cutoff and minimum is not None) else None
                value = self.kappa(source, target, cutoff=cutoff)
                pairs += 1
                if minimum is None or value < minimum:
                    minimum = value
                if minimum == 0:
                    return 0, pairs
        if minimum is None:
            degree_bound = (
                min(self.graph.out_degree(v) for v in sources) if sources else 0
            )
            return degree_bound, pairs
        return minimum, pairs

    def average_over_random_pairs(
        self, pair_count: int, rng: random.Random
    ) -> Tuple[float, int]:
        """Mean ``kappa`` over up to ``pair_count`` random non-adjacent pairs.

        Returns ``(average, pairs evaluated)``; (0.0, 0) when the graph has
        no non-adjacent pair (complete graph).
        """
        pairs = sample_non_adjacent_pairs(self.graph, pair_count, rng)
        if not pairs:
            return 0.0, 0
        total = 0.0
        for source, target in pairs:
            total += self.kappa(source, target)
        return total / len(pairs), len(pairs)


def sample_non_adjacent_pairs(
    graph: DiGraph, pair_count: int, rng: random.Random
) -> List[Tuple[Vertex, Vertex]]:
    """Draw up to ``pair_count`` uniform random non-adjacent ordered pairs.

    Rejection-sampled with a bounded number of attempts (so near-complete
    graphs terminate); pairs may repeat, which keeps the estimate of the
    mean pairwise connectivity unbiased.  The ``rng`` consumption depends
    only on the graph structure — never on any flow value — so the same
    stream yields the same pairs whether they are evaluated serially or
    through the batched engine.
    """
    vertices = graph.vertices()
    n = len(vertices)
    if n < 2 or pair_count <= 0:
        return []
    pairs: List[Tuple[Vertex, Vertex]] = []
    attempts = 0
    max_attempts = pair_count * 10
    while len(pairs) < pair_count and attempts < max_attempts:
        attempts += 1
        source = vertices[rng.randrange(n)]
        target = vertices[rng.randrange(n)]
        if source == target or graph.has_edge(source, target):
            continue
        pairs.append((source, target))
    return pairs


def lowest_out_degree_vertices(graph: DiGraph, count: int) -> List[Vertex]:
    """Return the ``count`` vertices with the smallest out-degree."""
    return sorted(graph.vertices(), key=graph.out_degree)[:count]


def lowest_in_degree_vertices(graph: DiGraph, count: int) -> List[Vertex]:
    """Return the ``count`` vertices with the smallest in-degree."""
    return sorted(graph.vertices(), key=graph.in_degree)[:count]


def global_vertex_connectivity(
    graph: DiGraph,
    algorithm: str = "dinic",
    sample_fraction: Optional[float] = None,
    rng: Optional[random.Random] = None,
) -> int:
    """Return the graph connectivity ``kappa(D)`` (paper Equation 1).

    This is the minimum-only entry point; it enables flow cutoffs so that
    each max-flow run stops as soon as it can no longer lower the minimum.
    """
    stats = connectivity_statistics(
        graph,
        algorithm=algorithm,
        sample_fraction=sample_fraction,
        use_cutoff=True,
        rng=rng,
    )
    return stats.minimum
