"""repro — reproduction of *Evaluating Connection Resilience for the Overlay
Network Kademlia* (Heck, Kieselmann, Wacker; 2017).

The package bundles everything the paper's evaluation pipeline needs, built
from scratch in pure Python:

``repro.graph``
    A small directed-graph library with max-flow solvers (highest-label
    push-relabel, Dinic, Edmonds-Karp), Even's vertex-splitting
    transformation, DIMACS I/O and the usual traversal helpers.

``repro.simulator``
    A deterministic discrete-event simulation engine (the PeerSim
    substitute): event queue, simulated clock, message transport with
    latency and loss, protocol and control hooks.

``repro.kademlia``
    The Kademlia protocol itself — XOR metric, k-buckets, routing tables,
    iterative lookups with request parallelism ``alpha``, data
    dissemination, bucket refresh and staleness handling.

``repro.churn``
    Environment models: random bootstrap, churn scenarios, traffic
    generation and message-loss scenarios.

``repro.core``
    The paper's primary contribution — connectivity-graph construction,
    vertex connectivity (pairwise and global, exact or sampled) and the
    resilience model ``kappa(D) > r >= a``.

``repro.experiments``
    Scenario registry for the paper's Simulations A–L, the phase schedule
    (setup / stabilisation / churn), the runner and report generators for
    every table and figure.

``repro.runtime``
    Experiment execution harness: content-addressed tasks, serial and
    process-pool executors with bit-identical output, an on-disk result
    cache and the campaign driver behind every sweep and replication.

``repro.analysis``
    Statistics (mean, relative variance), series aggregation and ASCII
    rendering of the figures.

``repro.api``
    **The stable public facade.**  External callers (and ``examples/``)
    should import from :mod:`repro.api` — ``run_scenario``,
    ``run_sweep``, ``analyze_snapshot``, ``estimate_connectivity``,
    ``open_campaign`` plus curated re-exports — rather than from the
    internal modules above, whose layout may change between releases.
"""

from repro.core.analyzer import ConnectivityAnalyzer, ConnectivityReport
from repro.core.resilience import ResilienceModel, required_bucket_size, resilience_of
from repro.core.vertex_connectivity import (
    global_vertex_connectivity,
    pairwise_vertex_connectivity,
)
from repro.graph.digraph import DiGraph
from repro.kademlia.config import KademliaConfig
from repro.experiments.scenarios import Scenario, ScenarioRegistry, get_scenario
from repro.experiments.runner import ExperimentRunner, ExperimentResult

__version__ = "1.0.0"

__all__ = [
    "ConnectivityAnalyzer",
    "ConnectivityReport",
    "DiGraph",
    "ExperimentResult",
    "ExperimentRunner",
    "KademliaConfig",
    "ResilienceModel",
    "Scenario",
    "ScenarioRegistry",
    "get_scenario",
    "global_vertex_connectivity",
    "pairwise_vertex_connectivity",
    "required_bucket_size",
    "resilience_of",
    "__version__",
]
