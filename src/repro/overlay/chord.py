"""Chord overlay protocol (successor lists + finger tables).

Chord (Stoica et al., SIGCOMM 2001) arranges node identifiers on a ring
of size ``2^m`` and routes a key to its *successor* — the first node at
or after the key clockwise.  Each node maintains

* a **successor list** of the ``r`` nodes immediately after it (the
  resilience backbone: the ring stays connected while any successor
  survives),
* a **finger table** whose ``i``-th entry is the first node at clockwise
  distance ``>= 2^i`` (the O(log N) routing accelerator), and
* its **predecessor**.

This implementation keeps one sorted ring of known members (by
clockwise distance from the own id) and derives all three roles from it:
a member is retained iff it is one of the first ``successor_count``
members, holds some finger slot, or is the last member (the
predecessor).  Whether a member at distance ``b`` whose ring predecessor
sits at distance ``a`` holds a finger slot is exactly "is there a power
of two in ``(a, b]``" — an O(1) bit trick — so pruning after an insert
is a single linear scan over the (logarithmically sized) ring.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Tuple

from repro.overlay.base import RoutedOverlayProtocol


@dataclass(frozen=True)
class ChordConfig:
    """Parameters of one Chord node.

    ``successor_count`` is Chord's redundancy analogue of Kademlia's
    bucket size ``k``: it sizes the successor list and the replica set of
    lookups and disseminations, so parameter sweeps vary it.
    """

    bit_length: int = 160
    successor_count: int = 20
    alpha: int = 3
    staleness_limit: int = 1
    refresh_interval_minutes: float = 60.0
    bootstrap_reseed: bool = True

    def __post_init__(self) -> None:
        if self.bit_length <= 0:
            raise ValueError("bit_length must be positive")
        if self.successor_count <= 0:
            raise ValueError("successor_count must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.staleness_limit <= 0:
            raise ValueError("staleness_limit must be positive")
        if self.refresh_interval_minutes <= 0:
            raise ValueError("refresh_interval_minutes must be positive")

    @property
    def id_space_size(self) -> int:
        """Number of identifiers in the ring (``2^m``)."""
        return 1 << self.bit_length


def _power_of_two_in(after: int, upto: int) -> bool:
    """True iff some power of two lies in the half-open range ``(after, upto]``.

    The smallest power of two strictly greater than ``after`` is
    ``1 << after.bit_length()`` (for ``after >= 0``), so the test is one
    comparison.
    """
    return (1 << after.bit_length()) <= upto


class ChordProtocol(RoutedOverlayProtocol):
    """Chord state machine for one node."""

    protocol_name = "chord"

    def __init__(self, node_id: int, config: ChordConfig) -> None:
        super().__init__(node_id, config)
        #: Known ring members as ``(clockwise_distance, id)``, sorted —
        #: i.e. successor order starting right after the own id.
        self._ring: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _cw(self, from_id: int, to_id: int) -> int:
        """Clockwise ring distance from ``from_id`` to ``to_id``."""
        return (to_id - from_id) % self.config.id_space_size

    def route_distance(self, node_id: int, target_id: int) -> int:
        """Clockwise distance from the node forward to the target.

        Minimising this is the iterative form of Chord's
        *closest-preceding-node* routing: every hop's finger table at
        least halves the remaining forward distance, because fingers sit
        at all power-of-two distances.  The dual (minimising the distance
        from the target to the node, i.e. approaching the successor
        directly) does not converge iteratively — nodes past the target
        only know contacts even further clockwise — so here a key is
        resolved to its closest *preceding* node, the mirror image of
        ``find_successor`` under ring reversal, and dissemination places
        replicas on the key's closest preceding nodes (whose successor
        lists are exactly the classical replica set's vantage points).
        Injective over distinct ids, so greedy routing never ties.
        """
        return self._cw(node_id, target_id)

    # ------------------------------------------------------------------
    # Routing state
    # ------------------------------------------------------------------
    @property
    def replication(self) -> int:
        return self.config.successor_count

    def route_contacts(self, target_id: int) -> List[int]:
        members = [node_id for _, node_id in self._ring]
        members.sort(key=lambda node_id: self._cw(node_id, target_id))
        return members[: self.replication]

    def _learn_contact(self, node_id: int) -> bool:
        entry = (self._cw(self.node_id, node_id), node_id)
        ring = self._ring
        index = bisect_left(ring, entry)
        if index < len(ring) and ring[index] == entry:
            return False
        ring.insert(index, entry)
        removed = self._prune()
        if removed and not self._contains(node_id):
            # The newcomer held no role and was dropped right away; a
            # roleless newcomer displaces nobody, so membership is as it
            # was (and ``removed`` is necessarily 1).
            return False
        return True

    def _contains(self, node_id: int) -> bool:
        entry = (self._cw(self.node_id, node_id), node_id)
        index = bisect_left(self._ring, entry)
        return index < len(self._ring) and self._ring[index] == entry

    def _forget_contact(self, node_id: int) -> bool:
        entry = (self._cw(self.node_id, node_id), node_id)
        ring = self._ring
        index = bisect_left(ring, entry)
        if index < len(ring) and ring[index] == entry:
            # Removal never strips roles from the remaining members (the
            # vacated gap only *adds* finger powers to the next member),
            # so no re-prune is needed.
            del ring[index]
            return True
        return False

    def _prune(self) -> int:
        """Drop members holding no role; returns how many were dropped.

        One linear scan: a member is kept when it is within the successor
        list, is the predecessor (the last member), or holds a finger slot
        — the latter iff a power of two lies in the clockwise gap between
        its ring predecessor and itself.  Checking the gap against the
        *unpruned* neighbour is self-consistent: a pruned member's gap
        contains no power of two, so the powers it would shadow pass
        through to the next kept member unchanged.
        """
        ring = self._ring
        keep_count = self.config.successor_count
        if len(ring) <= keep_count:
            return 0
        kept: List[Tuple[int, int]] = ring[:keep_count]
        previous_distance = ring[keep_count - 1][0]
        last_index = len(ring) - 1
        removed = 0
        for index in range(keep_count, len(ring)):
            entry = ring[index]
            if index == last_index or _power_of_two_in(previous_distance, entry[0]):
                kept.append(entry)
            else:
                removed += 1
            previous_distance = entry[0]
        if removed:
            self._ring = kept
        return removed

    # ------------------------------------------------------------------
    # Seam
    # ------------------------------------------------------------------
    def routing_table_snapshot(self) -> List[int]:
        """All known members in successor (clockwise) order."""
        return [node_id for _, node_id in self._ring]

    def _refresh_targets(self, rng: random.Random) -> List[int]:
        """One stabilisation cycle: own successor plus one random finger.

        Looking up ``own_id + 1`` re-finds the immediate successor (and,
        via the lookup's learn-from-responses loop, refills the successor
        list); looking up ``own_id + 2^i`` for one uniformly random ``i``
        repairs a finger — over cycles all fingers get revisited, matching
        Chord's ``fix_fingers``.  Exactly one RNG draw per cycle keeps the
        shared refresh stream deterministic.
        """
        size = self.config.id_space_size
        finger_bit = rng.randrange(self.config.bit_length)
        return [
            (self.node_id + 1) % size,
            (self.node_id + (1 << finger_bit)) % size,
        ]
