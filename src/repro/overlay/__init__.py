"""Protocol-agnostic overlay seam and the overlay registry.

The resilience pipeline is protocol-shaped, not protocol-specific: it
needs a join/leave lifecycle, routing-state capture (``node_id ->
[contact_ids]``), lookup issuing with virtual-latency accounting, a
periodic maintenance hook, and a ``snapshot_version`` for the
incremental graph maintainer.  :class:`repro.overlay.base.OverlayProtocol`
makes that interface explicit; this package ships three implementations
behind one registry:

* ``kademlia`` — the paper's protocol (k-buckets; XOR metric),
* ``chord`` — successor lists + finger tables (clockwise ring metric),
* ``pastry`` — leaf sets + routing rows (prefix-then-ring metric).

:func:`get_overlay` resolves a protocol name to an
:class:`OverlayDescriptor`, which builds the per-node configuration from
the scenario's protocol dimensions (``bucket_size`` maps onto each
protocol's redundancy analogue: Chord's successor count, Pastry's leaf
set size) and supplies the protocol factory the simulation instantiates
per node.  The Kademlia classes are imported lazily —
:mod:`repro.kademlia.protocol` itself imports :mod:`repro.overlay.base`,
so an eager import here would be circular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.overlay.base import (
    LookupResult,
    OverlayProtocol,
    RoutedOverlayProtocol,
)
from repro.overlay.chord import ChordConfig, ChordProtocol
from repro.overlay.pastry import PastryConfig, PastryProtocol

__all__ = [
    "ChordConfig",
    "ChordProtocol",
    "LookupResult",
    "OverlayDescriptor",
    "OverlayProtocol",
    "PastryConfig",
    "PastryProtocol",
    "RoutedOverlayProtocol",
    "get_overlay",
    "overlay_names",
]


@dataclass(frozen=True)
class OverlayDescriptor:
    """One registered overlay protocol.

    ``config_builder`` maps the scenario's protocol dimensions onto the
    protocol's own configuration type (every builder accepts the same
    keyword set; Kademlia-only knobs such as ``refresh_all_buckets`` are
    ignored by the others).  ``factory_resolver`` returns the
    ``(node_id, config) -> protocol`` callable — resolved lazily so the
    Kademlia descriptor does not import :mod:`repro.kademlia` at module
    load.
    """

    name: str
    description: str
    config_builder: Callable[..., Any]
    factory_resolver: Callable[[], Callable[[int, Any], OverlayProtocol]]

    def build_config(
        self,
        *,
        bit_length: int,
        bucket_size: int,
        alpha: int,
        staleness_limit: int,
        bootstrap_reseed: bool,
        refresh_interval_minutes: float = 60.0,
        refresh_all_buckets: bool = False,
    ) -> Any:
        """Build the per-node protocol configuration for one scenario."""
        return self.config_builder(
            bit_length=bit_length,
            bucket_size=bucket_size,
            alpha=alpha,
            staleness_limit=staleness_limit,
            bootstrap_reseed=bootstrap_reseed,
            refresh_interval_minutes=refresh_interval_minutes,
            refresh_all_buckets=refresh_all_buckets,
        )

    def protocol_factory(self) -> Callable[[int, Any], OverlayProtocol]:
        """Return the ``(node_id, config) -> protocol`` constructor."""
        return self.factory_resolver()


def _kademlia_config(**kwargs: Any) -> Any:
    from repro.kademlia.config import KademliaConfig

    return KademliaConfig(
        bit_length=kwargs["bit_length"],
        bucket_size=kwargs["bucket_size"],
        alpha=kwargs["alpha"],
        staleness_limit=kwargs["staleness_limit"],
        refresh_interval_minutes=kwargs["refresh_interval_minutes"],
        refresh_all_buckets=kwargs["refresh_all_buckets"],
        bootstrap_reseed=kwargs["bootstrap_reseed"],
    )


def _kademlia_factory() -> Callable[[int, Any], OverlayProtocol]:
    from repro.kademlia.protocol import KademliaProtocol

    return KademliaProtocol


def _chord_config(**kwargs: Any) -> ChordConfig:
    return ChordConfig(
        bit_length=kwargs["bit_length"],
        successor_count=kwargs["bucket_size"],
        alpha=kwargs["alpha"],
        staleness_limit=kwargs["staleness_limit"],
        refresh_interval_minutes=kwargs["refresh_interval_minutes"],
        bootstrap_reseed=kwargs["bootstrap_reseed"],
    )


def _pastry_config(**kwargs: Any) -> PastryConfig:
    return PastryConfig(
        bit_length=kwargs["bit_length"],
        leaf_set_size=kwargs["bucket_size"],
        alpha=kwargs["alpha"],
        staleness_limit=kwargs["staleness_limit"],
        refresh_interval_minutes=kwargs["refresh_interval_minutes"],
        bootstrap_reseed=kwargs["bootstrap_reseed"],
    )


_OVERLAYS: Dict[str, OverlayDescriptor] = {
    "kademlia": OverlayDescriptor(
        name="kademlia",
        description="Kademlia: k-buckets over the XOR metric (the paper's protocol)",
        config_builder=_kademlia_config,
        factory_resolver=_kademlia_factory,
    ),
    "chord": OverlayDescriptor(
        name="chord",
        description="Chord: successor lists + finger tables on a clockwise ring",
        config_builder=_chord_config,
        factory_resolver=lambda: ChordProtocol,
    ),
    "pastry": OverlayDescriptor(
        name="pastry",
        description="Pastry: leaf sets + prefix routing rows",
        config_builder=_pastry_config,
        factory_resolver=lambda: PastryProtocol,
    ),
}


def get_overlay(name: str) -> OverlayDescriptor:
    """Return the named overlay descriptor."""
    try:
        return _OVERLAYS[name]
    except KeyError:
        raise KeyError(
            f"unknown overlay protocol {name!r}; available: {overlay_names()}"
        ) from None


def overlay_names() -> List[str]:
    """All registered protocol names, Kademlia (the default) first."""
    return ["kademlia", "chord", "pastry"]
