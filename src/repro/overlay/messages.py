"""Protocol-agnostic overlay RPC message types.

Structured overlays that route by a distance metric (Chord, Pastry) need
only two round-trip shapes: a routing query ("give me the contacts you
know that are useful toward this target") and a replica store.  Like the
Kademlia messages they are frozen, slotted dataclasses — value objects
the transport passes by reference; one :class:`RouteRequest` is created
per lookup and reused for every hop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True, slots=True)
class RouteRequest:
    """Ask for the responder's best-known contacts toward ``target_id``."""

    target_id: int


@dataclass(frozen=True, slots=True)
class RouteResponse:
    """Contacts from the responder's routing state, closest-first."""

    responder_id: int
    contacts: Tuple[int, ...]


@dataclass(frozen=True, slots=True)
class ReplicaStoreRequest:
    """Ask the receiver to store a key/value replica."""

    key_id: int
    value: Any


@dataclass(frozen=True, slots=True)
class ReplicaStoreResponse:
    """Acknowledgement of a :class:`ReplicaStoreRequest`."""

    responder_id: int
    stored: bool
