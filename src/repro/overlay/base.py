"""The protocol-agnostic overlay seam.

The resilience pipeline (simulation orchestration, snapshot capture, the
incremental connectivity-graph maintainer, virtual-time latency
accounting) never needed anything Kademlia-specific — it relies on a
small protocol surface that this module makes explicit:

* **lifecycle** — :meth:`OverlayProtocol.join` /
  :meth:`~repro.simulator.protocol.Protocol.on_join` /
  :meth:`~repro.simulator.protocol.Protocol.on_leave`;
* **routing-state capture** — :meth:`OverlayProtocol.routing_table_snapshot`
  returns the node's snapshot row (``node_id -> [contact_ids]``) and
  :meth:`OverlayProtocol.snapshot_version` stamps its membership so the
  incremental graph maintainer can skip unchanged rows;
* **lookup issuing** — :meth:`OverlayProtocol.lookup` returns a
  :class:`LookupResult`, whose round/failure structure feeds the
  virtual-time latency model (:mod:`repro.obs.virtualtime`);
* **maintenance** — :meth:`OverlayProtocol.maintenance_refresh` is the
  periodic refresh hook the simulation schedules per node (Kademlia's
  bucket refresh, Chord's stabilisation, Pastry's row repair).

:class:`KademliaProtocol` implements the interface directly on its
k-bucket machinery; :class:`RoutedOverlayProtocol` (below) is the shared
base for overlays that route greedily by a per-target distance metric
(Chord's clockwise ring distance, Pastry's prefix-then-ring tuple) and
provides the iterative lookup driver, RPC bookkeeping, bootstrap reseed
fallback and dissemination — mirroring the Kademlia semantics so all
protocols face identical churn/attack/loss dynamics.
"""

from __future__ import annotations

import abc
import random
from bisect import insort
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs import active as obs_active
from repro.obs.virtualtime import lookup_virtual_latency
from repro.overlay.messages import (
    ReplicaStoreRequest,
    ReplicaStoreResponse,
    RouteRequest,
    RouteResponse,
)
from repro.simulator.protocol import Protocol

Clock = Callable[[], float]


@dataclass(slots=True)
class LookupResult:
    """Outcome of one iterative lookup.

    Attributes
    ----------
    target_id:
        The identifier that was looked up.
    contacted:
        Nodes that answered, sorted by routing distance to the target
        (closest first), at most the protocol's replication count.
    queried:
        Total number of round-trips attempted.
    failures:
        Number of failed round-trips.
    rounds:
        Number of parallel query rounds performed.
    """

    target_id: int
    contacted: List[int] = field(default_factory=list)
    queried: int = 0
    failures: int = 0
    rounds: int = 0

    @property
    def succeeded(self) -> bool:
        """True if at least one node answered."""
        return bool(self.contacted)

    def virtual_latency(
        self, rtt: float = 1.0, timeout_penalty: float = 3.0
    ) -> float:
        """Per-hop virtual-time latency of this lookup, in RTT units.

        The whole lookup executes within one simulator event, so no
        virtual duration can be measured directly — but the per-hop
        structure is fully known: every parallel query round is one
        request/response round-trip deep (one ``rtt``), and every failed
        round-trip additionally waited out a timeout
        (``timeout_penalty``).  Accumulating those per-hop costs yields
        the latency a real deployment would have observed; the default
        constants mirror :mod:`repro.obs.virtualtime`.
        """
        return self.rounds * rtt + self.failures * timeout_penalty

    def closest(self) -> int:
        """Return the contacted node closest to the target.

        Raises ``ValueError`` when nothing was contacted.
        """
        if not self.contacted:
            raise ValueError("lookup contacted no nodes")
        return self.contacted[0]


class OverlayProtocol(Protocol):
    """Abstract interface every overlay protocol implements.

    Concrete here is only the transport/clock wiring shared by every
    implementation; everything behavioural is abstract.  The simulation
    layer (:class:`repro.experiments.simulation.OverlaySimulation`) and
    the incremental graph maintainer talk exclusively to this surface.
    """

    protocol_name = "overlay"

    def __init__(self, node_id: int) -> None:
        super().__init__(node_id)
        self.transport = None
        self._clock: Clock = lambda: 0.0
        self.bootstrap_id: Optional[int] = None
        self._ever_connected = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def bind(self, transport, clock: Clock) -> None:
        """Attach the transport and the simulated clock."""
        self.transport = transport
        self._clock = clock

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock()

    @property
    def ever_connected(self) -> bool:
        """True once this node has completed one successful outgoing round-trip."""
        return self._ever_connected

    def _require_bound(self) -> None:
        if self.transport is None:
            raise RuntimeError(
                "protocol is not bound to a transport; call bind() first"
            )

    # ------------------------------------------------------------------
    # The seam
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def join(self, bootstrap_id: Optional[int]) -> LookupResult:
        """Join the network via ``bootstrap_id`` (None for the first node)."""

    @abc.abstractmethod
    def lookup(self, target_id: int) -> LookupResult:
        """Perform one iterative lookup for ``target_id``."""

    @abc.abstractmethod
    def disseminate(self, key_id: int, value: Any) -> Tuple[LookupResult, int]:
        """Store ``value`` on the replica set of ``key_id``."""

    @abc.abstractmethod
    def maintenance_refresh(self, rng: random.Random) -> int:
        """Run one periodic maintenance cycle; returns the lookups issued."""

    @abc.abstractmethod
    def routing_table_snapshot(self) -> List[int]:
        """Return the current contact ids (the node's row of the snapshot)."""

    @abc.abstractmethod
    def snapshot_version(self):
        """Version stamp of :meth:`routing_table_snapshot`'s membership.

        The incremental connectivity-graph maintainer skips rebuilding a
        node's row while this value is unchanged, so implementations must
        bump it whenever the snapshot's contact set changes.
        """


class RoutedOverlayProtocol(OverlayProtocol):
    """Shared machinery for metric-routed overlays (Chord, Pastry).

    A subclass supplies its routing *state* and *geometry*:

    * :meth:`route_distance` — the per-target metric greedy routing
      minimises (any totally ordered value; ties are broken by node id);
    * :meth:`route_contacts` — the contacts from the node's own state
      that are useful toward a target (lookup seeds and the server-side
      :class:`RouteResponse` payload);
    * :meth:`_learn_contact` / :meth:`_forget_contact` — state insertion
      and eviction, returning whether the snapshot membership changed;
    * :attr:`replication` — the lookup/dissemination replica count (the
      protocol's ``k`` analogue).

    Everything else — the iterative greedy lookup driver, RPC
    bookkeeping with staleness eviction, the bootstrap reseed fallback,
    dissemination and the observability counters (prefixed with the
    protocol name, e.g. ``chord.lookups``) — mirrors the Kademlia
    implementation so the three protocols face identical environment
    dynamics.
    """

    def __init__(self, node_id: int, config) -> None:
        super().__init__(node_id)
        self.config = config
        self.storage: Dict[int, Any] = {}
        #: Consecutive failed round-trips per known contact; a contact is
        #: evicted when its streak reaches ``config.staleness_limit``.
        self._failure_streaks: Dict[int, int] = {}
        self._membership_version = 0
        self.lookups_performed = 0
        self.disseminations_performed = 0
        self.refreshes_performed = 0
        self.reseeds_performed = 0
        #: Metrics registry captured at construction (None = observability
        #: off); write-only, never feeds back into protocol behaviour.
        self._obs = obs_active()

    # ------------------------------------------------------------------
    # Subclass surface
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def replication(self) -> int:
        """Replica count of lookups and disseminations (the ``k`` analogue)."""

    @abc.abstractmethod
    def route_distance(self, node_id: int, target_id: int):
        """Totally ordered routing metric of ``node_id`` toward ``target_id``."""

    @abc.abstractmethod
    def route_contacts(self, target_id: int) -> List[int]:
        """Contacts from own state useful toward ``target_id``, closest first."""

    @abc.abstractmethod
    def _learn_contact(self, node_id: int) -> bool:
        """Insert ``node_id`` into the routing state; True if membership changed."""

    @abc.abstractmethod
    def _forget_contact(self, node_id: int) -> bool:
        """Evict ``node_id`` from the routing state; True if it was present."""

    # ------------------------------------------------------------------
    # Contact bookkeeping (mirrors the Kademlia semantics)
    # ------------------------------------------------------------------
    def note_contact(self, node_id: int, time: Optional[float] = None) -> bool:
        """Record a (successful) interaction with ``node_id``."""
        if node_id == self.node_id:
            return False
        self._failure_streaks.pop(node_id, None)
        if self._learn_contact(node_id):
            self._membership_version += 1
        return True

    def record_failure(self, node_id: int) -> bool:
        """Record a failed round-trip; True if the contact was dropped as stale."""
        streak = self._failure_streaks.get(node_id, 0) + 1
        if streak >= self.config.staleness_limit:
            self._failure_streaks.pop(node_id, None)
            if self._forget_contact(node_id):
                self._membership_version += 1
                return True
            return False
        self._failure_streaks[node_id] = streak
        return False

    def rpc(self, target_id: int, request: Any) -> Tuple[bool, Any]:
        """One round-trip plus the table bookkeeping (success refresh / staleness)."""
        transport = self.transport
        if transport is None:
            self._require_bound()
        ok, response = transport.rpc(self.node_id, target_id, request)
        if ok:
            self._ever_connected = True
            self.note_contact(target_id)
        else:
            evicted = self.record_failure(target_id)
            if evicted and self._obs is not None:
                self._obs.inc(f"{self.protocol_name}.evictions")
        return ok, response

    def _reseed_if_isolated(self) -> bool:
        """Fall back to the configured bootstrap contact when cut off.

        Same recovery as Kademlia's (see
        :meth:`repro.kademlia.protocol.KademliaProtocol._reseed_if_isolated`):
        without it, loss during the join permanently partitions islands.
        """
        if not self.config.bootstrap_reseed:
            return False
        if self._ever_connected and self.routing_table_snapshot():
            return False
        if self.bootstrap_id is None or self.bootstrap_id == self.node_id:
            return False
        if self.note_contact(self.bootstrap_id):
            self.reseeds_performed += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def handle_request(self, sender_id: int, request: Any) -> Optional[Any]:
        """Dispatch an incoming RPC; every request also records the sender."""
        self.note_contact(sender_id)
        if isinstance(request, RouteRequest):
            return RouteResponse(
                responder_id=self.node_id,
                contacts=tuple(self.route_contacts(request.target_id)),
            )
        if isinstance(request, ReplicaStoreRequest):
            self.storage[request.key_id] = request.value
            return ReplicaStoreResponse(responder_id=self.node_id, stored=True)
        return None

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def join(self, bootstrap_id: Optional[int]) -> LookupResult:
        """Insert the bootstrap contact and look up the own identifier."""
        self._require_bound()
        if bootstrap_id is not None and bootstrap_id != self.node_id:
            self.bootstrap_id = bootstrap_id
            self.note_contact(bootstrap_id)
        return self.lookup(self.node_id)

    def lookup(self, target_id: int) -> LookupResult:
        """One iterative greedy lookup with virtual-latency accounting."""
        self._require_bound()
        self._reseed_if_isolated()
        self.lookups_performed += 1
        result = self._iterative_route(target_id)
        registry = self._obs
        if registry is not None:
            name = self.protocol_name
            registry.inc(f"{name}.lookups")
            registry.observe(
                f"{name}.lookup.virtual_latency", lookup_virtual_latency(result)
            )
            registry.observe(f"{name}.lookup.rounds", result.rounds)
            if result.failures:
                registry.inc(f"{name}.lookup.failed_rpcs", result.failures)
        return result

    def disseminate(self, key_id: int, value: Any) -> Tuple[LookupResult, int]:
        """Store ``value`` on the replica set of ``key_id``."""
        self._require_bound()
        self.disseminations_performed += 1
        locate = self.lookup(key_id)
        stored = 0
        for node_id in locate.contacted:
            ok, response = self.rpc(
                node_id, ReplicaStoreRequest(key_id=key_id, value=value)
            )
            if (
                ok
                and isinstance(response, ReplicaStoreResponse)
                and response.stored
            ):
                stored += 1
        return locate, stored

    def maintenance_refresh(self, rng: random.Random) -> int:
        """Issue one maintenance cycle's routing lookups.

        Subclasses supply the targets via :meth:`_refresh_targets`; the
        shared part counts the cycle and keeps the RNG draw order
        deterministic (one :meth:`_refresh_targets` call per cycle).
        """
        self._require_bound()
        self._reseed_if_isolated()
        self.refreshes_performed += 1
        if self._obs is not None:
            self._obs.inc(f"{self.protocol_name}.refreshes")
        targets = self._refresh_targets(rng)
        for target in targets:
            self._iterative_route(target)
        return len(targets)

    @abc.abstractmethod
    def _refresh_targets(self, rng: random.Random) -> List[int]:
        """Identifiers one maintenance cycle looks up."""

    # ------------------------------------------------------------------
    # Snapshot seam
    # ------------------------------------------------------------------
    def snapshot_version(self):
        return self._membership_version

    # ------------------------------------------------------------------
    # The iterative greedy lookup driver
    # ------------------------------------------------------------------
    def _iterative_route(self, target_id: int) -> LookupResult:
        """Greedy iterative routing, the overlay analogue of
        :func:`repro.kademlia.lookup.iterative_find_node`.

        The frontier is a lazy min-heap over ``(distance, id)`` holding
        exactly the known-but-unqueried candidates; ``alpha`` closest are
        queried per round and every reply's contacts extend the frontier
        and the routing state.  Distance ties (possible for Pastry's ring
        component) are broken by node id, so the order is deterministic.

        Termination follows the paper's formulation — the lookup ends
        when ``replication`` nodes have responded *and no remaining
        candidate could improve that set*, or when no candidates remain.
        The progress clause matters more here than in the Kademlia
        driver: metric-routed overlays seed the frontier from a single
        local vantage point (their own ring neighbourhood), so the first
        ``replication`` responders routinely predate convergence.
        """
        result = LookupResult(target_id=target_id)
        replication = self.replication
        alpha = self.config.alpha
        own_id = self.node_id
        rpc = self.rpc
        note_contact = self.note_contact
        distance = self.route_distance
        request = RouteRequest(target_id=target_id)

        seeds = self.route_contacts(target_id)
        candidates: Set[int] = set(seeds)
        frontier = [(distance(node_id, target_id), node_id) for node_id in seeds]
        heapify(frontier)
        #: Distances of responders, ascending; holds at most ``replication``
        #: entries (the current best responder set).
        best_responded: List = []
        responded: Set[int] = set()
        queried_count = 0
        failure_count = 0
        round_count = 0

        while frontier:
            if len(responded) >= replication and (
                frontier[0][0] >= best_responded[-1]
            ):
                break
            batch = [
                heappop(frontier)[1] for _ in range(min(alpha, len(frontier)))
            ]
            round_count += 1

            for node_id in batch:
                queried_count += 1
                ok, response = rpc(node_id, request)
                if not ok or not isinstance(response, RouteResponse):
                    failure_count += 1
                    continue
                responded.add(node_id)
                insort(best_responded, distance(node_id, target_id))
                if len(best_responded) > replication:
                    best_responded.pop()
                for contact_id in response.contacts:
                    if contact_id != own_id and contact_id not in candidates:
                        candidates.add(contact_id)
                        heappush(
                            frontier,
                            (distance(contact_id, target_id), contact_id),
                        )
                    note_contact(contact_id)

        result.queried = queried_count
        result.failures = failure_count
        result.rounds = round_count
        result.contacted = sorted(
            responded, key=lambda node_id: (distance(node_id, target_id), node_id)
        )[:replication]
        return result
