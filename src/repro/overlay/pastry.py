"""Pastry overlay protocol (leaf sets + routing rows).

Pastry (Rowstron & Druschel, Middleware 2001) treats identifiers as
strings of base-``2^b`` digits and routes by prefix: each hop forwards
to a node sharing at least one more digit with the key.  Each node
maintains

* a **leaf set** of the numerically closest nodes — half above and half
  below the own id on the ring (the resilience backbone and the final
  routing hop), and
* a **routing table** of rows: the entry at ``(row, col)`` is some node
  sharing exactly ``row`` leading digits with the own id and having
  digit ``col`` at position ``row`` (the O(log N) prefix accelerator).

Routing-table slots are first-writer-wins (classical Pastry keeps any
qualifying node, often preferring proximity; the simulator has no
topology, so the first learned contact is as good as any and keeps the
state deterministic).  The routing metric is lexicographic: fewer
remaining digits to correct first, then numeric ring distance — ties on
the metric are broken by node id in the shared lookup driver.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.overlay.base import RoutedOverlayProtocol


@dataclass(frozen=True)
class PastryConfig:
    """Parameters of one Pastry node.

    ``leaf_set_size`` is Pastry's redundancy analogue of Kademlia's
    bucket size ``k``: it sizes the leaf set (split evenly above/below
    the own id) and the replica set of lookups and disseminations, so
    parameter sweeps vary it.  ``digit_bits`` is Pastry's ``b`` (digits
    are base ``2^b``); ``bit_length`` must be a multiple of it.
    """

    bit_length: int = 160
    leaf_set_size: int = 20
    digit_bits: int = 4
    alpha: int = 3
    staleness_limit: int = 1
    refresh_interval_minutes: float = 60.0
    bootstrap_reseed: bool = True

    def __post_init__(self) -> None:
        if self.bit_length <= 0:
            raise ValueError("bit_length must be positive")
        if self.leaf_set_size <= 0:
            raise ValueError("leaf_set_size must be positive")
        if self.digit_bits <= 0:
            raise ValueError("digit_bits must be positive")
        if self.bit_length % self.digit_bits != 0:
            raise ValueError("bit_length must be a multiple of digit_bits")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")
        if self.staleness_limit <= 0:
            raise ValueError("staleness_limit must be positive")
        if self.refresh_interval_minutes <= 0:
            raise ValueError("refresh_interval_minutes must be positive")

    @property
    def id_space_size(self) -> int:
        """Number of identifiers in the ring (``2^bit_length``)."""
        return 1 << self.bit_length

    @property
    def row_count(self) -> int:
        """Number of digit positions (routing-table rows)."""
        return self.bit_length // self.digit_bits


class PastryProtocol(RoutedOverlayProtocol):
    """Pastry state machine for one node."""

    protocol_name = "pastry"

    def __init__(self, node_id: int, config: PastryConfig) -> None:
        super().__init__(node_id, config)
        half = max(1, config.leaf_set_size // 2)
        self._leaf_half = half
        #: Leaf-set halves as ``(ring_distance, id)``, sorted: the
        #: ``half`` members nearest clockwise resp. counter-clockwise.
        self._leaf_right: List[Tuple[int, int]] = []
        self._leaf_left: List[Tuple[int, int]] = []
        #: Routing rows: ``(row, col) -> id``, first-writer-wins.
        self._rows: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _shared_digits(self, a: int, b: int) -> int:
        """Number of leading base-``2^b`` digits ``a`` and ``b`` share."""
        xor = a ^ b
        if xor == 0:
            return self.config.row_count
        return (self.config.bit_length - xor.bit_length()) // self.config.digit_bits

    def _digit(self, node_id: int, row: int) -> int:
        """The base-``2^b`` digit of ``node_id`` at position ``row``."""
        config = self.config
        shift = config.bit_length - (row + 1) * config.digit_bits
        return (node_id >> shift) & ((1 << config.digit_bits) - 1)

    def _ring_distance(self, a: int, b: int) -> int:
        size = self.config.id_space_size
        clockwise = (b - a) % size
        return min(clockwise, size - clockwise)

    def route_distance(self, node_id: int, target_id: int) -> Tuple[int, int]:
        """Digits still to correct, then numeric ring distance.

        The first component makes greedy routing reproduce Pastry's
        prefix hops (each hop strictly extends the shared prefix when it
        can); the second reproduces the final leaf-set hop.  The shared
        lookup driver breaks metric ties by node id.
        """
        return (
            self.config.row_count - self._shared_digits(node_id, target_id),
            self._ring_distance(node_id, target_id),
        )

    # ------------------------------------------------------------------
    # Routing state
    # ------------------------------------------------------------------
    @property
    def replication(self) -> int:
        return self.config.leaf_set_size

    def _known_contacts(self) -> List[int]:
        """All distinct known contacts (leaf sets + rows), deterministic order."""
        seen = []
        seen_set = set()
        for _, node_id in self._leaf_right:
            if node_id not in seen_set:
                seen_set.add(node_id)
                seen.append(node_id)
        for _, node_id in self._leaf_left:
            if node_id not in seen_set:
                seen_set.add(node_id)
                seen.append(node_id)
        for key in sorted(self._rows):
            node_id = self._rows[key]
            if node_id not in seen_set:
                seen_set.add(node_id)
                seen.append(node_id)
        return seen

    def route_contacts(self, target_id: int) -> List[int]:
        members = self._known_contacts()
        members.sort(
            key=lambda node_id: (self.route_distance(node_id, target_id), node_id)
        )
        return members[: self.replication]

    def _learn_half(
        self, half: List[Tuple[int, int]], distance: int, node_id: int
    ) -> bool:
        entry = (distance, node_id)
        index = bisect_left(half, entry)
        if index < len(half) and half[index] == entry:
            return False
        if len(half) >= self._leaf_half and entry >= half[-1]:
            return False
        half.insert(index, entry)
        if len(half) > self._leaf_half:
            half.pop()
        return True

    def _learn_contact(self, node_id: int) -> bool:
        size = self.config.id_space_size
        clockwise = (node_id - self.node_id) % size
        changed = self._learn_half(self._leaf_right, clockwise, node_id)
        changed = (
            self._learn_half(self._leaf_left, size - clockwise, node_id) or changed
        )
        row = self._shared_digits(self.node_id, node_id)
        if row < self.config.row_count:
            key = (row, self._digit(node_id, row))
            if key not in self._rows:
                self._rows[key] = node_id
                changed = True
        return changed

    def _forget_half(self, half: List[Tuple[int, int]], node_id: int) -> bool:
        for index, (_, member) in enumerate(half):
            if member == node_id:
                del half[index]
                return True
        return False

    def _forget_contact(self, node_id: int) -> bool:
        changed = self._forget_half(self._leaf_right, node_id)
        changed = self._forget_half(self._leaf_left, node_id) or changed
        row = self._shared_digits(self.node_id, node_id)
        if row < self.config.row_count:
            key = (row, self._digit(node_id, row))
            if self._rows.get(key) == node_id:
                del self._rows[key]
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Seam
    # ------------------------------------------------------------------
    def routing_table_snapshot(self) -> List[int]:
        """Leaf set (clockwise, then counter-clockwise) followed by the rows."""
        return self._known_contacts()

    def _refresh_targets(self, rng: random.Random) -> List[int]:
        """One maintenance cycle: repair one random routing-table slot.

        Looks up the own id with one digit position rewritten to a random
        value — the lookup's responses populate exactly the row/column
        region that slot covers (Pastry's periodic routing-table
        maintenance).  The leaf set heals as a side effect of every
        lookup's learn-from-responses loop.  Exactly two RNG draws per
        cycle keep the shared refresh stream deterministic.
        """
        config = self.config
        row = rng.randrange(config.row_count)
        digit = rng.randrange(1 << config.digit_bits)
        shift = config.bit_length - (row + 1) * config.digit_bits
        mask = ((1 << config.digit_bits) - 1) << shift
        target = (self.node_id & ~mask) | (digit << shift)
        return [target]
