"""Run one scenario end-to-end and collect the connectivity time series."""

from __future__ import annotations

import time as wallclock
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.obs import tracing

from repro.churn.churn_model import get_churn_scenario
from repro.churn.loss import get_loss_model
from repro.churn.traffic import TrafficModel
from repro.core.analyzer import ConnectivityAnalyzer
from repro.core.timeseries import ConnectivitySample, ConnectivityTimeSeries
from repro.experiments.phases import PhaseSchedule
from repro.experiments.profiles import ScaleProfile, get_profile
from repro.experiments.scenarios import Scenario
from repro.experiments.simulation import KademliaSimulation
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.overlay import get_overlay
from repro.simulator.random_source import RandomSource
from repro.simulator.transport import TransportStats


@dataclass
class ExperimentResult:
    """Everything recorded while running one scenario."""

    scenario: Scenario
    profile_name: str
    phases: PhaseSchedule
    series: ConnectivityTimeSeries
    transport_stats: TransportStats
    seed: int
    joins: int
    leaves: int
    wall_seconds: float
    snapshots: List[RoutingTableSnapshot] = field(default_factory=list)
    #: Metrics snapshot of the run's observability registry (None unless
    #: ``REPRO_OBS`` was enabled).  **Transient by design**: persistence
    #: (:func:`repro.experiments.persistence.result_to_dict`) enumerates
    #: fields explicitly and never serialises this one, so cache entries
    #: and trajectory digests are byte-identical with metrics on or off.
    obs_metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    def churn_mean_minimum(self) -> float:
        """Mean of the minimum connectivity during the churn phase (Table 2)."""
        start, end = self.phases.churn_window()
        return self.series.mean_minimum(start, end + 1e-9)

    def churn_relative_variance_minimum(self) -> float:
        """Relative variance of the minimum connectivity during churn (Table 2)."""
        start, end = self.phases.churn_window()
        return self.series.relative_variance_minimum(start, end + 1e-9)

    def churn_mean_average(self) -> float:
        """Mean of the average connectivity during the churn phase."""
        start, end = self.phases.churn_window()
        return self.series.mean_average(start, end + 1e-9)

    def stabilized_minimum(self) -> int:
        """Minimum connectivity at the last snapshot before churn starts."""
        pre_churn = self.series.window(0.0, self.phases.stabilization_end + 1e-9)
        if not len(pre_churn):
            return 0
        return pre_churn.samples[-1].minimum

    def final_network_size(self) -> int:
        """Network size at the final snapshot."""
        return self.series.final_sample().network_size if len(self.series) else 0

    def summary(self) -> Dict[str, float]:
        """Small dictionary used by reports and the CLI."""
        return {
            "scenario": self.scenario.name,
            "k": self.scenario.bucket_size,
            "alpha": self.scenario.alpha,
            "churn": self.scenario.churn,
            "loss": self.scenario.loss,
            "staleness": self.scenario.staleness_limit,
            "size_class": self.scenario.size_class,
            "stabilized_min": self.stabilized_minimum(),
            "churn_mean_min": self.churn_mean_minimum(),
            "churn_rv_min": self.churn_relative_variance_minimum(),
            "final_network_size": self.final_network_size(),
            "wall_seconds": self.wall_seconds,
        }


def _record_run_metrics(registry, simulation: KademliaSimulation, wall: float) -> None:
    """Fold end-of-run simulator/transport aggregates into the registry.

    Hot-loop quantities (events executed, message counts) are read off
    the always-on counters the simulator and transport keep anyway, so
    observability adds nothing to the event loop itself; only this one
    end-of-run pass is extra.  Counters accumulate across merges, gauges
    describe this single run (a campaign merging many task snapshots
    folds them into per-name histograms).
    """
    simulator = simulation.simulator
    registry.inc("sim.events", simulator.events_processed)
    registry.set_gauge(
        "sim.events_per_sec",
        simulator.events_processed / wall if wall > 0 else 0.0,
    )
    registry.set_gauge("sim.virtual_minutes", simulator.now)
    registry.set_gauge("sim.heap_live", simulator.pending_events)
    registry.set_gauge("sim.heap_dead", simulator.cancelled_pending_events)
    registry.inc("sim.heap_compactions", simulator.compactions)
    registry.set_gauge("sim.wall_seconds", wall)
    registry.inc("sim.joins", simulation.joins)
    registry.inc("sim.leaves", simulation.leaves)
    registry.inc("sim.snapshots", simulation.snapshots_taken)

    stats = simulation.transport.stats
    registry.inc("transport.requests_sent", stats.requests_sent)
    registry.inc("transport.round_trips_ok", stats.round_trips_ok)
    registry.inc("transport.round_trips_failed", stats.round_trips_failed)
    registry.inc("transport.requests_lost", stats.requests_lost)
    registry.inc("transport.responses_lost", stats.responses_lost)
    registry.inc(
        "transport.requests_to_dead_nodes", stats.requests_to_dead_nodes
    )
    request_counts = simulation.transport.obs_request_counts
    if request_counts:
        for name, count in request_counts.items():
            registry.inc(f"transport.messages.{name}", count)


class ExperimentRunner:
    """Configure and execute scenario runs.

    Parameters
    ----------
    profile:
        A :class:`ScaleProfile` or profile name (default ``"bench"``).
    seed:
        Root seed; each scenario run derives its own child universe from
        the scenario name, so two runs of the same scenario with the same
        seed are identical and different scenarios are independent.
    keep_snapshots:
        Store the raw routing-table snapshots on the result (memory-heavy;
        off by default).
    algorithm:
        Max-flow algorithm forwarded to the connectivity analyzer.
    flow_jobs:
        Worker processes for the per-snapshot batched pair-flow engine
        (see :class:`repro.core.analyzer.ConnectivityAnalyzer`).  Purely
        an execution knob: any value yields bit-identical results, so it
        is not part of the experiment's identity.
    adaptive_shards:
        Cost-aware pair-flow scheduling (adaptive shard sizing plus
        tightness-ordered minimum passes).  Like ``flow_jobs``, an
        execution knob with bit-identical output, excluded from the
        experiment's identity.
    connectivity:
        Per-snapshot measurement mode: ``"exact"`` (the paper's
        pipeline) or ``"estimate"`` (sampled-pair estimation with
        confidence intervals, :mod:`repro.core.estimation`).  Unlike the
        knobs above this **is** identity-bearing: estimated series are
        statistically, not bit-, compatible with exact ones.
    sample_pairs / ci_level:
        Estimation-mode parameters (pair budget and confidence level);
        ignored in exact mode.
    """

    def __init__(
        self,
        profile: ScaleProfile | str = "bench",
        seed: int = 42,
        keep_snapshots: bool = False,
        algorithm: str = "dinic",
        flow_jobs: int = 1,
        adaptive_shards: bool = False,
        connectivity: str = "exact",
        sample_pairs: int = 256,
        ci_level: float = 0.95,
    ) -> None:
        if connectivity not in ("exact", "estimate"):
            raise ValueError(
                f"connectivity must be 'exact' or 'estimate', got {connectivity!r}"
            )
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.seed = seed
        self.keep_snapshots = keep_snapshots
        self.algorithm = algorithm
        self.flow_jobs = flow_jobs
        self.adaptive_shards = adaptive_shards
        self.connectivity = connectivity
        self.sample_pairs = sample_pairs
        self.ci_level = ci_level

    @classmethod
    def for_task(cls, task) -> "ExperimentRunner":
        """Build the runner matching an :class:`repro.runtime.task.ExperimentTask`.

        The single mapping from a task's execution knobs to a configured
        runner (used by :meth:`ExperimentTask.run`).  A runner is
        scenario-independent and holds no per-run mutable state —
        :meth:`run` builds a fresh simulation and analyzer every call —
        so construction is six attribute assignments and is not worth
        caching anywhere.
        """
        return cls(
            profile=task.profile,
            seed=task.seed,
            keep_snapshots=task.keep_snapshots,
            algorithm=task.algorithm,
            flow_jobs=task.flow_jobs,
            adaptive_shards=task.adaptive_shards,
            connectivity=getattr(task, "connectivity", "exact"),
            sample_pairs=getattr(task, "sample_pairs", 256),
            ci_level=getattr(task, "ci_level", 0.95),
        )

    # ------------------------------------------------------------------
    def build_simulation(
        self, scenario: Scenario, hardening=None
    ) -> KademliaSimulation:
        """Construct (but do not run) the simulation for ``scenario``.

        The scenario's ``protocol`` selects the overlay (Kademlia, Chord
        or Pastry) via the registry in :mod:`repro.overlay`; its
        configuration and per-node protocol factory come from the
        overlay's descriptor.

        ``hardening`` is an optional
        :class:`repro.extensions.hardening.HardeningConfig`; when given, its
        protocol factory and maintenance policies are attached to the
        simulation (used by the ablation benchmarks and the hardening
        examples).  The hardening extensions subclass the Kademlia
        protocol, so they are rejected for other overlays.
        """
        profile = self.profile
        overlay = get_overlay(scenario.protocol)
        config = scenario.overlay_config(
            refresh_interval_minutes=profile.refresh_interval_minutes,
            refresh_all_buckets=profile.refresh_all_buckets,
        )
        traffic = (
            TrafficModel(
                enabled=True,
                lookups_per_node_per_minute=profile.lookups_per_node_per_minute,
                disseminations_per_node_per_minute=profile.disseminations_per_node_per_minute,
            )
            if scenario.traffic
            else TrafficModel.disabled()
        )
        extra_kwargs = {}
        if hardening is not None:
            if scenario.protocol != "kademlia":
                raise ValueError(
                    "hardening extensions are Kademlia-specific; scenario "
                    f"{scenario.name!r} uses protocol {scenario.protocol!r}"
                )
            extra_kwargs = {
                "protocol_factory": hardening.protocol_factory(),
                "maintenance": hardening.maintenance_policies(),
            }
        else:
            extra_kwargs = {
                "protocol_factory": overlay.protocol_factory(),
                "protocol_name": overlay.name,
            }
        return KademliaSimulation(
            config=config,
            loss=get_loss_model(scenario.loss),
            traffic=traffic,
            churn=get_churn_scenario(scenario.churn),
            random_source=RandomSource(self.seed).spawn(scenario.name),
            **extra_kwargs,
        )

    def phase_schedule(self, scenario: Scenario) -> PhaseSchedule:
        """Return the phase schedule of ``scenario`` under the active profile."""
        profile = self.profile
        size = profile.network_size(scenario.size_class)
        return PhaseSchedule(
            setup_end=profile.setup_minutes,
            stabilization_end=profile.churn_start,
            simulation_end=profile.simulation_end(scenario.churn, size),
        )

    def build_analyzer(self):
        """Return the per-snapshot connectivity measurement object.

        Exact mode builds the paper's :class:`ConnectivityAnalyzer` from
        the profile; estimate mode builds a
        :class:`repro.core.estimation.ConnectivityEstimator` with the
        runner's sampling parameters.  Both expose the same
        ``analyze_graph`` / context-manager surface and report through
        the shared connectivity-report protocol, so :meth:`_run` never
        branches.
        """
        profile = self.profile
        if self.connectivity == "estimate":
            from repro.core.estimation import ConnectivityEstimator

            return ConnectivityEstimator(
                sample_pairs=self.sample_pairs,
                ci_level=self.ci_level,
                seed=self.seed,
                algorithm=self.algorithm,
                flow_jobs=self.flow_jobs,
                adaptive_shards=self.adaptive_shards,
            )
        return ConnectivityAnalyzer(
            algorithm=self.algorithm,
            source_fraction=profile.source_fraction,
            target_fraction=profile.target_fraction,
            average_pairs=profile.average_pairs,
            seed=self.seed,
            flow_jobs=self.flow_jobs,
            adaptive_shards=self.adaptive_shards,
        )

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario, hardening=None) -> ExperimentResult:
        """Run ``scenario`` and return the collected measurements.

        ``hardening`` optionally enables the extension mechanisms — see
        :meth:`build_simulation`.

        Under observability the whole run executes inside a fresh
        :func:`repro.obs.run_scope`, so the transport, protocols and
        pair-flow engines built below record into a per-run registry
        whose snapshot is attached as ``result.obs_metrics`` — cleanly
        per-task even when a warm worker runs many tasks in one process.
        """
        with obs.run_scope() as registry, tracing.span(
            "experiment.run",
            scenario=scenario.name,
            profile=self.profile.name,
            seed=self.seed,
        ):
            return self._run(scenario, hardening, registry)

    def _run(
        self, scenario: Scenario, hardening, registry
    ) -> ExperimentResult:
        profile = self.profile
        simulation = self.build_simulation(scenario, hardening=hardening)
        phases = self.phase_schedule(scenario)
        analyzer = self.build_analyzer()
        size = profile.network_size(scenario.size_class)

        series = ConnectivityTimeSeries(label=scenario.label())
        stored_snapshots: List[RoutingTableSnapshot] = []

        def _on_snapshot(snapshot: RoutingTableSnapshot) -> None:
            # The simulation maintains the connectivity graph incrementally
            # (rows rebuilt only for tables whose membership changed since
            # the previous snapshot); the graph is content-identical to
            # build_connectivity_graph(snapshot.routing_tables) and is
            # consumed synchronously, before the simulation advances.
            tracing.point(
                "snapshot", vt=snapshot.time, network_size=snapshot.network_size
            )
            report = analyzer.analyze_graph(simulation.connectivity_graph())
            series.append(
                ConnectivitySample(
                    time=snapshot.time,
                    network_size=snapshot.network_size,
                    report=report,
                )
            )
            if self.keep_snapshots:
                stored_snapshots.append(snapshot)

        simulation.schedule_setup(size, profile.setup_minutes)
        simulation.schedule_traffic(1.0, phases.simulation_end)
        simulation.schedule_churn(phases.stabilization_end, phases.simulation_end)
        simulation.schedule_snapshots(
            phases.snapshot_times(profile.snapshot_interval_minutes), _on_snapshot
        )

        started = wallclock.perf_counter()
        # The analyzer holds the shared flow-worker pool (flow_jobs > 1)
        # open across all snapshots of the run; release it at the end.
        with analyzer:
            simulation.run_until(phases.simulation_end)
        wall = wallclock.perf_counter() - started

        result = ExperimentResult(
            scenario=scenario,
            profile_name=profile.name,
            phases=phases,
            series=series,
            transport_stats=simulation.transport.stats,
            seed=self.seed,
            joins=simulation.joins,
            leaves=simulation.leaves,
            wall_seconds=wall,
            snapshots=stored_snapshots,
        )
        if registry is not None:
            _record_run_metrics(registry, simulation, wall)
            result.obs_metrics = registry.snapshot()
        return result

    def run_many(self, scenarios: List[Scenario]) -> List[ExperimentResult]:
        """Run several scenarios sequentially."""
        return [self.run(scenario) for scenario in scenarios]
