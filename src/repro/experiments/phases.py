"""Simulation phases (paper Section 5.4).

Every simulation runs through three phases:

* **setup** — nodes join at random times (0 to ``setup_end``);
* **stabilisation** — the network runs without churn until
  ``stabilization_end`` (the paper uses 90 minutes, enough for every node
  to perform at least one bucket refresh);
* **churn** — the churn scenario is applied from ``stabilization_end`` until
  the end of the simulation.

Table 2 and Figure 10 aggregate the minimum connectivity over the churn
phase only; :meth:`PhaseSchedule.churn_window` provides that window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

SETUP = "setup"
STABILIZATION = "stabilization"
CHURN = "churn"


@dataclass(frozen=True)
class PhaseSchedule:
    """The three-phase timeline of one simulation."""

    setup_end: float
    stabilization_end: float
    simulation_end: float

    def __post_init__(self) -> None:
        if not 0 < self.setup_end <= self.stabilization_end <= self.simulation_end:
            raise ValueError(
                "phase boundaries must satisfy 0 < setup_end <= stabilization_end"
                f" <= simulation_end, got {self}"
            )

    def phase_of(self, time: float) -> str:
        """Return the phase name active at simulated ``time``."""
        if time < self.setup_end:
            return SETUP
        if time < self.stabilization_end:
            return STABILIZATION
        return CHURN

    def churn_window(self) -> Tuple[float, float]:
        """Return ``(start, end)`` of the churn phase."""
        return self.stabilization_end, self.simulation_end

    @property
    def churn_duration(self) -> float:
        """Length of the churn phase in simulated minutes."""
        return self.simulation_end - self.stabilization_end

    def snapshot_times(self, interval: float) -> list:
        """Return the snapshot timestamps: every ``interval`` minutes plus the end.

        The first snapshot is taken at ``interval`` (not at time 0, when the
        network is still empty); the simulation end is always included so
        the final state is observed.
        """
        if interval <= 0:
            raise ValueError("snapshot interval must be positive")
        times = []
        t = interval
        while t < self.simulation_end:
            times.append(round(t, 6))
            t += interval
        times.append(self.simulation_end)
        return times
