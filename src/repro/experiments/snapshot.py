"""Routing-table snapshots.

The paper persists the routing tables of all nodes at pre-defined time
stamps and feeds those snapshot files into the graph transformation and
max-flow pipeline (Section 5.2).  :class:`RoutingTableSnapshot` is the
in-memory equivalent; it can be serialised to JSON for offline analysis
through the CLI (``repro-kademlia analyze-snapshot``).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.core.connectivity_graph import build_connectivity_graph
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RoutingTableSnapshot:
    """Routing tables of all alive nodes at one simulated time."""

    time: float
    routing_tables: Dict[int, List[int]]
    #: Overlay protocol the tables belong to (see :mod:`repro.overlay`).
    protocol: str = "kademlia"

    # ------------------------------------------------------------------
    @property
    def network_size(self) -> int:
        """Number of alive nodes captured by the snapshot."""
        return len(self.routing_tables)

    def alive_nodes(self) -> List[int]:
        """Return the ids of the captured nodes."""
        return list(self.routing_tables)

    def total_contacts(self) -> int:
        """Total number of routing-table entries across all nodes."""
        return sum(len(contacts) for contacts in self.routing_tables.values())

    def to_connectivity_graph(self) -> DiGraph:
        """Build the connectivity graph of this snapshot (Section 4.2)."""
        return build_connectivity_graph(self.routing_tables)

    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        time: float,
        tables: Mapping[int, Sequence[int]],
        protocol: str = "kademlia",
    ) -> "RoutingTableSnapshot":
        """Deep-copy ``tables`` into an immutable snapshot."""
        return cls(
            time=time,
            routing_tables={
                int(node_id): list(contacts) for node_id, contacts in tables.items()
            },
            protocol=protocol,
        )

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON string.

        Kademlia snapshots keep the pre-protocol-dimension encoding (no
        ``protocol`` key): snapshot bytes participate in the pinned
        trajectory digests, which must stay stable on the Kademlia path.
        """
        payload = {
            "time": self.time,
            "routing_tables": {
                str(node_id): contacts
                for node_id, contacts in self.routing_tables.items()
            },
        }
        if self.protocol != "kademlia":
            payload["protocol"] = self.protocol
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RoutingTableSnapshot":
        """Deserialise from :meth:`to_json` output.

        Legacy payloads (written before the protocol dimension existed)
        carry no ``protocol`` key and load as Kademlia snapshots.
        """
        payload = json.loads(text)
        return cls(
            time=float(payload["time"]),
            routing_tables={
                int(node_id): [int(c) for c in contacts]
                for node_id, contacts in payload["routing_tables"].items()
            },
            protocol=payload.get("protocol", "kademlia"),
        )

    def save(self, path: PathLike) -> None:
        """Write the snapshot to ``path`` as JSON."""
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: PathLike) -> "RoutingTableSnapshot":
        """Read a snapshot previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


def synthetic_snapshot(
    network_size: int,
    contacts_per_node: int = 16,
    seed: int = 0,
    time: float = 0.0,
) -> RoutingTableSnapshot:
    """Generate a seeded Kademlia-shaped snapshot without a simulation.

    Deployment-scale (10^4+-node) snapshots are too expensive to simulate
    inside CI or a benchmark just to have *input* for the estimation
    pipeline, so this builds one directly: each node's routing table is a
    ring successor (which makes the graph strongly connected, like a
    stabilised overlay) plus XOR-structured long-range contacts — one
    sampled per distance octave, mirroring Kademlia's per-bucket layout —
    filled up with uniform picks when the octaves are exhausted.  Purely
    a function of ``(network_size, contacts_per_node, seed)``.
    """
    if network_size < 2:
        raise ValueError(f"network_size must be >= 2, got {network_size}")
    rng = random.Random(seed)
    bits = max(1, (network_size - 1).bit_length())
    tables: Dict[int, List[int]] = {}
    for node in range(network_size):
        contacts = {(node + 1) % network_size}
        # One contact per XOR-distance octave, nearest octaves first —
        # the bucket structure the estimator's degree strata see in a
        # real Kademlia table.
        for bit in range(bits):
            if len(contacts) >= contacts_per_node:
                break
            low, high = 1 << bit, min(1 << (bit + 1), network_size)
            if low >= high:
                continue
            candidate = (node ^ rng.randrange(low, high)) % network_size
            if candidate != node:
                contacts.add(candidate)
        while len(contacts) < min(contacts_per_node, network_size - 1):
            candidate = rng.randrange(network_size)
            if candidate != node:
                contacts.add(candidate)
        tables[node] = sorted(contacts)
    return RoutingTableSnapshot(time=time, routing_tables=tables)
