"""Experiment framework reproducing the paper's Simulations A–L.

* :mod:`repro.experiments.profiles` — scale profiles (paper-scale vs the
  laptop-scale defaults used by tests and benchmarks);
* :mod:`repro.experiments.phases` — the setup / stabilisation / churn phase
  schedule (Section 5.4);
* :mod:`repro.experiments.scenarios` — the registry of Simulations A–L and
  their parameter dimensions (Section 5.3);
* :mod:`repro.experiments.snapshot` — routing-table snapshots;
* :mod:`repro.experiments.simulation` — the orchestration layer wiring the
  Kademlia protocol, churn, traffic and loss models onto the event engine;
* :mod:`repro.experiments.runner` — runs one scenario and collects the
  connectivity time series;
* :mod:`repro.experiments.report` — regenerates the paper's tables/figures
  from experiment results;
* :mod:`repro.experiments.sweep` — parameter sweeps (bucket size k, alpha,
  staleness, loss).
"""

from repro.experiments.phases import PhaseSchedule
from repro.experiments.profiles import PROFILES, ScaleProfile, get_profile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import SCENARIOS, Scenario, ScenarioRegistry, get_scenario
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.experiments.simulation import KademliaSimulation, OverlaySimulation
from repro.experiments.sweep import run_bucket_size_sweep, run_scenario

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "KademliaSimulation",
    "OverlaySimulation",
    "PROFILES",
    "PhaseSchedule",
    "RoutingTableSnapshot",
    "SCENARIOS",
    "ScaleProfile",
    "Scenario",
    "ScenarioRegistry",
    "get_profile",
    "get_scenario",
    "run_bucket_size_sweep",
    "run_scenario",
]
