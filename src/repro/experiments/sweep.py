"""Parameter sweeps over scenarios.

The paper's figures sweep one protocol parameter while holding a scenario
fixed: bucket size ``k`` (Figures 2–9), parallelism ``alpha`` (Figure 10),
staleness limit ``s`` and loss level (Figures 11–14).  The helpers here run
those sweeps and return results keyed by the swept value, which is the form
the report generators and benchmarks consume.

Every sweep dispatches through :mod:`repro.runtime`: tasks are independent,
so ``jobs > 1`` runs them on a process pool with bit-identical output, and
passing a :class:`~repro.runtime.cache.ResultCache` makes repeated sweeps
reuse finished runs instead of re-simulating them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import (
    PAPER_BUCKET_SIZES,
    PAPER_LOSS_LEVELS,
    PAPER_STALENESS_VALUES,
    Scenario,
)
from repro.runtime.cache import ResultCache
from repro.runtime.campaign import (
    SCHEDULE_FIFO,
    Campaign,
    ProgressCallback,
    sweep_tasks,
)
from repro.runtime.executor import Executor, make_executor
from repro.runtime.resilience import RetryPolicy


def _make_campaign(
    jobs: int,
    cache: Optional[ResultCache],
    executor: Optional[Executor],
    progress: Optional[ProgressCallback],
    schedule: str = SCHEDULE_FIFO,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
) -> Campaign:
    return Campaign(
        executor=(
            executor
            if executor is not None
            else make_executor(jobs, backend=backend)
        ),
        cache=cache,
        progress=progress,
        schedule=schedule,
        batch=batch,
        retry_policy=retry_policy,
    )


def run_scenario(
    scenario: Scenario,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    algorithm: str = "dinic",
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    keep_snapshots: bool = False,
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> ExperimentResult:
    """Run a single scenario with the given profile and seed.

    ``jobs`` parallelises across tasks; ``flow_jobs`` parallelises the
    per-snapshot connectivity analysis *within* a task (see README
    "Performance" for how the two compose).  ``schedule``,
    ``adaptive_shards`` and ``batch`` select cost-aware dispatch
    (order/grouping only; results are bit-identical for every
    combination — ``batch`` runs several tasks per warm worker call
    through a persistent pool, see :class:`Campaign`).  ``backend``
    picks the executor family (``"local"`` pool or ``"distributed"``
    loopback workers) when no explicit ``executor`` is given; output is
    bit-identical either way.  ``connectivity`` selects exact or
    sampled-pair estimated per-snapshot measurement (identity-bearing,
    with ``sample_pairs`` / ``ci_level`` — see
    :mod:`repro.core.estimation`).
    """
    tasks = sweep_tasks(
        scenario, [{}], profile=profile, seed=seed, algorithm=algorithm,
        keep_snapshots=keep_snapshots, flow_jobs=flow_jobs,
        adaptive_shards=adaptive_shards, connectivity=connectivity,
        sample_pairs=sample_pairs, ci_level=ci_level,
    )
    with _make_campaign(
        jobs, cache, executor, progress, schedule, batch, retry_policy,
        backend,
    ) as campaign:
        return campaign.run(tasks)[0]


def run_sweep(
    base: Scenario,
    overrides: Iterable[Mapping[str, object]],
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    algorithm: str = "dinic",
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    keep_snapshots: bool = False,
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> List[ExperimentResult]:
    """Run one variant of ``base`` per override set and return the results.

    The generic form behind every named sweep below; exposed for callers
    (CLI, benchmarks) that sweep custom dimension combinations.  Results
    come back in override order whatever the ``schedule``.
    """
    tasks = sweep_tasks(
        base, overrides, profile=profile, seed=seed, algorithm=algorithm,
        keep_snapshots=keep_snapshots, flow_jobs=flow_jobs,
        adaptive_shards=adaptive_shards, connectivity=connectivity,
        sample_pairs=sample_pairs, ci_level=ci_level,
    )
    with _make_campaign(
        jobs, cache, executor, progress, schedule, batch, retry_policy,
        backend,
    ) as campaign:
        return campaign.run(tasks)


def run_bucket_size_sweep(
    base: Scenario,
    bucket_sizes: Iterable[int] = PAPER_BUCKET_SIZES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> Dict[int, ExperimentResult]:
    """Run ``base`` once per bucket size (the k-sweep of Figures 2–9)."""
    bucket_sizes = list(bucket_sizes)
    results = run_sweep(
        base,
        [{"bucket_size": k} for k in bucket_sizes],
        profile=profile, seed=seed, jobs=jobs, flow_jobs=flow_jobs,
        cache=cache, executor=executor, progress=progress,
        schedule=schedule, adaptive_shards=adaptive_shards, batch=batch,
        retry_policy=retry_policy, backend=backend,
        connectivity=connectivity, sample_pairs=sample_pairs,
        ci_level=ci_level,
    )
    return dict(zip(bucket_sizes, results))


def run_alpha_sweep(
    base: Scenario,
    alphas: Iterable[int],
    bucket_sizes: Iterable[int] = PAPER_BUCKET_SIZES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> Dict[Tuple[int, int], ExperimentResult]:
    """Run the (alpha, k) grid behind Figure 10; keys are ``(alpha, k)``."""
    keys = [(alpha, k) for alpha in alphas for k in bucket_sizes]
    results = run_sweep(
        base,
        [{"alpha": alpha, "bucket_size": k} for alpha, k in keys],
        profile=profile, seed=seed, jobs=jobs, flow_jobs=flow_jobs,
        cache=cache, executor=executor, progress=progress,
        schedule=schedule, adaptive_shards=adaptive_shards, batch=batch,
        retry_policy=retry_policy, backend=backend,
        connectivity=connectivity, sample_pairs=sample_pairs,
        ci_level=ci_level,
    )
    return dict(zip(keys, results))


def run_staleness_sweep(
    base: Scenario,
    staleness_values: Iterable[int] = PAPER_STALENESS_VALUES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> Dict[int, ExperimentResult]:
    """Run ``base`` once per staleness limit (Figure 11)."""
    staleness_values = list(staleness_values)
    results = run_sweep(
        base,
        [{"staleness_limit": s} for s in staleness_values],
        profile=profile, seed=seed, jobs=jobs, flow_jobs=flow_jobs,
        cache=cache, executor=executor, progress=progress,
        schedule=schedule, adaptive_shards=adaptive_shards, batch=batch,
        retry_policy=retry_policy, backend=backend,
        connectivity=connectivity, sample_pairs=sample_pairs,
        ci_level=ci_level,
    )
    return dict(zip(staleness_values, results))


def run_loss_sweep(
    base: Scenario,
    loss_levels: Iterable[str] = PAPER_LOSS_LEVELS,
    staleness_values: Iterable[int] = PAPER_STALENESS_VALUES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    jobs: int = 1,
    flow_jobs: int = 1,
    cache: Optional[ResultCache] = None,
    executor: Optional[Executor] = None,
    progress: Optional[ProgressCallback] = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
    retry_policy: Optional[RetryPolicy] = None,
    backend: str = "local",
    connectivity: str = "exact",
    sample_pairs: int = 256,
    ci_level: float = 0.95,
) -> Dict[Tuple[str, int], ExperimentResult]:
    """Run the (loss, s) grid behind Figures 12–14; keys are ``(loss, s)``."""
    keys = [(loss, s) for loss in loss_levels for s in staleness_values]
    results = run_sweep(
        base,
        [{"loss": loss, "staleness_limit": s} for loss, s in keys],
        profile=profile, seed=seed, jobs=jobs, flow_jobs=flow_jobs,
        cache=cache, executor=executor, progress=progress,
        schedule=schedule, adaptive_shards=adaptive_shards, batch=batch,
        retry_policy=retry_policy, backend=backend,
        connectivity=connectivity, sample_pairs=sample_pairs,
        ci_level=ci_level,
    )
    return dict(zip(keys, results))
