"""Parameter sweeps over scenarios.

The paper's figures sweep one protocol parameter while holding a scenario
fixed: bucket size ``k`` (Figures 2–9), parallelism ``alpha`` (Figure 10),
staleness limit ``s`` and loss level (Figures 11–14).  The helpers here run
those sweeps and return results keyed by the swept value, which is the form
the report generators and benchmarks consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import (
    PAPER_BUCKET_SIZES,
    PAPER_LOSS_LEVELS,
    PAPER_STALENESS_VALUES,
    Scenario,
)


def run_scenario(
    scenario: Scenario,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
    algorithm: str = "dinic",
) -> ExperimentResult:
    """Run a single scenario with the given profile and seed."""
    runner = ExperimentRunner(profile=profile, seed=seed, algorithm=algorithm)
    return runner.run(scenario)


def run_bucket_size_sweep(
    base: Scenario,
    bucket_sizes: Iterable[int] = PAPER_BUCKET_SIZES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
) -> Dict[int, ExperimentResult]:
    """Run ``base`` once per bucket size (the k-sweep of Figures 2–9)."""
    runner = ExperimentRunner(profile=profile, seed=seed)
    return {
        k: runner.run(base.with_overrides(bucket_size=k)) for k in bucket_sizes
    }


def run_alpha_sweep(
    base: Scenario,
    alphas: Iterable[int],
    bucket_sizes: Iterable[int] = PAPER_BUCKET_SIZES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
) -> Dict[Tuple[int, int], ExperimentResult]:
    """Run the (alpha, k) grid behind Figure 10; keys are ``(alpha, k)``."""
    runner = ExperimentRunner(profile=profile, seed=seed)
    results: Dict[Tuple[int, int], ExperimentResult] = {}
    for alpha in alphas:
        for k in bucket_sizes:
            scenario = base.with_overrides(alpha=alpha, bucket_size=k)
            results[(alpha, k)] = runner.run(scenario)
    return results


def run_staleness_sweep(
    base: Scenario,
    staleness_values: Iterable[int] = PAPER_STALENESS_VALUES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
) -> Dict[int, ExperimentResult]:
    """Run ``base`` once per staleness limit (Figure 11)."""
    runner = ExperimentRunner(profile=profile, seed=seed)
    return {
        s: runner.run(base.with_overrides(staleness_limit=s))
        for s in staleness_values
    }


def run_loss_sweep(
    base: Scenario,
    loss_levels: Iterable[str] = PAPER_LOSS_LEVELS,
    staleness_values: Iterable[int] = PAPER_STALENESS_VALUES,
    profile: ScaleProfile | str = "bench",
    seed: int = 42,
) -> Dict[Tuple[str, int], ExperimentResult]:
    """Run the (loss, s) grid behind Figures 12–14; keys are ``(loss, s)``."""
    runner = ExperimentRunner(profile=profile, seed=seed)
    results: Dict[Tuple[str, int], ExperimentResult] = {}
    for loss in loss_levels:
        for s in staleness_values:
            scenario = base.with_overrides(loss=loss, staleness_limit=s)
            results[(loss, s)] = runner.run(scenario)
    return results
