"""Persistence of experiment results.

The paper's workflow separates the expensive simulation/evaluation from the
analysis: snapshots and flow results are written to files, aggregated later.
This module provides the same separation for our runs: an
:class:`ExperimentResult` can be exported to a JSON document containing the
scenario, phase schedule and the full connectivity time series, and loaded
back for later reporting without re-running the simulation.

Snapshots themselves (which can be large) are stored only when the result
holds them and ``include_snapshots=True``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.analyzer import ConnectivityReport
from repro.core.estimation import EstimatedConnectivityReport
from repro.core.timeseries import ConnectivitySample, ConnectivityTimeSeries
from repro.experiments.phases import PhaseSchedule
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.simulator.transport import TransportStats

PathLike = Union[str, Path]

#: Format identifier written into every result document.
FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult, include_snapshots: bool = False) -> Dict:
    """Convert an :class:`ExperimentResult` into a JSON-serialisable dict."""
    document = {
        "format_version": FORMAT_VERSION,
        "scenario": {
            "name": result.scenario.name,
            "description": result.scenario.description,
            "size_class": result.scenario.size_class,
            "churn": result.scenario.churn,
            "traffic": result.scenario.traffic,
            "loss": result.scenario.loss,
            "bucket_size": result.scenario.bucket_size,
            "alpha": result.scenario.alpha,
            "bit_length": result.scenario.bit_length,
            "staleness_limit": result.scenario.staleness_limit,
            "bootstrap_reseed": result.scenario.bootstrap_reseed,
        },
        "profile_name": result.profile_name,
        "seed": result.seed,
        "joins": result.joins,
        "leaves": result.leaves,
        "wall_seconds": result.wall_seconds,
        "phases": {
            "setup_end": result.phases.setup_end,
            "stabilization_end": result.phases.stabilization_end,
            "simulation_end": result.phases.simulation_end,
        },
        "transport": {
            "requests_sent": result.transport_stats.requests_sent,
            "requests_lost": result.transport_stats.requests_lost,
            "responses_lost": result.transport_stats.responses_lost,
            "requests_to_dead_nodes": result.transport_stats.requests_to_dead_nodes,
            "round_trips_ok": result.transport_stats.round_trips_ok,
        },
        "series": {
            "label": result.series.label,
            "samples": [
                {
                    "time": sample.time,
                    "network_size": sample.network_size,
                    "report": sample.report.as_dict(),
                }
                for sample in result.series.samples
            ],
        },
    }
    # Kademlia results keep the pre-protocol-dimension encoding (no
    # "protocol" key): result documents feed the pinned trajectory
    # digests, which must stay byte-stable on the Kademlia path.
    if result.scenario.protocol != "kademlia":
        document["scenario"]["protocol"] = result.scenario.protocol
    if include_snapshots and result.snapshots:
        document["snapshots"] = [
            json.loads(snapshot.to_json()) for snapshot in result.snapshots
        ]
    return document


def result_from_dict(document: Dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_dict` output."""
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported result format version {version!r} (expected {FORMAT_VERSION})"
        )
    scenario_data = document["scenario"]
    scenario = Scenario(
        name=scenario_data["name"],
        description=scenario_data["description"],
        size_class=scenario_data["size_class"],
        churn=scenario_data["churn"],
        traffic=scenario_data["traffic"],
        loss=scenario_data["loss"],
        bucket_size=scenario_data["bucket_size"],
        alpha=scenario_data["alpha"],
        bit_length=scenario_data["bit_length"],
        staleness_limit=scenario_data["staleness_limit"],
        # Documents written before the field was persisted default to the
        # Scenario default (True).
        bootstrap_reseed=scenario_data.get("bootstrap_reseed", True),
        # Pre-overlay documents (and all Kademlia ones) carry no protocol.
        protocol=scenario_data.get("protocol", "kademlia"),
    )
    phases = PhaseSchedule(
        setup_end=document["phases"]["setup_end"],
        stabilization_end=document["phases"]["stabilization_end"],
        simulation_end=document["phases"]["simulation_end"],
    )
    transport = TransportStats(
        requests_sent=document["transport"]["requests_sent"],
        requests_lost=document["transport"]["requests_lost"],
        responses_lost=document["transport"]["responses_lost"],
        requests_to_dead_nodes=document["transport"]["requests_to_dead_nodes"],
        round_trips_ok=document["transport"]["round_trips_ok"],
    )
    series = ConnectivityTimeSeries(label=document["series"]["label"])
    for sample in document["series"]["samples"]:
        # Estimate-mode reports carry an "estimated": true marker;
        # exact-mode dicts never have the key (byte-stable encoding).
        report_doc = sample["report"]
        if report_doc.get("estimated"):
            report = EstimatedConnectivityReport.from_dict(report_doc)
        else:
            report = ConnectivityReport(**report_doc)
        series.append(
            ConnectivitySample(
                time=sample["time"],
                network_size=sample["network_size"],
                report=report,
            )
        )
    snapshots: List[RoutingTableSnapshot] = []
    for snapshot_doc in document.get("snapshots", []):
        snapshots.append(RoutingTableSnapshot.from_json(json.dumps(snapshot_doc)))
    return ExperimentResult(
        scenario=scenario,
        profile_name=document["profile_name"],
        phases=phases,
        series=series,
        transport_stats=transport,
        seed=document["seed"],
        joins=document["joins"],
        leaves=document["leaves"],
        wall_seconds=document["wall_seconds"],
        snapshots=snapshots,
    )


def trajectory_digest(result: ExperimentResult) -> str:
    """Return a SHA-256 digest of everything deterministic about a result.

    The digest covers the scenario, phase schedule, transport counters,
    join/leave counts, the full connectivity time series and (when kept)
    the raw routing-table snapshots — every field of
    :func:`result_to_dict` except wall-clock timings
    (``wall_seconds`` and each report's ``elapsed_seconds``).

    Two runs of the same task must produce the same digest regardless of
    host, process placement, ``--jobs`` or ``--flow-jobs``; the
    determinism test suite pins digests of seeded runs across the
    simulator fast-path rewrite.
    """
    document = result_to_dict(result, include_snapshots=True)
    document.pop("wall_seconds", None)
    for sample in document["series"]["samples"]:
        sample["report"].pop("elapsed_seconds", None)
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_result(
    result: ExperimentResult, path: PathLike, include_snapshots: bool = False
) -> None:
    """Write ``result`` to ``path`` as JSON."""
    document = result_to_dict(result, include_snapshots=include_snapshots)
    Path(path).write_text(json.dumps(document, indent=2), encoding="utf-8")


def load_result(path: PathLike) -> ExperimentResult:
    """Load a result previously written by :func:`save_result`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    return result_from_dict(document)
