"""Orchestration of one overlay simulation.

:class:`OverlaySimulation` wires an overlay protocol (Kademlia, Chord or
Pastry — anything implementing :class:`repro.overlay.base.OverlayProtocol`),
churn, traffic and loss models onto the discrete-event engine:

* the *setup phase* schedules every initial node's join at a uniformly
  random time, bootstrapping from a uniformly random already-joined node;
* a per-minute *traffic control* schedules each alive node's lookups and
  disseminations at random times within the coming minute (paper: 10
  lookups and 1 dissemination per node and minute);
* a per-minute *churn control* schedules node joins/leaves according to the
  churn scenario, also at random times within the minute;
* every node runs a periodic *maintenance refresh* (Kademlia's bucket
  refresh, paper: every 60 minutes; Chord's stabilisation; Pastry's row
  repair), scheduled relative to its own join time;
* *snapshots* capture all alive nodes' routing tables at fixed intervals.

``KademliaSimulation`` remains as an alias: the Kademlia path is a pure
refactor and every existing caller keeps working unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.churn.bootstrap import RandomBootstrapPolicy
from repro.core.incremental import IncrementalGraphMaintainer
from repro.churn.churn_model import ChurnScenario, JOIN, LEAVE
from repro.churn.loss import MessageLossModel
from repro.churn.traffic import DISSEMINATE, LOOKUP, TrafficModel
from repro.experiments.snapshot import RoutingTableSnapshot
from repro.kademlia.config import KademliaConfig
from repro.kademlia.node_id import generate_node_id
from repro.kademlia.protocol import KademliaProtocol
from repro.overlay.base import OverlayProtocol
from repro.simulator.engine import Simulator
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.random_source import RandomSource
from repro.simulator.transport import Transport


class OverlaySimulation:
    """A running overlay network with its environment models.

    ``config`` is the protocol's own configuration object (it must expose
    ``bit_length``, ``id_space_size`` and ``refresh_interval_minutes``);
    ``protocol_factory`` builds one protocol instance per node.  The
    protocol name defaults to the factory's ``protocol_name`` attribute —
    plain-function factories (the hardening extensions wrap
    ``KademliaProtocol`` in closures) fall back to Kademlia.
    """

    def __init__(
        self,
        config: KademliaConfig,
        loss: MessageLossModel,
        traffic: TrafficModel,
        churn: ChurnScenario,
        random_source: Optional[RandomSource] = None,
        protocol_factory: Callable[[int, KademliaConfig], OverlayProtocol] = KademliaProtocol,
        maintenance: Sequence = (),
        protocol_name: Optional[str] = None,
    ) -> None:
        self.config = config
        self.loss = loss
        self.traffic = traffic
        self.churn = churn
        self.random = random_source or RandomSource(0)
        self.protocol_factory = protocol_factory
        if protocol_name is None:
            protocol_name = getattr(
                protocol_factory, "protocol_name", KademliaProtocol.protocol_name
            )
        self.protocol_name = protocol_name
        #: Extension maintenance policies (see ``repro.extensions``); each is
        #: applied to every alive node once per its ``interval_minutes``.
        self.maintenance = list(maintenance)

        self.simulator = Simulator()
        self.network = Network()
        self.transport = Transport(
            self.network,
            loss_probability=loss.one_way_probability,
            rng=self.random.stream("loss"),
            protocol_name=self.protocol_name,
        )
        self._bootstrap_policy = RandomBootstrapPolicy(self.random.stream("bootstrap"))
        self._id_rng = self.random.stream("node-ids")
        self._churn_rng = self.random.stream("churn")
        self._traffic_rng = self.random.stream("traffic")
        self._refresh_rng = self.random.stream("refresh")
        self._maintenance_rng = self.random.stream("maintenance")
        self._data_rng = self.random.stream("data")
        self._used_ids: set = set()
        self._traffic_labels: Dict[str, str] = {}
        #: Maintains the connectivity graph incrementally across snapshots
        #: (rows rebuilt only for routing tables whose membership changed).
        self.graph_maintainer = IncrementalGraphMaintainer(self.protocol_name)
        self.joins = 0
        self.leaves = 0
        self.snapshots_taken = 0

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def _new_protocol(self, time: float) -> OverlayProtocol:
        node_id = generate_node_id(
            self.config.bit_length, self._id_rng, exclude=self._used_ids
        )
        self._used_ids.add(node_id)
        node = SimNode(node_id, joined_at=time)
        protocol = self.protocol_factory(node_id, self.config)
        protocol.bind(self.transport, self.simulator.clock)
        node.register_protocol(self.protocol_name, protocol)
        self.network.add_node(node)
        return protocol

    def join_new_node(self) -> OverlayProtocol:
        """Create a node, pick a random alive bootstrap node and join now.

        Also schedules the new node's periodic maintenance refresh.
        """
        time = self.simulator.now
        protocol = self._new_protocol(time)
        bootstrap_id = self._bootstrap_policy.select(self.network, protocol.node_id)
        protocol.join(bootstrap_id)
        protocol.on_join(time)
        self.joins += 1
        self._schedule_refresh(protocol)
        self._schedule_maintenance(protocol)
        return protocol

    def remove_random_node(self) -> Optional[int]:
        """Remove a uniformly random alive node (churn leave action)."""
        victim = self.network.random_alive_node(self._churn_rng)
        if victim is None:
            return None
        self.network.remove_node(victim.node_id, self.simulator.now)
        protocol = victim.protocols.get(self.protocol_name)
        if protocol is not None:
            protocol.on_leave(self.simulator.now)
        self.leaves += 1
        return victim.node_id

    def _schedule_refresh(self, protocol: OverlayProtocol) -> None:
        """Schedule the node's periodic maintenance refresh from its join time on."""
        interval = self.config.refresh_interval_minutes

        def _refresh() -> None:
            node = self.network.get(protocol.node_id)
            if node.alive:
                protocol.maintenance_refresh(self._refresh_rng)

        self.simulator.schedule_periodic(
            interval, _refresh, label=f"refresh:{protocol.node_id:x}"
        )

    def _schedule_maintenance(self, protocol: OverlayProtocol) -> None:
        """Schedule the extension maintenance policies for one node."""
        for policy in self.maintenance:

            def _apply(policy=policy, protocol=protocol) -> None:
                node = self.network.get(protocol.node_id)
                if node.alive:
                    policy.apply(protocol, self._maintenance_rng)

            self.simulator.schedule_periodic(
                policy.interval_minutes,
                _apply,
                label=f"maintenance:{protocol.node_id:x}",
            )

    # ------------------------------------------------------------------
    # Phase scheduling
    # ------------------------------------------------------------------
    def schedule_setup(self, node_count: int, setup_duration: float) -> None:
        """Schedule the initial joins uniformly over the setup phase."""
        rng = self.random.stream("setup")
        join_times = sorted(rng.uniform(0.0, setup_duration) for _ in range(node_count))
        for join_time in join_times:
            self.simulator.schedule_at(join_time, self.join_new_node, label="setup-join")

    def schedule_traffic(self, start: float, end: float) -> None:
        """Schedule the per-minute traffic control over ``[start, end)``."""
        if not self.traffic.enabled:
            return

        def _minute_tick() -> None:
            minute_start = self.simulator.now
            for node in self.network.alive_nodes():
                protocol = node.protocol(self.protocol_name)
                actions = self.traffic.minute_actions(minute_start, self._traffic_rng)
                for action_time, kind in actions:
                    self._schedule_traffic_action(protocol, action_time, kind)

        self.simulator.schedule_periodic(
            1.0, _minute_tick, start=start, end=end - 1.0, label="traffic"
        )

    def _schedule_traffic_action(
        self, protocol: OverlayProtocol, action_time: float, kind: str
    ) -> None:
        # The callback and its operands ride on the event itself (no
        # per-action closure): traffic actions are the most numerous
        # scheduled events of a run.
        label = self._traffic_labels.get(kind)
        if label is None:
            label = self._traffic_labels[kind] = f"traffic-{kind}"
        self.simulator.schedule_at(
            action_time,
            self._run_traffic_action,
            label=label,
            args=(protocol, kind),
        )

    def _run_traffic_action(self, protocol: OverlayProtocol, kind: str) -> None:
        node = self.network.get(protocol.node_id)
        if not node.alive:
            return
        target = self._data_rng.randrange(self.config.id_space_size)
        if kind == LOOKUP:
            protocol.lookup(target)
        elif kind == DISSEMINATE:
            protocol.disseminate(target, value={"origin": protocol.node_id})

    def schedule_churn(self, start: float, end: float) -> None:
        """Schedule the per-minute churn control over ``[start, end)``."""
        if not self.churn.is_active:
            return

        def _minute_tick() -> None:
            minute_start = self.simulator.now
            for action_time, kind in self.churn.minute_actions(
                minute_start, self._churn_rng
            ):
                if kind == JOIN:
                    self.simulator.schedule_at(
                        action_time, self.join_new_node, label="churn-join"
                    )
                elif kind == LEAVE:
                    self.simulator.schedule_at(
                        action_time, self.remove_random_node, label="churn-leave"
                    )

        self.simulator.schedule_periodic(
            1.0, _minute_tick, start=start, end=end - 1.0, label="churn"
        )

    def schedule_snapshots(
        self,
        times: List[float],
        callback: Callable[[RoutingTableSnapshot], None],
    ) -> None:
        """Invoke ``callback`` with a routing-table snapshot at each time."""

        def _make_snapshot() -> None:
            callback(self.take_snapshot())

        for time in times:
            self.simulator.schedule_at(time, _make_snapshot, label="snapshot")

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def take_snapshot(self) -> RoutingTableSnapshot:
        """Capture the routing tables of all currently alive nodes."""
        self.snapshots_taken += 1
        tables: Dict[int, List[int]] = {}
        for node in self.network.alive_nodes():
            protocol = node.protocol(self.protocol_name)
            tables[node.node_id] = protocol.routing_table_snapshot()
        return RoutingTableSnapshot.capture(
            self.simulator.now, tables, self.protocol_name
        )

    def connectivity_graph(self):
        """Return the current connectivity graph, maintained incrementally.

        Equal in content and vertex order to
        ``build_connectivity_graph(tables of the alive nodes)`` but only
        rows whose routing-table membership changed since the previous call
        are rebuilt.  The returned graph is **live** — it is mutated by the
        next call, so use it before the simulation advances (the runner
        analyzes each snapshot synchronously).
        """
        return self.graph_maintainer.refresh(self.network)

    def alive_protocols(self) -> List[OverlayProtocol]:
        """Return the protocol objects of all alive nodes."""
        return [
            node.protocol(self.protocol_name)
            for node in self.network.alive_nodes()
        ]

    def run_until(self, end_time: float) -> None:
        """Advance the simulation to ``end_time``."""
        self.simulator.run_until(end_time)


#: Backwards-compatible alias — every pre-overlay caller constructed the
#: simulation under this name with Kademlia defaults.
KademliaSimulation = OverlaySimulation
