"""Scenario registry — the paper's Simulations A to L.

A :class:`Scenario` fixes one point in the paper's eight-dimensional
parameter space (Section 5.3): network size class, churn, traffic, message
loss, bucket size ``k``, parallelism ``alpha``, bit length ``b`` and
staleness limit ``s``.  The named scenarios reproduce the table below; the
figure benchmarks build variants by overriding the dimension that the
figure sweeps (``k`` for Figures 2–9, ``alpha`` for Figure 10, ``s`` and the
loss level for Figures 11–14).

=====  =====  =======  =======  ======  ====================================
Sim    size   churn    traffic  loss    notes
=====  =====  =======  =======  ======  ====================================
A      small  0/1      no       none    Figure 2, k swept
B      large  0/1      no       none    Figure 3, k swept
C      small  0/1      yes      none    Figure 4, k swept
D      large  0/1      yes      none    Figure 5, k swept
E      small  1/1      yes      none    Figure 6, k swept; Table 2
F      large  1/1      yes      none    Figure 7, k swept; Table 2
G      small  10/10    yes      none    Figure 8, k swept; Table 2
H      large  10/10    yes      none    Figure 9, k swept; Table 2
I      large  1/1,10/10 yes     none    Figure 11, s in {1, 5}, k = 20
J      large  none     yes      varied  Figure 12, loss in {low,med,high}
K      large  1/1      yes      varied  Figure 13, loss in {low,med,high}
L      large  10/10    yes      varied  Figure 14, loss in {low,med,high}
=====  =====  =======  =======  ======  ====================================

Simulations with churn that are not specifically about ``s`` and have no
message loss use ``s = 1`` (paper Section 5.3, "Kademlia Staleness Limit").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List

from repro.churn.churn_model import get_churn_scenario
from repro.churn.loss import get_loss_model
from repro.kademlia.config import KademliaConfig

#: Bucket sizes swept by Figures 2–10.
PAPER_BUCKET_SIZES = (5, 10, 20, 30)
#: Parallelism values swept by Figure 10.
PAPER_ALPHA_VALUES = (3, 5)
#: Staleness limits swept by Figures 11–14.
PAPER_STALENESS_VALUES = (1, 5)
#: Loss scenarios swept by Figures 12–14.
PAPER_LOSS_LEVELS = ("low", "medium", "high")


@dataclass(frozen=True)
class Scenario:
    """One fully specified simulation configuration."""

    name: str
    description: str
    size_class: str = "small"
    churn: str = "0/1"
    traffic: bool = True
    loss: str = "none"
    bucket_size: int = 20
    alpha: int = 3
    bit_length: int = 160
    staleness_limit: int = 1
    #: Model fidelity switch, not a paper dimension: nodes fall back to their
    #: configured bootstrap contact until they have reached the network once
    #: (see KademliaConfig.bootstrap_reseed).  Disabled only by the
    #: bootstrap-recovery ablation benchmark.
    bootstrap_reseed: bool = True
    #: Overlay protocol under test (see :mod:`repro.overlay`).  Not a paper
    #: dimension — the paper measures Kademlia only — but the pipeline is
    #: protocol-shaped, so the same churn/attack/loss scenarios run against
    #: Chord and Pastry for cross-protocol resilience comparisons.
    protocol: str = "kademlia"

    def __post_init__(self) -> None:
        if self.size_class not in ("small", "large"):
            raise ValueError(f"size_class must be 'small' or 'large', got {self.size_class!r}")
        # Validate that the churn / loss / protocol names resolve.  The
        # overlay registry is imported lazily: repro.overlay pulls in the
        # obs layer, whose summary module in turn names the overlays.
        from repro.overlay import overlay_names

        if self.protocol not in overlay_names():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; available: {overlay_names()}"
            )
        get_churn_scenario(self.churn)
        get_loss_model(self.loss)

    # ------------------------------------------------------------------
    def with_overrides(self, **changes) -> "Scenario":
        """Return a variant of this scenario with fields replaced.

        The variant's name records the overrides, e.g. ``"E[k=5]"``.
        """
        variant = replace(self, **changes)
        if changes:
            suffix = ",".join(f"{key}={value}" for key, value in sorted(changes.items()))
            variant = replace(variant, name=f"{self.name}[{suffix}]")
        return variant

    def kademlia_config(
        self,
        refresh_interval_minutes: float = 60.0,
        refresh_all_buckets: bool = False,
    ) -> KademliaConfig:
        """Build the :class:`KademliaConfig` for this scenario."""
        return KademliaConfig(
            bit_length=self.bit_length,
            bucket_size=self.bucket_size,
            alpha=self.alpha,
            staleness_limit=self.staleness_limit,
            refresh_interval_minutes=refresh_interval_minutes,
            refresh_all_buckets=refresh_all_buckets,
            bootstrap_reseed=self.bootstrap_reseed,
        )

    def overlay_config(
        self,
        refresh_interval_minutes: float = 60.0,
        refresh_all_buckets: bool = False,
    ):
        """Build this scenario's protocol configuration via the overlay registry.

        ``bucket_size`` maps onto each protocol's redundancy analogue
        (Kademlia's ``k``, Chord's successor count, Pastry's leaf set
        size); Kademlia-only knobs are ignored by the other protocols.
        """
        from repro.overlay import get_overlay

        return get_overlay(self.protocol).build_config(
            bit_length=self.bit_length,
            bucket_size=self.bucket_size,
            alpha=self.alpha,
            staleness_limit=self.staleness_limit,
            bootstrap_reseed=self.bootstrap_reseed,
            refresh_interval_minutes=refresh_interval_minutes,
            refresh_all_buckets=refresh_all_buckets,
        )

    def label(self) -> str:
        """Short human-readable label used in report tables.

        The protocol suffix appears only for non-Kademlia overlays: the
        label feeds the connectivity series (and through it the pinned
        trajectory digests), which predate the protocol dimension.
        """
        traffic = "traffic" if self.traffic else "no-traffic"
        label = (
            f"{self.name}: {self.size_class}, churn {self.churn}, {traffic}, "
            f"loss {self.loss}, k={self.bucket_size}, alpha={self.alpha}, "
            f"b={self.bit_length}, s={self.staleness_limit}"
        )
        if self.protocol != "kademlia":
            label += f", protocol={self.protocol}"
        return label


class ScenarioRegistry:
    """Named collection of scenarios."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        """Add ``scenario``; duplicate names are rejected."""
        if scenario.name in self._scenarios:
            raise ValueError(f"scenario {scenario.name!r} is already registered")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Return the named scenario."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; available: {sorted(self._scenarios)}"
            ) from None

    def names(self) -> List[str]:
        """Return all registered scenario names."""
        return sorted(self._scenarios)

    def __iter__(self):
        return iter(self._scenarios.values())

    def __len__(self) -> int:
        return len(self._scenarios)


SCENARIOS = ScenarioRegistry()

SCENARIOS.register(Scenario(
    name="A", description="small network, churn 0/1, without data traffic (Figure 2)",
    size_class="small", churn="0/1", traffic=False, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="B", description="large network, churn 0/1, without data traffic (Figure 3)",
    size_class="large", churn="0/1", traffic=False, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="C", description="small network, churn 0/1, with data traffic (Figure 4)",
    size_class="small", churn="0/1", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="D", description="large network, churn 0/1, with data traffic (Figure 5)",
    size_class="large", churn="0/1", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="E", description="small network, churn 1/1, with data traffic (Figure 6)",
    size_class="small", churn="1/1", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="F", description="large network, churn 1/1, with data traffic (Figure 7)",
    size_class="large", churn="1/1", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="G", description="small network, churn 10/10, with data traffic (Figure 8)",
    size_class="small", churn="10/10", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="H", description="large network, churn 10/10, with data traffic (Figure 9)",
    size_class="large", churn="10/10", traffic=True, loss="none", staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="I", description="staleness limit study without message loss (Figure 11), k=20",
    size_class="large", churn="1/1", traffic=True, loss="none",
    bucket_size=20, staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="J", description="message loss without churn (Figure 12), k=20",
    size_class="large", churn="none", traffic=True, loss="low",
    bucket_size=20, staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="K", description="message loss with churn 1/1 (Figure 13), k=20",
    size_class="large", churn="1/1", traffic=True, loss="low",
    bucket_size=20, staleness_limit=1,
))
SCENARIOS.register(Scenario(
    name="L", description="message loss with churn 10/10 (Figure 14), k=20",
    size_class="large", churn="10/10", traffic=True, loss="low",
    bucket_size=20, staleness_limit=1,
))


def get_scenario(name: str) -> Scenario:
    """Return a registered scenario by name (A–L)."""
    return SCENARIOS.get(name)


def bucket_size_variants(
    base: Scenario, bucket_sizes: Iterable[int] = PAPER_BUCKET_SIZES
) -> List[Scenario]:
    """Return one variant of ``base`` per bucket size (Figures 2–9)."""
    return [base.with_overrides(bucket_size=k) for k in bucket_sizes]
