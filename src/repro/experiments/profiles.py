"""Scale profiles.

The paper simulates 250- and 2500-node networks for up to 1400 simulated
minutes and spends cluster-months on the max-flow computations.  A pure
Python reproduction cannot do that in one run, so every experiment is
parameterised by a :class:`ScaleProfile` that fixes the network sizes, the
phase lengths and the sampling effort of the connectivity analysis.

Three profiles ship with the library:

``paper``
    The original sizes and timings (250 / 2500 nodes, setup 30 min,
    stabilisation until minute 120, 10 lookups + 1 dissemination per node
    and minute, bucket refresh every 60 minutes, c = 2 % source sampling).
    Provided for completeness; running it is a cluster-scale job.

``bench``
    The default for the benchmark harness: 50 / 150 nodes, the same phase
    *structure* on a compressed time axis, proportionally scaled traffic
    and refresh interval.  Preserves the qualitative shape of every result
    (see EXPERIMENTS.md).

``tiny``
    Integration-test profile: 16 / 30 nodes and a very short time axis so
    the full pipeline runs in seconds under pytest.

``smoke``
    Benchmark-smoke profile: sits between ``tiny`` and ``bench`` (24 / 64
    nodes, short phases, light sampling) so the full benchmark harness —
    which runs dozens of simulations — finishes in minutes while keeping
    the qualitative orderings the figures assert.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

#: Number of nodes left alive at which a pure-removal (0/1) churn phase ends;
#: the paper runs Simulations A–D until roughly ten nodes remain.
MIN_REMAINING_NODES = 10


@dataclass(frozen=True)
class ScaleProfile:
    """All scale-dependent knobs of an experiment."""

    name: str
    small_network_size: int
    large_network_size: int
    setup_minutes: float
    stabilization_minutes: float
    churn_minutes: float
    snapshot_interval_minutes: float
    lookups_per_node_per_minute: float
    disseminations_per_node_per_minute: float
    refresh_interval_minutes: float
    refresh_all_buckets: bool
    source_fraction: Optional[float]
    target_fraction: float
    average_pairs: int
    min_remaining_nodes: int = MIN_REMAINING_NODES

    # ------------------------------------------------------------------
    def network_size(self, size_class: str) -> int:
        """Return the node count for a size class (``"small"`` or ``"large"``)."""
        if size_class == "small":
            return self.small_network_size
        if size_class == "large":
            return self.large_network_size
        raise ValueError(f"unknown size class {size_class!r}")

    @property
    def churn_start(self) -> float:
        """Simulated minute at which the churn phase begins."""
        return self.setup_minutes + self.stabilization_minutes

    def simulation_end(self, churn_name: str, network_size: int) -> float:
        """Return the end time of a simulation.

        Pure-removal churn (``0/1``) runs until only
        ``min_remaining_nodes`` nodes are left; every other scenario runs a
        fixed-length churn phase (``churn_minutes``), including the
        churn-free Simulation J which simply observes for the same span.
        """
        if churn_name == "0/1":
            removable = max(network_size - self.min_remaining_nodes, 0)
            return self.churn_start + removable
        return self.churn_start + self.churn_minutes

    def with_overrides(self, **changes) -> "ScaleProfile":
        """Return a copy of the profile with the given fields replaced."""
        return replace(self, **changes)


PROFILES: Dict[str, ScaleProfile] = {
    "paper": ScaleProfile(
        name="paper",
        small_network_size=250,
        large_network_size=2500,
        setup_minutes=30.0,
        stabilization_minutes=90.0,
        churn_minutes=1280.0,
        snapshot_interval_minutes=10.0,
        lookups_per_node_per_minute=10.0,
        disseminations_per_node_per_minute=1.0,
        refresh_interval_minutes=60.0,
        refresh_all_buckets=True,
        source_fraction=0.02,
        target_fraction=0.02,
        average_pairs=200,
        min_remaining_nodes=10,
    ),
    "bench": ScaleProfile(
        name="bench",
        small_network_size=36,
        large_network_size=96,
        setup_minutes=10.0,
        stabilization_minutes=20.0,
        churn_minutes=28.0,
        snapshot_interval_minutes=8.0,
        lookups_per_node_per_minute=3.0,
        disseminations_per_node_per_minute=0.3,
        refresh_interval_minutes=15.0,
        refresh_all_buckets=False,
        source_fraction=0.06,
        target_fraction=0.06,
        average_pairs=32,
        min_remaining_nodes=6,
    ),
    "smoke": ScaleProfile(
        name="smoke",
        small_network_size=24,
        large_network_size=64,
        setup_minutes=5.0,
        stabilization_minutes=10.0,
        churn_minutes=12.0,
        snapshot_interval_minutes=4.0,
        lookups_per_node_per_minute=2.0,
        disseminations_per_node_per_minute=0.3,
        refresh_interval_minutes=5.0,
        refresh_all_buckets=False,
        source_fraction=0.15,
        target_fraction=0.15,
        average_pairs=16,
        min_remaining_nodes=6,
    ),
    "tiny": ScaleProfile(
        name="tiny",
        small_network_size=16,
        large_network_size=30,
        setup_minutes=4.0,
        stabilization_minutes=8.0,
        churn_minutes=10.0,
        snapshot_interval_minutes=4.0,
        lookups_per_node_per_minute=3.0,
        disseminations_per_node_per_minute=0.5,
        refresh_interval_minutes=6.0,
        refresh_all_buckets=False,
        source_fraction=0.2,
        target_fraction=0.2,
        average_pairs=20,
        min_remaining_nodes=4,
    ),
}


def get_profile(name: str) -> ScaleProfile:
    """Return a named profile; raises ``KeyError`` with the available names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
