"""Multi-seed replication of scenarios.

A single simulation run is one draw from a stochastic process; the paper's
qualitative claims (ordering of curves, presence of collapses) should be
stable across seeds.  :func:`replicate_scenario` runs a scenario several
times with independent seeds and aggregates the per-run statistics into
means and standard deviations, which the benchmarks and examples can use to
distinguish a real effect from run-to-run noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.statistics import mean, population_variance
from repro.experiments.profiles import ScaleProfile
from repro.experiments.runner import ExperimentResult
from repro.experiments.scenarios import Scenario
from repro.runtime.cache import ResultCache
from repro.runtime.campaign import (
    SCHEDULE_FIFO,
    Campaign,
    ProgressCallback,
    replication_tasks,
)
from repro.runtime.executor import Executor, make_executor


@dataclass(frozen=True)
class ReplicatedStatistic:
    """Mean and spread of one scalar statistic across replications."""

    name: str
    values: List[float]

    @property
    def mean(self) -> float:
        """Mean over replications."""
        return mean(self.values)

    @property
    def std(self) -> float:
        """Population standard deviation over replications."""
        if len(self.values) < 2:
            return 0.0
        return math.sqrt(population_variance(self.values))

    @property
    def minimum(self) -> float:
        """Smallest observed value."""
        return min(self.values)

    @property
    def maximum(self) -> float:
        """Largest observed value."""
        return max(self.values)

    def as_dict(self) -> Dict[str, float]:
        """Flat representation for reports."""
        return {
            "statistic": self.name,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "replications": len(self.values),
        }


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregated statistics of one scenario across seeds."""

    scenario: Scenario
    results: List[ExperimentResult]
    statistics: Dict[str, ReplicatedStatistic]

    def statistic(self, name: str) -> ReplicatedStatistic:
        """Return the named statistic (KeyError if unknown)."""
        return self.statistics[name]

    def as_rows(self) -> List[Dict[str, float]]:
        """Rows for tabular rendering."""
        return [stat.as_dict() for stat in self.statistics.values()]


#: The scalar statistics aggregated per replication.
_STATISTIC_EXTRACTORS = {
    "stabilized_min": lambda result: float(result.stabilized_minimum()),
    "churn_mean_min": lambda result: result.churn_mean_minimum(),
    "churn_rv_min": lambda result: result.churn_relative_variance_minimum(),
    "churn_mean_avg": lambda result: result.churn_mean_average(),
    "final_network_size": lambda result: float(result.final_network_size()),
}


def replicate_scenario(
    scenario: Scenario,
    seeds: Sequence[int],
    profile: "ScaleProfile | str" = "tiny",
    algorithm: str = "dinic",
    jobs: int = 1,
    cache: "ResultCache | None" = None,
    executor: "Executor | None" = None,
    progress: "ProgressCallback | None" = None,
    schedule: str = SCHEDULE_FIFO,
    adaptive_shards: bool = False,
    batch: "str | int | None" = None,
) -> ReplicationSummary:
    """Run ``scenario`` once per seed and aggregate the summary statistics.

    Replications are independent tasks, so they dispatch through
    :mod:`repro.runtime`: ``jobs > 1`` runs them in parallel with identical
    output, and a :class:`~repro.runtime.cache.ResultCache` lets repeated
    invocations (or a grown seed list) reuse finished runs.  ``schedule``,
    ``adaptive_shards`` and ``batch`` are the cost-aware dispatch knobs of
    :class:`Campaign` / the pair-flow engine — ordering and grouping only,
    results are identical for every combination (``batch`` packs several
    replications per warm worker call, see :class:`Campaign`).
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    with Campaign(
        executor=executor if executor is not None else make_executor(jobs),
        cache=cache,
        progress=progress,
        schedule=schedule,
        batch=batch,
    ) as campaign:
        results = campaign.run(
            replication_tasks(
                scenario, seeds, profile=profile, algorithm=algorithm,
                adaptive_shards=adaptive_shards,
            )
        )
    statistics = {
        name: ReplicatedStatistic(
            name=name, values=[extract(result) for result in results]
        )
        for name, extract in _STATISTIC_EXTRACTORS.items()
    }
    return ReplicationSummary(scenario=scenario, results=results, statistics=statistics)
