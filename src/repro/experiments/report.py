"""Report generators — the rows and series of every table and figure.

Every public function returns plain data (lists of dictionaries) *and* has a
``format_*`` companion that renders the same content as an aligned text
table, which is what the benchmark harness prints so the reproduced numbers
sit next to the timing output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.analysis.figures import format_table, render_series_table
from repro.churn.loss import LOSS_SCENARIOS
from repro.experiments.runner import ExperimentResult


# ----------------------------------------------------------------------
# Table 1 — message loss scenarios
# ----------------------------------------------------------------------
def table1_rows() -> List[Dict[str, float]]:
    """Rows of Table 1: loss scenario, one-way and two-way probabilities."""
    rows = []
    for name in ("none", "low", "medium", "high"):
        model = LOSS_SCENARIOS[name]
        rows.append(
            {
                "loss": name,
                "p_loss_one_way": round(model.one_way_probability * 100.0, 1),
                "p_loss_two_way": round(model.two_way_probability * 100.0, 1),
            }
        )
    return rows


def format_table1() -> str:
    """Render Table 1 as text."""
    rows = table1_rows()
    return format_table(
        ["Loss l", "Ploss(1-way) %", "Ploss(2-way) %"],
        [[row["loss"], row["p_loss_one_way"], row["p_loss_two_way"]] for row in rows],
    )


# ----------------------------------------------------------------------
# Table 2 — mean and relative variance of the minimum connectivity
# ----------------------------------------------------------------------
def table2_rows(results: Iterable[ExperimentResult]) -> List[Dict[str, object]]:
    """Rows of Table 2 from Simulations E–H results.

    One row per (size class, k, churn): the mean and relative variance of
    the minimum connectivity during the churn phase.
    """
    rows = []
    for result in results:
        scenario = result.scenario
        rows.append(
            {
                "size_class": scenario.size_class,
                "k": scenario.bucket_size,
                "churn": scenario.churn,
                "mean": round(result.churn_mean_minimum(), 2),
                "rv": round(result.churn_relative_variance_minimum(), 2),
            }
        )
    rows.sort(key=lambda row: (row["size_class"] == "large", row["k"], row["churn"]))
    return rows


def format_table2(results: Iterable[ExperimentResult]) -> str:
    """Render Table 2 as text."""
    rows = table2_rows(results)
    return format_table(
        ["Size", "k", "Churn", "Mean", "RV"],
        [
            [row["size_class"], row["k"], row["churn"], row["mean"], row["rv"]]
            for row in rows
        ],
    )


# ----------------------------------------------------------------------
# Figures 2–9 and 11–14 — connectivity over time
# ----------------------------------------------------------------------
def figure_series(results: Mapping[object, ExperimentResult]) -> Dict[str, List[float]]:
    """Merge several runs into the multi-curve series of one figure.

    ``results`` maps a curve key (e.g. the bucket size, or ``(loss, s)``) to
    its run.  The returned mapping contains ``"Avg (<key>)"`` and
    ``"Min (<key>)"`` series per curve plus ``"Network size"`` taken from
    the first run.  All runs of one figure share snapshot times.
    """
    series: Dict[str, List[float]] = {}
    network_size: List[float] = []
    for key, result in results.items():
        label = _curve_label(key)
        series[f"Avg ({label})"] = [float(v) for v in result.series.average_series()]
        series[f"Min ({label})"] = [float(v) for v in result.series.minimum_series()]
        if not network_size:
            network_size = [float(v) for v in result.series.network_size_series()]
    series["Network size"] = network_size
    return series


def figure_times(results: Mapping[object, ExperimentResult]) -> List[float]:
    """Return the common snapshot times of a figure's runs."""
    first = next(iter(results.values()))
    return first.series.times()


def format_figure(results: Mapping[object, ExperimentResult], title: str) -> str:
    """Render a figure's series as an aligned text table."""
    times = figure_times(results)
    series = figure_series(results)
    return f"{title}\n" + render_series_table(times, series)


def _curve_label(key: object) -> str:
    if isinstance(key, tuple):
        return ", ".join(str(part) for part in key)
    return str(key)


# ----------------------------------------------------------------------
# Figure 10 — mean minimum connectivity during churn vs bucket size
# ----------------------------------------------------------------------
def figure10_rows(
    results: Mapping[Tuple[str, int, int], ExperimentResult],
) -> List[Dict[str, object]]:
    """Rows behind Figure 10.

    ``results`` maps ``(churn, alpha, k)`` to a run of the corresponding
    scenario; each row reports the mean minimum connectivity during churn.
    """
    rows = []
    for (churn, alpha, k), result in sorted(results.items()):
        rows.append(
            {
                "churn": churn,
                "alpha": alpha,
                "k": k,
                "mean_min_connectivity": round(result.churn_mean_minimum(), 2),
            }
        )
    return rows


def format_figure10(
    results: Mapping[Tuple[str, int, int], ExperimentResult], title: str
) -> str:
    """Render Figure 10's data as text."""
    rows = figure10_rows(results)
    return f"{title}\n" + format_table(
        ["Churn", "alpha", "k", "Mean min connectivity"],
        [
            [row["churn"], row["alpha"], row["k"], row["mean_min_connectivity"]]
            for row in rows
        ],
    )


# ----------------------------------------------------------------------
# Generic scenario summaries
# ----------------------------------------------------------------------
def summary_rows(results: Iterable[ExperimentResult]) -> List[Dict[str, object]]:
    """One-line summary per run (used by the CLI)."""
    return [result.summary() for result in results]


def format_summaries(results: Iterable[ExperimentResult]) -> str:
    """Render run summaries as text."""
    rows = summary_rows(results)
    headers = [
        "scenario", "size_class", "k", "alpha", "churn", "loss", "staleness",
        "stabilized_min", "churn_mean_min", "churn_rv_min", "final_network_size",
    ]
    return format_table(
        headers,
        [[row[h] for h in headers] for row in rows],
    )
