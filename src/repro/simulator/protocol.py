"""Protocol interface — the PeerSim "EDProtocol" equivalent.

A protocol instance is attached to exactly one :class:`SimNode` and handles
the request messages delivered to that node by the transport.  The Kademlia
implementation in :mod:`repro.kademlia.protocol` is the only production
protocol, but tests register lightweight fake protocols to exercise the
transport in isolation.
"""

from __future__ import annotations

import abc
from typing import Any, Optional


class Protocol(abc.ABC):
    """Base class for node protocols."""

    #: Name under which the protocol registers itself on its node.
    protocol_name: str = "protocol"

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    @abc.abstractmethod
    def handle_request(self, sender_id: int, request: Any) -> Optional[Any]:
        """Handle a request from ``sender_id`` and return the response payload.

        Returning ``None`` models a node that received the request but sends
        no answer (the requester will treat it as a failed round-trip).
        """

    def on_join(self, time: float) -> None:
        """Hook invoked when the owning node joins the network."""

    def on_leave(self, time: float) -> None:
        """Hook invoked when the owning node leaves the network."""
