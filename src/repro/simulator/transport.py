"""Message transport with per-message loss.

The paper's message-loss model (Table 1) specifies the probability that a
*one-way* message is lost; a request/response round-trip fails when either
direction is lost.  The transport applies exactly that model:

* the request leg is drawn first — if it is lost the target never sees the
  request and the requester observes a failed round-trip;
* otherwise the target's protocol handles the request (all of its side
  effects happen, e.g. it learns about the requester), and the response leg
  is drawn — if the response is lost the requester still observes a failure
  even though the target processed the request.

Requests to dead or unknown nodes always fail, which is how churn manifests
to the protocol layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.obs import active as obs_active
from repro.simulator.network import Network


@dataclass(slots=True)
class TransportStats:
    """Counters describing the traffic a simulation produced."""

    requests_sent: int = 0
    requests_lost: int = 0
    responses_lost: int = 0
    requests_to_dead_nodes: int = 0
    round_trips_ok: int = 0

    @property
    def round_trips_failed(self) -> int:
        """Total failed round-trips, from any cause."""
        return self.requests_lost + self.responses_lost + self.requests_to_dead_nodes

    def reset(self) -> None:
        """Zero all counters."""
        self.requests_sent = 0
        self.requests_lost = 0
        self.responses_lost = 0
        self.requests_to_dead_nodes = 0
        self.round_trips_ok = 0


class Transport:
    """Synchronous request/response transport with Bernoulli message loss.

    Parameters
    ----------
    network:
        The node registry used to resolve target ids.
    loss_probability:
        Probability that a single one-way message is lost (paper Table 1,
        column ``Ploss(1-way)``).
    rng:
        Random stream used for the loss draws.
    protocol_name:
        Name of the protocol each request is dispatched to.
    """

    def __init__(
        self,
        network: Network,
        loss_probability: float = 0.0,
        rng: Optional[random.Random] = None,
        protocol_name: str = "kademlia",
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(
                f"loss_probability must be in [0, 1), got {loss_probability}"
            )
        self.network = network
        self.loss_probability = loss_probability
        self.rng = rng or random.Random()
        self.protocol_name = protocol_name
        self.stats = TransportStats()
        #: Per-request-type counts, recorded only under observability
        #: (``None`` when off, so the hot path below pays one ``is not
        #: None`` check).  Kept as a plain dict, not registry counters:
        #: ``rpc`` runs once per simulated round-trip and the experiment
        #: runner folds the totals into the run's registry at the end.
        #: Deliberately NOT part of :class:`TransportStats`, which is
        #: persisted into result documents and therefore frozen by the
        #: determinism digests.
        self.obs_request_counts: Optional[dict] = (
            {} if obs_active() is not None else None
        )

    # ------------------------------------------------------------------
    def one_way_lost(self) -> bool:
        """Draw whether a single one-way message is lost."""
        if self.loss_probability <= 0.0:
            return False
        return self.rng.random() < self.loss_probability

    def rpc(
        self, sender_id: int, target_id: int, request: Any
    ) -> Tuple[bool, Optional[Any]]:
        """Perform a request/response round-trip.

        Returns ``(success, response)``.  ``success`` is False when the
        target is dead/unknown, the request leg was lost, the target chose
        not to answer, or the response leg was lost.

        The loss draws replicate :meth:`one_way_lost` inline (drawing from
        the same stream in the same order), and target resolution is a
        single dict probe — this method runs once per simulated round-trip.
        """
        stats = self.stats
        stats.requests_sent += 1
        counts = self.obs_request_counts
        if counts is not None:
            name = type(request).__name__
            counts[name] = counts.get(name, 0) + 1

        target = self.network.get_alive(target_id)
        if target is None:
            stats.requests_to_dead_nodes += 1
            return False, None

        loss = self.loss_probability
        if loss > 0.0 and self.rng.random() < loss:
            stats.requests_lost += 1
            return False, None

        protocol = target.protocols.get(self.protocol_name)
        if protocol is None:
            stats.requests_to_dead_nodes += 1
            return False, None
        response = protocol.handle_request(sender_id, request)
        if response is None:
            stats.responses_lost += 1
            return False, None

        if loss > 0.0 and self.rng.random() < loss:
            stats.responses_lost += 1
            return False, None

        stats.round_trips_ok += 1
        return True, response

    # ------------------------------------------------------------------
    def two_way_loss_probability(self) -> float:
        """Probability that a request/response round-trip fails due to loss.

        Matches the paper's ``Ploss(2-way)`` column:
        ``1 - (1 - p)**2`` for one-way probability ``p``.
        """
        p = self.loss_probability
        return 1.0 - (1.0 - p) ** 2
