"""Simulation node container.

A :class:`SimNode` is the simulator-level wrapper around a network
participant: it owns the node's protocol instances (in this project, one
Kademlia protocol) and its liveness state.  The Kademlia logic itself lives
in :mod:`repro.kademlia.protocol`.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class SimNode:
    """One network participant in the simulation.

    Attributes
    ----------
    node_id:
        The Kademlia identifier (an integer in ``[0, 2**b)``).
    joined_at:
        Simulated time at which the node joined the network.
    alive:
        False once the node has left (or been removed by churn); dead nodes
        remain addressable so in-flight references to them fail the way a
        crashed host would.
    """

    __slots__ = ("node_id", "joined_at", "alive", "left_at", "protocols")

    def __init__(self, node_id: int, joined_at: float = 0.0) -> None:
        self.node_id = node_id
        self.joined_at = joined_at
        self.alive = True
        self.left_at: Optional[float] = None
        self.protocols: Dict[str, Any] = {}

    def register_protocol(self, name: str, protocol: Any) -> None:
        """Attach a protocol instance under ``name`` (e.g. ``"kademlia"``)."""
        self.protocols[name] = protocol

    def protocol(self, name: str) -> Any:
        """Return the protocol registered under ``name``."""
        return self.protocols[name]

    def kill(self, time: float) -> None:
        """Mark the node as having left the network at ``time``."""
        self.alive = False
        self.left_at = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"SimNode(id={self.node_id:#x}, {state})"
