"""Deterministic discrete-event simulation engine.

This package is the stand-in for PeerSim's event-driven simulator
("EDSimulator"/"EDProtocol") used by the paper.  It provides:

* :class:`~repro.simulator.engine.Simulator` — the event loop with a
  simulated clock measured in **minutes** (matching the paper's time axis);
* :class:`~repro.simulator.events.Event` — scheduled callbacks with stable
  tie-breaking so runs are reproducible;
* :class:`~repro.simulator.random_source.RandomSource` — a root seed fanned
  out into named, independent random streams (churn, traffic, loss, ...);
* :class:`~repro.simulator.transport.Transport` — message delivery with
  per-one-way-message loss and delivery statistics;
* :class:`~repro.simulator.control.PeriodicControl` — PeerSim-style controls
  executed at fixed intervals (used for snapshots and churn);
* :class:`~repro.simulator.network.Network` — the registry of live nodes.

Design note: Kademlia RPCs are executed as *synchronous round-trips*
(`Transport.rpc`) at the simulated instant of the initiating action, rather
than as separately scheduled message events.  The paper studies dynamics on
a minute time-scale, where RPC latencies (milliseconds) are negligible; the
synchronous abstraction preserves exactly the state the analysis depends on
(routing-table contents, staleness counters, loss effects) while keeping
pure-Python simulations tractable.  This substitution is recorded in
DESIGN.md.
"""

from repro.simulator.engine import Simulator
from repro.simulator.events import Event
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.protocol import Protocol
from repro.simulator.random_source import RandomSource
from repro.simulator.transport import Transport, TransportStats
from repro.simulator.control import PeriodicControl

__all__ = [
    "Event",
    "Network",
    "PeriodicControl",
    "Protocol",
    "RandomSource",
    "SimNode",
    "Simulator",
    "Transport",
    "TransportStats",
]
