"""Seeded random streams.

Every stochastic component of a simulation (bootstrap times, churn, traffic,
message loss, node identifiers, ...) draws from its own named child stream
derived from one root seed.  Streams are independent, so e.g. changing the
traffic model does not perturb the churn sequence — a property the
experiment framework relies on when comparing scenarios that differ in a
single dimension, exactly like the paper's one-dimension-at-a-time sweeps.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomSource:
    """A root seed fanned out into named, reproducible child streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this source was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the named child stream (created on first use).

        The child seed is derived by hashing ``(root seed, name)`` so that
        streams are stable across runs and independent of the order in which
        they are first requested.
        """
        if name not in self._streams:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomSource":
        """Return a new RandomSource whose root seed derives from ``name``.

        Used by parameter sweeps to give every scenario replication its own
        independent but reproducible universe of streams.
        """
        digest = hashlib.sha256(f"{self._seed}/{name}".encode("utf-8")).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))
