"""Registry of simulation nodes."""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional

from repro.simulator.errors import NodeNotFoundError
from repro.simulator.node import SimNode


class Network:
    """The set of nodes known to the simulation.

    Nodes are kept after they die (``alive=False``) so that routing-table
    entries pointing at them can be resolved — and fail — the same way a
    request to a crashed host would fail in a real deployment.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, SimNode] = {}

    # ------------------------------------------------------------------
    def add_node(self, node: SimNode) -> None:
        """Register ``node``; its id must be unique."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id:#x}")
        self._nodes[node.node_id] = node

    def remove_node(self, node_id: int, time: float) -> SimNode:
        """Mark the node as dead (it stays addressable)."""
        node = self.get(node_id)
        node.kill(time)
        return node

    def forget_node(self, node_id: int) -> None:
        """Completely remove a node from the registry (tests only)."""
        if node_id not in self._nodes:
            raise NodeNotFoundError(node_id)
        del self._nodes[node_id]

    # ------------------------------------------------------------------
    def get(self, node_id: int) -> SimNode:
        """Return the node with ``node_id`` (dead or alive)."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def contains(self, node_id: int) -> bool:
        """Return True if ``node_id`` is registered (dead or alive)."""
        return node_id in self._nodes

    def is_alive(self, node_id: int) -> bool:
        """Return True if the node exists and has not left the network."""
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    def get_alive(self, node_id: int) -> Optional[SimNode]:
        """Return the node if it exists and is alive, else None.

        One dict probe instead of the ``contains`` + ``is_alive`` + ``get``
        triple — this sits on the transport's per-RPC fast path.
        """
        node = self._nodes.get(node_id)
        if node is not None and node.alive:
            return node
        return None

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[SimNode]:
        return iter(self._nodes.values())

    # ------------------------------------------------------------------
    def alive_nodes(self) -> List[SimNode]:
        """Return all currently alive nodes (insertion order)."""
        return [node for node in self._nodes.values() if node.alive]

    def alive_ids(self) -> List[int]:
        """Return the ids of all alive nodes."""
        return [node.node_id for node in self._nodes.values() if node.alive]

    def alive_count(self) -> int:
        """Return the number of alive nodes."""
        return sum(1 for node in self._nodes.values() if node.alive)

    def random_alive_node(
        self, rng: random.Random, exclude: Optional[int] = None
    ) -> Optional[SimNode]:
        """Return a uniformly random alive node, optionally excluding one id.

        Returns ``None`` if no eligible node exists.  Used for bootstrap-node
        selection ("the bootstrap node is randomly chosen from the already
        joined nodes", paper Section 5.3) and for churn target selection.
        """
        candidates = [
            node
            for node in self._nodes.values()
            if node.alive and node.node_id != exclude
        ]
        if not candidates:
            return None
        return candidates[rng.randrange(len(candidates))]
