"""The discrete-event simulation loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simulator.errors import SchedulingError
from repro.simulator.events import Event, EventQueue


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Time is a float measured in **simulated minutes** to match the paper's
    figures.  Events fire in ``(time, scheduling order)`` order.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, lambda: fired.append(sim.now))
    >>> sim.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in minutes."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    # ------------------------------------------------------------------
    def schedule_at(
        self, time: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, callback, label=label)

    def schedule_in(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` simulated minutes."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, label=label)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        end: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Schedule ``callback`` every ``interval`` minutes.

        The first invocation happens at ``start`` (default: now + interval);
        rescheduling stops once the next invocation would be after ``end``.
        """
        if interval <= 0:
            raise SchedulingError(f"non-positive interval {interval}")
        first = self._now + interval if start is None else start

        def _tick() -> None:
            callback()
            next_time = self._now + interval
            if end is None or next_time <= end:
                self._queue.push(next_time, _tick, label=label)

        if end is None or first <= end:
            self.schedule_at(first, _tick, label=label)

    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``; advance the clock."""
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = event.time
            event.callback()
            self._events_processed += 1
        self._now = max(self._now, end_time)

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` is reached)."""
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = event.time
            event.callback()
            self._events_processed += 1
            executed += 1

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
