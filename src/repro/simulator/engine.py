"""The discrete-event simulation loop."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

from repro.simulator.errors import SchedulingError
from repro.simulator.events import Event, EventQueue


class _PeriodicTask:
    """Self-rescheduling callback used by :meth:`Simulator.schedule_periodic`.

    A slotted instance instead of a per-schedule closure: the recurring
    reschedule pushes the same callable object back onto the queue, so a
    long-running periodic series allocates one object total (plus the heap
    entries), not one cell-capturing closure per series.
    """

    __slots__ = ("simulator", "interval", "callback", "end", "label")

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[[], Any],
        end: Optional[float],
        label: str,
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.end = end
        self.label = label

    def __call__(self) -> None:
        self.callback()
        simulator = self.simulator
        next_time = simulator._now + self.interval
        if self.end is None or next_time <= self.end:
            simulator._queue.push(next_time, self, label=self.label)


class Simulator:
    """A minimal deterministic discrete-event simulator.

    Time is a float measured in **simulated minutes** to match the paper's
    figures.  Events fire in ``(time, scheduling order)`` order.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(5.0, lambda: fired.append(sim.now))
    >>> sim.run_until(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in minutes."""
        return self._now

    def clock(self) -> float:
        """Return the current simulated time (bound-method form of ``now``).

        Protocols hold this method as their clock callable; calling a bound
        method is cheaper than the lambda-over-property chain it replaces.
        """
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled — O(1).

        Cancelled-but-unpopped events are excluded: the queue counts them
        exactly, so this figure does not drift when the heap compacts.
        """
        return len(self._queue)

    @property
    def cancelled_pending_events(self) -> int:
        """Cancelled events still occupying heap slots (diagnostics)."""
        return self._queue.cancelled_pending

    @property
    def compactions(self) -> int:
        """Number of in-place heap compactions performed (diagnostics)."""
        return self._queue.compactions

    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        return self._queue.push(time, callback, label=label, args=args)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[..., Any],
        label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` simulated minutes."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        return self._queue.push(self._now + delay, callback, label=label, args=args)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], Any],
        start: Optional[float] = None,
        end: Optional[float] = None,
        label: str = "",
    ) -> None:
        """Schedule ``callback`` every ``interval`` minutes.

        The first invocation happens at ``start`` (default: now + interval);
        rescheduling stops once the next invocation would be after ``end``.
        """
        if interval <= 0:
            raise SchedulingError(f"non-positive interval {interval}")
        first = self._now + interval if start is None else start
        if end is None or first <= end:
            task = _PeriodicTask(self, interval, callback, end, label)
            self.schedule_at(first, task, label=label)

    # ------------------------------------------------------------------
    def run_until(self, end_time: float) -> None:
        """Execute events up to and including ``end_time``; advance the clock.

        The loop reads the heap directly instead of going through
        ``peek_time()`` + ``pop()``, which would pay two heap traversals
        per event; compaction mutates the heap list in place, so the local
        reference stays valid across callbacks.
        """
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        processed = 0
        while heap:
            time = heap[0][0]
            if time > end_time:
                break
            event = heappop(heap)[2]
            if event.cancelled:
                queue._cancelled -= 1
                continue
            # Detach before firing: a late cancel() on an already-fired
            # event must not touch the queue's cancellation counter.
            event._queue = None
            self._now = time
            event.callback(*event.args)
            processed += 1
        self._events_processed += processed
        if end_time > self._now:
            self._now = end_time

    def run_all(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` is reached).

        ``max_events`` counts **executed** events only: cancelled entries
        popped off the heap are accounted to the queue's cancellation
        counter, never against the caller's budget.
        """
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        executed = 0
        while heap:
            if max_events is not None and executed >= max_events:
                break
            event = heappop(heap)[2]
            if event.cancelled:
                queue._cancelled -= 1
                continue
            event._queue = None
            self._now = event.time
            event.callback(*event.args)
            executed += 1
        self._events_processed += executed

    def reset(self, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock."""
        self._queue.clear()
        self._now = float(start_time)
        self._events_processed = 0
