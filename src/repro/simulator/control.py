"""PeerSim-style periodic controls and observers.

A *control* is a piece of code executed at fixed simulated-time intervals,
outside of any protocol: churn generation, traffic generation and snapshot
observation are all controls.  This mirrors PeerSim's ``Control`` interface,
which the paper's simulation setup uses for the same purposes.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.simulator.engine import Simulator


class PeriodicControl:
    """Executes a callback every ``interval`` simulated minutes.

    Parameters
    ----------
    simulator:
        The event engine to schedule on.
    interval:
        Minutes between invocations.
    callback:
        Zero-argument callable to run.
    start:
        Absolute time of the first invocation (default: one interval from
        the current time).
    end:
        No invocations are scheduled after this time (default: run forever,
        bounded by the experiment's ``run_until``).
    name:
        Label used in diagnostics.
    """

    def __init__(
        self,
        simulator: Simulator,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        end: Optional[float] = None,
        name: str = "control",
    ) -> None:
        self.simulator = simulator
        self.interval = interval
        self.callback = callback
        self.name = name
        self.invocations = 0
        self._active = True

        def _wrapped() -> None:
            if self._active:
                self.callback()
                self.invocations += 1

        simulator.schedule_periodic(
            interval, _wrapped, start=start, end=end, label=name
        )

    def stop(self) -> None:
        """Disable the control; already-scheduled ticks become no-ops."""
        self._active = False


class ObserverRegistry:
    """A list of observation callbacks invoked with the current time.

    The experiment runner registers one observer per measurement (network
    size, routing-table snapshot) and triggers them at snapshot times.
    """

    def __init__(self) -> None:
        self._observers: List[Callable[[float], None]] = []

    def register(self, observer: Callable[[float], None]) -> None:
        """Add ``observer``; it will be called with the simulated time."""
        self._observers.append(observer)

    def notify(self, time: float) -> None:
        """Invoke every registered observer."""
        for observer in self._observers:
            observer(time)

    def __len__(self) -> int:
        return len(self._observers)
