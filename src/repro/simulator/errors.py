"""Exceptions raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for simulation errors."""


class SchedulingError(SimulationError, ValueError):
    """Raised when an event is scheduled in the past or with a bad interval."""


class NodeNotFoundError(SimulationError, KeyError):
    """Raised when a node id is not registered in the network."""

    def __init__(self, node_id):
        super().__init__(f"node {node_id!r} is not in the network")
        self.node_id = node_id
