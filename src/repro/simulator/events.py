"""Event objects and the event queue used by the simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``: the sequence number is a
    monotonically increasing counter, so two events scheduled for the same
    simulated time fire in scheduling order.  That tie-break is what makes
    simulation runs deterministic for a fixed seed.
    """

    time: float
    sequence: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap event queue with stable ordering and lazy cancellation."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at simulated ``time`` and return the Event."""
        event = Event(
            time=time, sequence=next(self._counter), callback=callback, label=label
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event (None if empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next non-cancelled event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
