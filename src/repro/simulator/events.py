"""Event objects and the event queue used by the simulator.

The queue is the innermost loop of every simulation, so it is built around
a plain binary heap of ``(time, sequence, event)`` tuples: heap sift
comparisons stay entirely inside CPython's C tuple comparison (the
``sequence`` tie-break is always decisive, so the :class:`Event` payload is
never compared).  The previous implementation heapified ``dataclass
(order=True)`` instances, which routed every comparison through a generated
Python ``__lt__``.

Cancellation is lazy: a cancelled event stays in the heap (marked dead) and
is dropped when it surfaces.  The queue keeps an exact count of dead
entries, which makes ``len()`` O(1) instead of an O(n) scan, and compacts
the heap in place once more than half of it is dead, so a workload that
cancels aggressively cannot grow the heap without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback (the handle returned by :meth:`EventQueue.push`).

    Events order by ``(time, sequence)``: the sequence number is a
    monotonically increasing counter, so two events scheduled for the same
    simulated time fire in scheduling order.  That tie-break is what makes
    simulation runs deterministic for a fixed seed.

    ``args`` (stored once at scheduling time) are passed to ``callback``
    when the event fires; scheduling a bound method plus its arguments this
    way avoids allocating a dedicated closure per event on hot paths such
    as traffic-action delivery.
    """

    __slots__ = ("time", "sequence", "callback", "args", "label", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        label: str = "",
        queue: "Optional[EventQueue]" = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()

    def fire(self) -> Any:
        """Invoke the callback with the stored arguments."""
        return self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.sequence}, label={self.label!r}{state})"


class EventQueue:
    """A binary-heap event queue with stable ordering and lazy cancellation."""

    __slots__ = ("_heap", "_next_sequence", "_cancelled", "compactions")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._next_sequence = 0
        self._cancelled = 0
        #: Cumulative number of in-place heap compactions (diagnostics;
        #: surfaced by the observability layer).  A plain always-on int —
        #: compaction fires at most once per half-heap of cancellations,
        #: so the increment is nowhere near a hot path.
        self.compactions = 0

    def __len__(self) -> int:
        """Number of live (non-cancelled) events — O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Number of cancelled events still occupying heap slots."""
        return self._cancelled

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        label: str = "",
        args: Tuple[Any, ...] = (),
    ) -> Event:
        """Schedule ``callback(*args)`` at simulated ``time``; return the Event."""
        sequence = self._next_sequence
        self._next_sequence = sequence + 1
        event = Event(time, sequence, callback, args, label, self)
        heapq.heappush(self._heap, (time, sequence, event))
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event (None if empty).

        The returned event is detached from the queue, so a later
        ``cancel()`` on it (the common cancel-if-not-yet-fired timeout
        idiom) cannot corrupt the live-event count.
        """
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if event.cancelled:
                self._cancelled -= 1
            else:
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the time of the next non-cancelled event without popping it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def clear(self) -> None:
        """Drop all pending events."""
        # Detach outstanding handles so a later cancel() on one of them
        # cannot corrupt the dead-entry count of the emptied queue.
        for entry in self._heap:
            entry[2]._queue = None
        del self._heap[:]
        self._cancelled = 0

    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Account for one cancellation; compact once half the heap is dead."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries and re-heapify, preserving list identity.

        In-place (slice assignment) so that any caller holding a reference
        to the heap list — the simulator's run loop does, for speed — keeps
        seeing the live heap.
        """
        self._heap[:] = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1
