"""Extension — lookup resilience over node-disjoint paths (S/Kademlia [1]).

The paper motivates measuring vertex connectivity with Menger's theorem:
``kappa`` node-disjoint paths exist between any node pair, so up to
``kappa - 1`` compromised nodes can be tolerated.  S/Kademlia (the paper's
reference [1]) turns that into a lookup procedure.  This benchmark closes
the loop: in a network where a quarter of the nodes run the eclipse
adversary, lookup success must not decrease as the number of disjoint
lookup paths grows.
"""

from benchmarks.conftest import write_artefact
from repro.extensions.evaluation import disjoint_path_study

PATH_COUNTS = (1, 2, 3, 4)


def test_extension_disjoint_path_lookups(benchmark, output_dir):
    rows = disjoint_path_study(
        node_count=300,
        compromised_fraction=0.25,
        path_counts=PATH_COUNTS,
        lookups=40,
        seed=17,
    )

    header = (
        f"{'paths d':>7} {'owner hit rate':>15} {'replica hit rate':>17} "
        f"{'mean round-trips':>17}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.path_count:>7} {row.owner_hit_rate:>15.2f} "
            f"{row.replica_hit_rate:>17.2f} {row.mean_queried:>17.1f}"
        )
    write_artefact(output_dir, "extension_disjoint_paths.txt", "\n".join(lines))

    by_d = {row.path_count: row for row in rows}
    # More disjoint paths never hurt, and the multi-path lookups beat the
    # single-path baseline against the eclipse adversary.
    assert by_d[4].replica_hit_rate >= by_d[1].replica_hit_rate
    assert by_d[4].owner_hit_rate >= by_d[1].owner_hit_rate
    # More paths cost more round-trips (the price of the resilience).
    assert by_d[4].mean_queried >= by_d[1].mean_queried

    benchmark.pedantic(
        lambda: disjoint_path_study(
            node_count=150,
            compromised_fraction=0.25,
            path_counts=(1, 2),
            lookups=10,
            seed=17,
        ),
        rounds=1,
        iterations=1,
    )
