"""Ablation — bootstrap fallback under message loss (modeling decision).

Deployed Kademlia nodes keep their configured bootstrap address outside the
routing table and keep retrying it until they have reached the network
once.  Without that fallback, a join whose very first round-trip is lost
(probability 5–50 % in the paper's loss scenarios, Table 1) leaves an
orphan; newcomers that bootstrap *from* the orphan form an island, and the
simulated network permanently partitions — the paper's Simulation J would
then report zero minimum connectivity forever instead of the strong
increase shown in Figure 12a.

This ablation documents that modeling decision by running the same
Simulation J configuration with the fallback disabled and enabled.
"""

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.scenarios import get_scenario


def test_ablation_bootstrap_recovery(benchmark, scenario_cache, output_dir):
    base = get_scenario("J").with_overrides(loss="medium", staleness_limit=1)
    with_fallback = scenario_cache.run(base)
    without_fallback = scenario_cache.run(base.with_overrides(bootstrap_reseed=False))

    lines = [
        f"{'configuration':<22} {'churn mean min':>15} {'churn mean avg':>15} "
        f"{'final min':>10}",
    ]
    lines.append("-" * len(lines[0]))
    for name, result in (
        ("bootstrap fallback on", with_fallback),
        ("bootstrap fallback off", without_fallback),
    ):
        final = result.series.final_sample()
        lines.append(
            f"{name:<22} {result.churn_mean_minimum():>15.2f} "
            f"{result.churn_mean_average():>15.2f} {final.minimum:>10}"
        )
    write_artefact(output_dir, "ablation_bootstrap_recovery.txt", "\n".join(lines))

    # With the fallback the loss scenario reaches a minimum connectivity
    # above the bucket size (Figure 12a's shape); without it the network
    # stays partitioned and the minimum never recovers.
    assert with_fallback.churn_mean_minimum() > without_fallback.churn_mean_minimum()
    assert without_fallback.churn_mean_minimum() <= base.bucket_size

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, with_fallback)
