"""Perf trajectory benchmark for million-node-scale connectivity estimation.

Exercises the sampling estimator on a 10,000-node synthetic snapshot —
two orders of magnitude past what the exhaustive pipeline can touch
(O(n^2) would be ~10^8 max-flows) — and writes
``benchmarks/output/BENCH_estimation.json``: the trend line for the
estimate-mode hot path (stratified pair draw + one batched cutoff-free
evaluation + branch-and-bound minimum pass).

The sweep runs the estimator at increasing pair budgets on the same
snapshot; the headline is flows/sec at the largest budget, which is the
number a capacity plan scales by (a million-node estimate costs
``budget / flows_per_sec`` seconds, independent of n^2).  Estimator
determinism is asserted before anything is timed: two runs with the same
seed must agree bit for bit, otherwise the measured workload would not
be the shipped workload.

The committed JSON was measured on the maintainer container; CI gates
flows/sec against it via ``check_regression.py estimation``.
"""

from __future__ import annotations

import json
import time

from benchmarks.conftest import BENCH_SEED, attach_obs_metrics, write_artefact
from repro.core.estimation import ConnectivityEstimator
from repro.experiments.snapshot import synthetic_snapshot

#: Snapshot shape (fixed so the JSON is comparable across PRs).  The
#: XOR-octave contact structure mirrors Kademlia's bucket geometry, so
#: per-flow cost is representative of real routing-table graphs.
SNAPSHOT_NODES = 10_000
CONTACTS_PER_NODE = 16
#: Ordered-pair budgets of the sweep (headline = largest).
BUDGETS = (16, 64)
CI_LEVEL = 0.95


def test_perf_estimation_trajectory(output_dir):
    build_started = time.perf_counter()
    snapshot = synthetic_snapshot(
        SNAPSHOT_NODES, contacts_per_node=CONTACTS_PER_NODE, seed=BENCH_SEED
    )
    build_seconds = time.perf_counter() - build_started
    edge_count = sum(len(row) for row in snapshot.routing_tables.values())

    def run(budget: int):
        estimator = ConnectivityEstimator(
            sample_pairs=budget, ci_level=CI_LEVEL, seed=BENCH_SEED
        )
        with estimator:
            return estimator.analyze_snapshot(snapshot.routing_tables)

    # Determinism gate: the timed workload must be the shipped workload.
    probe_budget = BUDGETS[0]
    first, second = run(probe_budget).as_dict(), run(probe_budget).as_dict()
    first.pop("elapsed_seconds"), second.pop("elapsed_seconds")
    assert first == second, "estimator must be bit-deterministic for a fixed seed"

    sweep = {}
    for budget in BUDGETS:
        report = run(budget)
        assert report.vertex_count == SNAPSHOT_NODES
        assert report.ci_low <= report.average_estimate <= report.ci_high
        flows = report.avg_pairs_evaluated + report.min_pairs_evaluated
        sweep[str(budget)] = {
            "pairs_sampled": report.pairs_sampled,
            "flows_evaluated": flows,
            "pairs_pruned": report.pairs_pruned,
            "seconds": round(report.elapsed_seconds, 6),
            "flows_per_sec": (
                round(flows / report.elapsed_seconds, 2)
                if report.elapsed_seconds > 0 else 0.0
            ),
            "average_estimate": round(report.average_estimate, 4),
            "ci": [round(report.ci_low, 4), round(report.ci_high, 4)],
            "ci_width": round(report.ci_width, 4),
            "minimum_bound": report.minimum_bound,
        }

    headline_budget = str(BUDGETS[-1])
    # The budget sweep must show the estimator's defining property: more
    # pairs -> tighter interval, same snapshot.
    widths = [sweep[str(budget)]["ci_width"] for budget in BUDGETS]
    assert all(earlier > later for earlier, later in zip(widths, widths[1:]))

    document = {
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "snapshot": {
            "nodes": SNAPSHOT_NODES,
            "contacts_per_node": CONTACTS_PER_NODE,
            "edges": edge_count,
            "generator": "synthetic_snapshot (ring + XOR-octave contacts)",
            "seed": BENCH_SEED,
            "build_seconds": round(build_seconds, 6),
        },
        "ci_level": CI_LEVEL,
        "sweep": sweep,
        "headline": {
            "description": (
                "estimation flows/sec on a 10k-node snapshot at the "
                f"{headline_budget}-pair budget (average pass + minimum pass)"
            ),
            "flows_per_sec": sweep[headline_budget]["flows_per_sec"],
            "seconds": sweep[headline_budget]["seconds"],
        },
    }
    attach_obs_metrics(document)

    json_path = output_dir / "BENCH_estimation.json"
    json_path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"{'budget':>7} {'flows':>6} {'pruned':>7} {'seconds':>8} "
        f"{'flows/s':>8} {'avg est':>8} {'ci width':>9} {'min bound':>9}"
    ]
    for budget in BUDGETS:
        row = sweep[str(budget)]
        lines.append(
            f"{budget:>7} {row['flows_evaluated']:>6} {row['pairs_pruned']:>7} "
            f"{row['seconds']:>8.2f} {row['flows_per_sec']:>8.2f} "
            f"{row['average_estimate']:>8.2f} {row['ci_width']:>9.3f} "
            f"{row['minimum_bound']:>9}"
        )
    write_artefact(output_dir, "BENCH_estimation.txt", "\n".join(lines))
