"""Perf trajectory benchmark for the simulation hot path.

Measures the discrete-event simulator's throughput on the smoke profile
and writes ``benchmarks/output/BENCH_simulator.json`` — the trend line
for the event loop + Kademlia messaging fast path, companion to
``BENCH_connectivity.json`` (the pair-flow hot path).

Three workloads, each best-of-N:

``events_per_sec``
    Scenario E (small network, churn 1/1, with data traffic) run
    end-to-end on the smoke profile **without** connectivity analysis:
    pure event loop + protocol work.  This is the headline number; the
    committed JSON records it together with the pre-rewrite baseline
    measured on the same container immediately before the fast-path PR,
    so the file documents the speedup and CI can fail on regressions
    (>20% against the committed number — see the workflow).

``snapshot_cycle``
    The same scenario **with** the per-snapshot connectivity analysis —
    the shape production experiments run (simulate → incremental graph →
    batched pair-flow per snapshot).  Wall-clock per full run.

``event_queue``
    Synthetic push/pop throughput of the tuple-heap scheduler alone
    (50k events, modular times), isolating the queue primitive from
    protocol work.

The trajectory digest of the measured scenario is asserted against the
determinism suite's golden value first: a benchmark that silently changed
the workload would otherwise report an incomparable number.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict

from benchmarks.conftest import BENCH_SEED, attach_obs_metrics, write_artefact
from repro.experiments.persistence import trajectory_digest
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scenarios import get_scenario
from repro.simulator.events import EventQueue

#: Profile of the headline measurement.  Deliberately NOT the harness's
#: REPRO_BENCH_PROFILE: the committed baseline below was measured on the
#: smoke profile and the numbers are only comparable on it.
PROFILE = "smoke"
SCENARIO = "E"

#: Pre-rewrite reference numbers, measured on the same container as the
#: committed results, at the pre-fast-path commit (7ef2694), best-of-3.
PRE_REWRITE_EVENTS_PER_SEC = 1050.7
PRE_REWRITE_QUEUE_OPS_PER_SEC = 457_230.0

#: Golden trajectory digest of (smoke, E, seed 42) — must match
#: tests/experiments/test_determinism_digest.py.
EXPECTED_DIGEST = "0a3ce5fa0536a348de7460626991bc2489fb01ba13b9a1dd1ddab0d5b59a913b"

REPEATS = 3
QUEUE_EVENTS = 50_000


def _best_of(fn: Callable[[], Dict], repeats: int = REPEATS) -> Dict:
    """Run ``fn`` ``repeats`` times; keep the run with the smallest ``seconds``."""
    best = None
    for _ in range(repeats):
        run = fn()
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    best["repeats"] = repeats
    return best


def _build_simulation():
    runner = ExperimentRunner(profile=PROFILE, seed=BENCH_SEED)
    scenario = get_scenario(SCENARIO)
    simulation = runner.build_simulation(scenario)
    phases = runner.phase_schedule(scenario)
    size = runner.profile.network_size(scenario.size_class)
    snapshots = []
    simulation.schedule_setup(size, runner.profile.setup_minutes)
    simulation.schedule_traffic(1.0, phases.simulation_end)
    simulation.schedule_churn(phases.stabilization_end, phases.simulation_end)
    simulation.schedule_snapshots(
        phases.snapshot_times(runner.profile.snapshot_interval_minutes),
        snapshots.append,
    )
    return simulation, phases


def _events_only_run() -> Dict:
    simulation, phases = _build_simulation()
    started = time.perf_counter()
    simulation.run_until(phases.simulation_end)
    elapsed = time.perf_counter() - started
    events = simulation.simulator.events_processed
    return {
        "events": events,
        "seconds": round(elapsed, 6),
        "events_per_sec": round(events / elapsed, 1),
    }


def _snapshot_cycle_run() -> Dict:
    runner = ExperimentRunner(profile=PROFILE, seed=BENCH_SEED)
    started = time.perf_counter()
    result = runner.run(get_scenario(SCENARIO))
    elapsed = time.perf_counter() - started
    analysis = sum(
        sample.report.elapsed_seconds for sample in result.series.samples
    )
    return {
        "snapshots": len(result.series),
        "seconds": round(elapsed, 6),
        "analysis_seconds": round(analysis, 6),
        "simulation_seconds": round(elapsed - analysis, 6),
    }


def _queue_run() -> Dict:
    queue = EventQueue()
    push = queue.push
    started = time.perf_counter()
    for i in range(QUEUE_EVENTS):
        push(float(i % 997), None)
    pop = queue.pop
    while pop() is not None:
        pass
    elapsed = time.perf_counter() - started
    ops = 2 * QUEUE_EVENTS
    return {
        "ops": ops,
        "seconds": round(elapsed, 6),
        "ops_per_sec": round(ops / elapsed, 1),
    }


def test_perf_simulator_trajectory(output_dir):
    # Guard: the benchmark must measure the exact golden workload.
    digest_runner = ExperimentRunner(
        profile=PROFILE, seed=BENCH_SEED, keep_snapshots=True
    )
    digest = trajectory_digest(digest_runner.run(get_scenario(SCENARIO)))
    assert digest == EXPECTED_DIGEST, (
        "benchmark scenario trajectory diverged from the determinism "
        "suite's golden digest — fix the regression (or re-baseline both)"
    )

    # Warm the interpreter off the clock.
    _events_only_run()

    events_only = _best_of(_events_only_run)
    snapshot_cycle = _best_of(_snapshot_cycle_run, repeats=2)
    queue = _best_of(_queue_run)

    speedup = round(events_only["events_per_sec"] / PRE_REWRITE_EVENTS_PER_SEC, 3)
    queue_speedup = round(queue["ops_per_sec"] / PRE_REWRITE_QUEUE_OPS_PER_SEC, 3)

    document = {
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "workload": {
            "profile": PROFILE,
            "scenario": SCENARIO,
            "seed": BENCH_SEED,
            "trajectory_digest": digest,
        },
        "events_per_sec": events_only,
        "snapshot_cycle": snapshot_cycle,
        "event_queue": queue,
        "baseline_pre_rewrite": {
            "events_per_sec": PRE_REWRITE_EVENTS_PER_SEC,
            "queue_ops_per_sec": PRE_REWRITE_QUEUE_OPS_PER_SEC,
            "provenance": (
                "measured at commit 7ef2694 (before the fast-path rewrite) "
                "on the same container as the committed numbers, best-of-3"
            ),
        },
        "headline": {
            "description": (
                "simulation events/sec (no analysis), smoke profile "
                "scenario E, vs the pre-rewrite event loop"
            ),
            "speedup": speedup,
            "queue_speedup": queue_speedup,
        },
    }

    path = output_dir / "BENCH_simulator.json"
    path.write_text(
        json.dumps(attach_obs_metrics(document), indent=2) + "\n",
        encoding="utf-8",
    )

    summary = [
        f"profile={PROFILE} scenario={SCENARIO} seed={BENCH_SEED}",
        f"events/sec (no analysis):   {events_only['events_per_sec']}"
        f"  ({events_only['events']} events, best of {REPEATS})",
        f"snapshot cycle:             {snapshot_cycle['seconds']}s"
        f"  (analysis {snapshot_cycle['analysis_seconds']}s,"
        f" {snapshot_cycle['snapshots']} snapshots)",
        f"event queue:                {queue['ops_per_sec']} ops/sec",
        f"speedup vs pre-rewrite loop: {speedup}x"
        f"  (queue primitive: {queue_speedup}x)",
    ]
    write_artefact(output_dir, "BENCH_simulator.txt", "\n".join(summary))

    # Structural sanity only: wall-clock ratios vs the committed number are
    # enforced by the CI regression gate, where the committed JSON is the
    # reference; asserting host-dependent ratios here would flake on
    # unrelated machines.
    assert events_only["events_per_sec"] > 0
    assert queue["ops_per_sec"] > 0
