"""Section 5.7 — bit-length b: 160 vs 80.

The paper reports (in text, without a figure) that repeating Simulations C
and D with b=80 instead of b=160 "showed no significant difference ... with
regard to connectivity".  This benchmark reruns the small-network variant
(Simulation C, k=20) with both bit lengths and asserts the stabilised and
churn-phase connectivity levels agree within a small tolerance.
"""

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.analysis.figures import format_table
from repro.experiments.scenarios import get_scenario


def test_section5_7_bit_length(benchmark, scenario_cache, output_dir):
    base = get_scenario("C").with_overrides(bucket_size=20)
    results = {
        b: scenario_cache.run(base.with_overrides(bit_length=b)) for b in (160, 80)
    }

    rows = []
    for b, result in results.items():
        rows.append([
            b,
            result.stabilized_minimum(),
            round(result.churn_mean_minimum(), 1),
            round(result.churn_mean_average(), 1),
        ])
    content = (
        "Section 5.7 (reproduced): identifier bit-length 160 vs 80, Simulation C, k=20\n"
        + format_table(
            ["b", "Min after stabilisation", "Mean min (churn)", "Mean avg (churn)"],
            rows,
        )
    )
    write_artefact(output_dir, "section5_7_bitlength.txt", content)

    # "No significant difference": stabilised minimum within 30 % / 5 units,
    # churn-phase mean minimum within 30 %.
    stab_160 = results[160].stabilized_minimum()
    stab_80 = results[80].stabilized_minimum()
    assert abs(stab_160 - stab_80) <= max(5, 0.3 * max(stab_160, stab_80))
    mean_160 = results[160].churn_mean_minimum()
    mean_80 = results[80].churn_mean_minimum()
    assert abs(mean_160 - mean_80) <= max(3, 0.3 * max(mean_160, mean_80))

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[80])
