"""Perf regression gates over the committed benchmark trend lines.

Compares freshly generated ``benchmarks/output/BENCH_*.json`` documents
against the versions committed at a git ref (default ``HEAD``) and fails
when a gated metric dropped more than the allowed fraction.  This is the
single entry point CI invokes instead of per-gate inline heredocs, so
adding a gate means adding one entry to :data:`GATES`.

Gates:

``simulator``
    Simulation events/sec (smoke profile, scenario E) — the event-loop
    fast path.
``connectivity``
    Minimum-pass engine-vs-baseline speedup (the 4-worker batched
    pair-flow engine over the per-pair serial baseline) — the snapshot
    connectivity fast path.  A ratio of two numbers measured in the same
    process, so host-speed variance largely cancels.
``estimation``
    Sampling-estimator flows/sec on a 10,000-node synthetic snapshot —
    the estimate-mode hot path (stratified draw + batched evaluation +
    branch-and-bound minimum pass).

Usage::

    python benchmarks/check_regression.py simulator connectivity
    python benchmarks/check_regression.py --ref HEAD~1 --threshold 0.75 simulator

The committed baselines were measured on the maintainer container;
GitHub's hosted runners are comparable or faster, so a >20% drop signals
a code regression rather than hardware variance.  If the runner fleet
changes, re-baseline the committed JSON rather than loosening the floor.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def _simulator_metric(document: dict) -> float:
    return float(document["events_per_sec"]["events_per_sec"])


def _connectivity_metric(document: dict) -> float:
    return float(document["headline"]["speedup"])


def _estimation_metric(document: dict) -> float:
    return float(document["headline"]["flows_per_sec"])


#: gate name -> (benchmark JSON file, metric extractor, metric description)
GATES = {
    "simulator": (
        "BENCH_simulator.json",
        _simulator_metric,
        "simulation events/sec",
    ),
    "connectivity": (
        "BENCH_connectivity.json",
        _connectivity_metric,
        "minimum-pass engine-vs-baseline speedup",
    ),
    "estimation": (
        "BENCH_estimation.json",
        _estimation_metric,
        "10k-node estimation flows/sec",
    ),
}


def _strip_metrics(document: dict) -> dict:
    """Drop any observability section before gate extraction.

    Instrumented benchmark runs (``REPRO_OBS=1``) may attach a
    ``"metrics"`` section to their BENCH JSON; it describes the run that
    produced the numbers, not the numbers themselves, so the gates must
    compare documents with and without it interchangeably.
    """
    document.pop("metrics", None)
    return document


def committed_document(ref: str, filename: str) -> dict:
    """Load ``benchmarks/output/<filename>`` as committed at ``ref``."""
    blob = subprocess.run(
        ["git", "show", f"{ref}:benchmarks/output/{filename}"],
        check=True,
        capture_output=True,
        cwd=Path(__file__).resolve().parent.parent,
    ).stdout
    return _strip_metrics(json.loads(blob))


def check_gate(name: str, ref: str, threshold: float) -> bool:
    """Return whether gate ``name`` passes; print a one-line verdict."""
    filename, metric, description = GATES[name]
    reference = metric(committed_document(ref, filename))
    fresh_path = OUTPUT_DIR / filename
    measured = metric(
        _strip_metrics(json.loads(fresh_path.read_text(encoding="utf-8")))
    )
    floor = threshold * reference
    verdict = "ok" if measured >= floor else "REGRESSED"
    print(
        f"[{name}] {description}: committed={reference} measured={measured} "
        f"floor={floor:.3f} -> {verdict}"
    )
    return measured >= floor


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "gates", nargs="+", choices=sorted(GATES),
        help="which trend lines to check",
    )
    parser.add_argument(
        "--ref", default="HEAD",
        help="git ref holding the committed baselines (default: HEAD)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.8,
        help="allowed fraction of the committed metric (default: 0.8, "
        "i.e. fail on a >20%% drop)",
    )
    args = parser.parse_args(argv)
    failed = [
        name
        for name in args.gates
        if not check_gate(name, args.ref, args.threshold)
    ]
    if failed:
        print(f"perf regression gates failed: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
