"""Table 1 — message-loss scenarios.

Table 1 is definitional (it specifies the loss model), so the reproduction
checks that our loss models produce exactly the paper's one-way/two-way
probabilities and measures the empirical two-way failure rate of the
transport against the analytic value.
"""

import random

import pytest

from benchmarks.conftest import write_artefact
from repro.analysis.figures import format_table
from repro.churn.loss import LOSS_SCENARIOS
from repro.experiments.report import format_table1, table1_rows
from repro.simulator.network import Network
from repro.simulator.node import SimNode
from repro.simulator.protocol import Protocol
from repro.simulator.transport import Transport


class _Echo(Protocol):
    protocol_name = "kademlia"

    def handle_request(self, sender_id, request):
        return "ok"


def _measure_two_way_failure_rate(loss_name: str, trials: int = 3000) -> float:
    network = Network()
    for node_id in (1, 2):
        node = SimNode(node_id)
        node.register_protocol("kademlia", _Echo(node_id))
        network.add_node(node)
    transport = Transport(
        network,
        loss_probability=LOSS_SCENARIOS[loss_name].one_way_probability,
        rng=random.Random(1234),
    )
    failures = sum(not transport.rpc(1, 2, "probe")[0] for _ in range(trials))
    return failures / trials


def test_table1_message_loss(benchmark, output_dir):
    rows = benchmark(table1_rows)

    # Paper values: one-way 0 / 2.5 / 13.4 / 29.3 %, two-way 0 / 5 / 25 / 50 %.
    by_name = {row["loss"]: row for row in rows}
    assert by_name["none"]["p_loss_one_way"] == 0.0
    assert by_name["low"]["p_loss_one_way"] == pytest.approx(2.5)
    assert by_name["medium"]["p_loss_one_way"] == pytest.approx(13.4)
    assert by_name["high"]["p_loss_one_way"] == pytest.approx(29.3)
    assert by_name["low"]["p_loss_two_way"] == pytest.approx(5.0, abs=0.2)
    assert by_name["medium"]["p_loss_two_way"] == pytest.approx(25.0, abs=0.2)
    assert by_name["high"]["p_loss_two_way"] == pytest.approx(50.0, abs=0.2)

    # Empirical check: the transport's observed round-trip failure rate
    # matches the analytic two-way probability for every scenario.
    measured_rows = []
    for name in ("none", "low", "medium", "high"):
        analytic = LOSS_SCENARIOS[name].two_way_probability
        measured = _measure_two_way_failure_rate(name)
        assert measured == pytest.approx(analytic, abs=0.03)
        measured_rows.append([name, round(analytic * 100, 1), round(measured * 100, 1)])

    content = (
        "Table 1 (reproduced): message loss scenarios\n"
        + format_table1()
        + "\n\nEmpirical transport check (3000 round-trips per scenario)\n"
        + format_table(["Loss l", "analytic 2-way %", "measured 2-way %"], measured_rows)
    )
    write_artefact(output_dir, "table1_message_loss.txt", content)
