"""Figure 12 — Simulation J: message loss without churn, s ∈ {1, 5}.

Paper observations reproduced: with s=1, message loss *increases* the
network connectivity well above the bucket size k (failed round-trips evict
contacts and let the sub-optimal post-setup structure reorganise), and more
loss gives more connectivity; with s=5 the effect is strongly damped — the
connectivity stays near k and rises far more slowly.
"""

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import get_scenario

LOSS_LEVELS = ("low", "medium", "high")


def test_figure12_loss_without_churn(benchmark, scenario_cache, output_dir):
    base = get_scenario("J")
    results = {}
    for loss in LOSS_LEVELS:
        for s in (1, 5):
            scenario = base.with_overrides(loss=loss, staleness_limit=s)
            results[(loss, s)] = scenario_cache.run(scenario)

    for s in (1, 5):
        panel = {loss: results[(loss, s)] for loss in LOSS_LEVELS}
        content = format_figure(
            panel,
            f"Figure 12{'a' if s == 1 else 'b'} (reproduced): Simulation J, large "
            f"network, message loss, no churn, k=20, s={s}",
        )
        write_artefact(output_dir, f"figure12_loss_no_churn_s{s}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    mean_avg = {key: result.churn_mean_average() for key, result in results.items()}
    no_loss = scenario_cache.run(base.with_overrides(loss="none", staleness_limit=1))

    # With s=1, message loss lifts the average connectivity above the
    # loss-free baseline for the stronger loss levels.
    assert mean_avg[("high", 1)] >= no_loss.churn_mean_average() * 0.95
    # More loss does not reduce connectivity with s=1 (10 % noise tolerance
    # at bench scale).  At smoke scale the low-loss tables already sit near
    # the saturation ceiling (a node can know almost the whole network),
    # which compresses the headroom the stronger loss levels can add, so the
    # tolerance widens to 20 %.
    factor = 0.9 if scenario_cache.profile.name == "bench" else 0.8
    assert mean_avg[("high", 1)] >= mean_avg[("low", 1)] * factor

    # The damping effect of s=5: for each loss level the average
    # connectivity with s=5 is no higher than with s=1.
    for loss in LOSS_LEVELS:
        assert mean_avg[(loss, 5)] <= mean_avg[(loss, 1)] * 1.1

    # Without churn the network size stays constant.
    sizes = results[("high", 1)].series.network_size_series()
    assert sizes[-1] == max(sizes)

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[("high", 1)])
