"""Ablation — source/target sampling fraction of the connectivity search.

The paper reduces the number of max-flow computations by using only the
``c * n`` lowest-out-degree vertices as flow sources (Section 5.2,
c = 2 %).  Our analyzer additionally samples targets (lowest in-degree).
This benchmark compares the sampled minimum against the exact minimum on a
moderate snapshot and times the two, quantifying the paper's claim that the
sampling recovers the true graph connectivity at a fraction of the cost.
"""

import pytest

from benchmarks.conftest import write_artefact
from repro.analysis.figures import format_table
from repro.core.analyzer import ConnectivityAnalyzer
from repro.experiments.scenarios import get_scenario


@pytest.fixture(scope="module")
def small_snapshot(scenario_cache):
    """Final snapshot of the small-network Simulation E with k=10."""
    result = scenario_cache.run(get_scenario("E").with_overrides(bucket_size=10))
    return result.snapshots[-1]


@pytest.mark.parametrize("mode, source_fraction", [("exact", None), ("sampled", 0.06)])
def test_ablation_sampling_fraction(mode, source_fraction, small_snapshot,
                                    benchmark, output_dir):
    analyzer = ConnectivityAnalyzer(
        source_fraction=source_fraction, target_fraction=0.06, average_pairs=0, seed=1
    )
    report = benchmark.pedantic(
        lambda: analyzer.analyze_snapshot(small_snapshot.routing_tables),
        rounds=1,
        iterations=1,
    )

    exact_analyzer = ConnectivityAnalyzer(source_fraction=None, average_pairs=0)
    exact_report = exact_analyzer.analyze_snapshot(small_snapshot.routing_tables)

    # The sampled minimum matches the exact minimum on this snapshot
    # (the paper verified the same for c = 2 % on 20 graphs).
    assert report.minimum == exact_report.minimum

    content = format_table(
        ["mode", "minimum", "min-pass flows", "exact minimum"],
        [[mode, report.minimum, report.min_pairs_evaluated, exact_report.minimum]],
    )
    write_artefact(output_dir, f"ablation_sampling_{mode}.txt",
                   f"Connectivity sampling ablation ({mode})\n{content}")
