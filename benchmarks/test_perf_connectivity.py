"""Perf trajectory benchmark for the pair-flow hot path.

Measures pairs/sec of the per-snapshot connectivity computation on a fixed
seeded graph and writes ``benchmarks/output/BENCH_connectivity.json`` — a
machine-readable baseline-vs-after record so future perf PRs have a trend
line to compare against.

Two workloads are timed, each across four configurations:

``minimum_pass``
    The analyzer's production workload: the minimum of ``kappa`` over the
    lowest-out-degree x lowest-in-degree pair grid, seeded with the degree
    bound.  This is where the batched engine's one-transform-per-snapshot
    construction and sharded cutoff propagation both pay off.

``average_pass``
    A cutoff-free batch of the same pairs (exact values), isolating the
    build-once + micro-optimised-solver gain from the cutoff gain.

Configurations:

* ``baseline_serial`` — the pre-batching serial path: one
  :func:`pairwise_vertex_connectivity` call per pair, which rebuilds the
  Even transformation and residual network every time and has no cutoff
  support.  This is the cost model the paper's ~250 CPU-hour figure and
  this repo's pre-engine per-pair API share.
* ``evaluator_serial`` — the pre-engine analyzer internals
  (:class:`PairFlowEvaluator`): network built once, per-pair cutoffs.
* ``engine_serial`` — :class:`PairFlowEngine` with ``flow_jobs=1``.
* ``engine_parallel4`` — the engine on a 4-worker process pool.

All four configurations must agree on the minimum (asserted); the speedup
figures are recorded, not asserted, because wall-clock ratios depend on
the host (on a single-CPU runner ``engine_parallel4`` pays pool/IPC
overhead for no real parallelism and lands between ``baseline_serial``
and ``engine_serial``).  Every configuration is timed best-of-N, and the
engine configurations are timed in steady state (session pinned, pool
warmed) — the shape in which the analyzer actually uses the engine.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable, Dict, Tuple

from benchmarks.conftest import BENCH_SEED, attach_obs_metrics, write_artefact
from repro.core.vertex_connectivity import (
    PairFlowEvaluator,
    lowest_in_degree_vertices,
    lowest_out_degree_vertices,
    pairwise_vertex_connectivity,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_regular_out_digraph
from repro.runtime.pairflow import PairFlowEngine

#: Benchmark-graph shape (fixed so the JSON is comparable across PRs).
GRAPH_NODES = 200
GRAPH_OUT_DEGREE = 5
GRAPH_SEED = 99
#: In/out edges kept on the carved bottleneck vertex (drives the minimum,
#: and with it every cutoff, below the regular degree).
BOTTLENECK_DEGREE = 2
#: Pair-grid dimensions of the minimum pass.
SOURCE_COUNT = 16
TARGET_COUNT = 16
#: Worker count of the parallel configuration (the ISSUE's reference run).
PARALLEL_JOBS = 4


def benchmark_graph() -> DiGraph:
    """Symmetric closure of a random regular digraph plus one weak vertex.

    The symmetric closure mirrors the paper's observation that Kademlia
    connectivity graphs are nearly undirected; the carved low-degree
    vertex gives the graph a real bottleneck, which is exactly the regime
    where the minimum pass's degree-bound seeding and cutoff propagation
    matter.
    """
    base = random_regular_out_digraph(
        GRAPH_NODES, GRAPH_OUT_DEGREE, random.Random(GRAPH_SEED)
    )
    graph = DiGraph()
    for u, v, _ in base.edges():
        graph.add_edge(u, v)
        graph.add_edge(v, u)
    weak = graph.vertices()[0]
    for target in graph.successors(weak)[BOTTLENECK_DEGREE:]:
        graph.remove_edge(weak, target)
    for source in graph.predecessors(weak)[BOTTLENECK_DEGREE:]:
        graph.remove_edge(source, weak)
    return graph


#: Timed repetitions per configuration; the best run is recorded.  On a
#: shared single-CPU host a single shot of the pooled configuration can be
#: dominated by scheduler noise — best-of-N is the standard throughput
#: measurement and is what makes the JSON comparable across PRs.
REPEATS = 3


def _timed(fn: Callable[[], Tuple[int, int]], repeats: int = REPEATS) -> Dict[str, float]:
    """Run ``fn`` -> (minimum, pairs) ``repeats`` times; keep the best run."""
    best_elapsed = None
    minimum = pairs = 0
    for _ in range(repeats):
        started = time.perf_counter()
        minimum, pairs = fn()
        elapsed = time.perf_counter() - started
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
    return {
        "minimum": minimum,
        "pairs": pairs,
        "seconds": round(best_elapsed, 6),
        "pairs_per_sec": (
            round(pairs / best_elapsed, 2) if best_elapsed > 0 else 0.0
        ),
        "repeats": repeats,
    }


def test_perf_connectivity_trajectory(output_dir):
    graph = benchmark_graph()
    sources = lowest_out_degree_vertices(graph, SOURCE_COUNT)
    targets = lowest_in_degree_vertices(graph, TARGET_COUNT)
    degree_bound = min(graph.min_out_degree(), graph.min_in_degree())
    pairs = [
        (source, target)
        for source in sources
        for target in targets
        if target != source and not graph.has_edge(source, target)
    ]
    assert pairs, "benchmark grid must contain non-adjacent pairs"

    # Warm the interpreter (bytecode specialisation) off the clock.
    PairFlowEngine(graph).evaluate(pairs[:8])
    [pairwise_vertex_connectivity(graph, s, t) for s, t in pairs[:4]]

    # ------------------------------------------------------------------
    # Engine configurations are timed in steady state: the session (and
    # with it the worker pool plus the shipped network) is pinned once per
    # configuration and warmed before the clock starts, matching how the
    # analyzer uses the engine (one pinned session per snapshot, many
    # shard waves through it).
    def timed_engine(jobs, workload) -> Dict[str, float]:
        with PairFlowEngine(graph, flow_jobs=jobs) as engine:
            engine.evaluate(pairs[:16])  # warm the pool / worker state
            return _timed(lambda: workload(engine))

    def minimum_workload(engine):
        return engine.minimum_over(sources, targets, initial_minimum=degree_bound)

    def average_workload(engine):
        outcome = engine.evaluate(pairs)
        return outcome.minimum, outcome.pairs_evaluated

    # ------------------------------------------------------------------
    # Workload 1: the minimum pass.
    def baseline_minimum():
        values = [pairwise_vertex_connectivity(graph, s, t) for s, t in pairs]
        return min(values), len(values)

    def evaluator_minimum():
        return PairFlowEvaluator(graph).minimum_over(
            sources, targets, use_cutoff=True, initial_minimum=degree_bound
        )

    minimum_pass = {
        "baseline_serial": _timed(baseline_minimum, repeats=2),
        "evaluator_serial": _timed(evaluator_minimum),
        "engine_serial": timed_engine(1, minimum_workload),
        f"engine_parallel{PARALLEL_JOBS}": timed_engine(
            PARALLEL_JOBS, minimum_workload
        ),
    }
    minima = {config["minimum"] for config in minimum_pass.values()}
    assert len(minima) == 1, f"configurations disagree on the minimum: {minimum_pass}"

    # ------------------------------------------------------------------
    # Workload 2: a cutoff-free exact batch (average-pass shape).  The
    # per-pair baseline has no cutoff support, so its minimum-pass and
    # average-pass workloads are literally the same loop — reuse the
    # timing instead of re-running the slowest configuration.
    average_pass = {
        "baseline_serial": minimum_pass["baseline_serial"],
        "engine_serial": timed_engine(1, average_workload),
        f"engine_parallel{PARALLEL_JOBS}": timed_engine(
            PARALLEL_JOBS, average_workload
        ),
    }
    assert len({config["minimum"] for config in average_pass.values()}) == 1

    def speedup(workload, config, reference="baseline_serial"):
        return round(
            workload[config]["pairs_per_sec"]
            / workload[reference]["pairs_per_sec"],
            3,
        )

    parallel_key = f"engine_parallel{PARALLEL_JOBS}"
    document = {
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "graph": {
            "nodes": GRAPH_NODES,
            "edges": graph.number_of_edges(),
            "generator": "symmetric closure of random_regular_out_digraph",
            "out_degree": GRAPH_OUT_DEGREE,
            "seed": GRAPH_SEED,
            "bottleneck_degree": BOTTLENECK_DEGREE,
            "degree_bound": degree_bound,
            "pair_grid": f"{SOURCE_COUNT}x{TARGET_COUNT}",
            "pairs_evaluated": len(pairs),
        },
        "workloads": {
            "minimum_pass": {
                "configs": minimum_pass,
                "speedups_vs_baseline": {
                    config: speedup(minimum_pass, config)
                    for config in minimum_pass
                    if config != "baseline_serial"
                },
            },
            "average_pass": {
                "configs": average_pass,
                "speedups_vs_baseline": {
                    config: speedup(average_pass, config)
                    for config in average_pass
                    if config != "baseline_serial"
                },
            },
        },
        "headline": {
            "description": (
                f"minimum-pass pairs/sec, {PARALLEL_JOBS}-worker engine vs "
                "the per-pair serial baseline"
            ),
            "speedup": speedup(minimum_pass, parallel_key),
        },
        "provenance": {"bench_seed": BENCH_SEED},
    }

    path = output_dir / "BENCH_connectivity.json"
    path.write_text(
        json.dumps(attach_obs_metrics(document), indent=2) + "\n",
        encoding="utf-8",
    )

    summary_lines = [
        f"{'config':<22} {'pairs/s (min pass)':>18} {'pairs/s (avg pass)':>18}"
    ]
    for config in minimum_pass:
        avg = average_pass.get(config, {}).get("pairs_per_sec", "-")
        summary_lines.append(
            f"{config:<22} {minimum_pass[config]['pairs_per_sec']:>18} {avg:>18}"
        )
    summary_lines.append(
        f"headline speedup ({parallel_key} vs baseline_serial, min pass): "
        f"{document['headline']['speedup']}x"
    )
    write_artefact(
        output_dir, "BENCH_connectivity.txt", "\n".join(summary_lines)
    )

    # Sanity floor on the pool-free configuration only — the serial engine
    # has no IPC/scheduler noise, so this cannot flake on a loaded host;
    # the parallel ratio is recorded, not asserted, because it depends on
    # the runner's core count.
    assert speedup(minimum_pass, "engine_serial") > 1.0


# ----------------------------------------------------------------------
# Campaign scheduler benchmark: time-to-first-figure on a mixed-cost sweep.
# ----------------------------------------------------------------------

#: Mixed-cost task set, deliberately submitted most-expensive-first (the
#: adversarial order for FIFO): tiny K is a large-network churn+loss run,
#: tiny E a small churn run, tiny A a small no-traffic 0/1 run — observed
#: costs span roughly an order of magnitude.
SCHEDULER_SCENARIOS = ("K", "E", "A")
SCHEDULER_PROFILE = "tiny"


def test_perf_scheduler_time_to_first_figure(output_dir, tmp_path):
    """Record the cheapest-first scheduling win in BENCH_connectivity.json.

    Two passes over the same mixed-cost batch, both *uncached* so every
    task really executes:

    * ``fifo`` — submission order, cold cost model.  Its per-task
      wall-clocks warm the ``_costs.json`` sidecar.
    * ``cheapest`` — the warmed model reorders dispatch cheapest-first.

    Time-to-first-result is the scheduling payoff (the campaign streams
    each result through its progress callback the moment it completes);
    the results themselves must be bit-identical, pass to pass.
    """
    from repro.experiments.persistence import trajectory_digest
    from repro.experiments.scenarios import get_scenario
    from repro.runtime import Campaign, ExperimentTask, TaskCostModel
    from repro.runtime.costmodel import COSTS_FILENAME

    tasks = [
        ExperimentTask.create(
            scenario=get_scenario(name),
            profile=SCHEDULER_PROFILE,
            seed=BENCH_SEED,
            adaptive_shards=True,
        )
        for name in SCHEDULER_SCENARIOS
    ]
    sidecar = tmp_path / COSTS_FILENAME

    def timed_campaign(schedule: str):
        started = time.perf_counter()
        first_result_at = None
        completion_order = []

        def progress(event):
            nonlocal first_result_at
            if first_result_at is None:
                first_result_at = time.perf_counter() - started
            completion_order.append(event.task.scenario.name)

        with Campaign(
            progress=progress,
            schedule=schedule,
            cost_model=TaskCostModel(sidecar),
        ) as campaign:
            results = campaign.run(tasks)
        total = time.perf_counter() - started
        return {
            "results": results,
            "completion_order": completion_order,
            "time_to_first_result": round(first_result_at, 6),
            "total_seconds": round(total, 6),
        }

    fifo = timed_campaign("fifo")
    cheapest = timed_campaign("cheapest")

    # Scheduling is order-only: the two passes return bit-identical
    # results in submission order ...
    fifo_digests = [trajectory_digest(result) for result in fifo["results"]]
    cheapest_digests = [
        trajectory_digest(result) for result in cheapest["results"]
    ]
    assert fifo_digests == cheapest_digests
    # ... while the warmed model really inverted the dispatch order and
    # with it the time to the first streamed figure.
    assert fifo["completion_order"] == list(SCHEDULER_SCENARIOS)
    assert cheapest["completion_order"] == list(reversed(SCHEDULER_SCENARIOS))
    assert cheapest["time_to_first_result"] < fifo["time_to_first_result"]

    def pass_record(record):
        return {
            "completion_order": record["completion_order"],
            "time_to_first_result_seconds": record["time_to_first_result"],
            "total_seconds": record["total_seconds"],
        }

    section = {
        "description": (
            "mixed-cost tiny sweep (scenarios submitted most-expensive-"
            "first), uncached, --adaptive-shards; cheapest-first dispatch "
            "via the _costs.json cost model warmed by the fifo pass"
        ),
        "scenarios_submission_order": list(SCHEDULER_SCENARIOS),
        "profile": SCHEDULER_PROFILE,
        "fifo": pass_record(fifo),
        "cheapest": pass_record(cheapest),
        "time_to_first_result_speedup": round(
            fifo["time_to_first_result"] / cheapest["time_to_first_result"], 3
        ),
        "results_bit_identical": True,
    }

    path = output_dir / "BENCH_connectivity.json"
    document = json.loads(path.read_text(encoding="utf-8"))
    document["scheduler"] = section
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    summary = (
        f"scheduler: time-to-first-figure {fifo['time_to_first_result']}s "
        f"(fifo) -> {cheapest['time_to_first_result']}s (cheapest), "
        f"{section['time_to_first_result_speedup']}x, results bit-identical"
    )
    txt_path = output_dir / "BENCH_connectivity.txt"
    lines = [
        line
        for line in txt_path.read_text(encoding="utf-8").splitlines()
        if not line.startswith("scheduler:")
    ]
    lines.append(summary)
    txt_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"\n[scheduler -> {path}]\n{summary}")
