"""Figures 6 and 7 — Simulations E & F: churn 1/1, with data traffic.

Paper observations reproduced here: the setup/stabilisation phases behave
like Simulations C & D; during steady 1/1 churn the minimum connectivity
for the larger bucket sizes oscillates around ``k`` while it drops
significantly for small ``k`` (down to 0 for k=5 in the large network).
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario


@pytest.mark.parametrize(
    "figure, scenario_name", [("figure6", "E"), ("figure7", "F")]
)
def test_figures_6_7_churn_1_1(figure, scenario_name,
                               benchmark, scenario_cache, output_dir):
    base = get_scenario(scenario_name)
    results = {
        k: scenario_cache.run(base.with_overrides(bucket_size=k))
        for k in PAPER_BUCKET_SIZES
    }

    content = format_figure(
        results,
        f"{figure.capitalize()} (reproduced): Simulation {scenario_name}, "
        f"{base.size_class} network, churn 1/1, with data traffic",
    )
    write_artefact(output_dir, f"{figure}_simulation_{scenario_name}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    means = {k: results[k].churn_mean_minimum() for k in PAPER_BUCKET_SIZES}
    # Connectivity during churn tracks the bucket size.
    assert means[30] >= means[10] >= means[5]
    assert means[20] > means[5]
    # The 1/1 churn keeps the network size constant.
    for k in PAPER_BUCKET_SIZES:
        sizes = results[k].series.network_size_series()
        assert sizes[-1] == max(sizes)
    # For adequate bucket sizes the minimum oscillates around k rather than
    # collapsing: its churn-phase mean stays within a factor ~2 of k.
    assert means[20] >= 10
    # Small k suffers: the churn-phase minimum drops below k at some point.
    small_k_min = min(
        results[5].series.window(results[5].phases.stabilization_end).minimum_series()
    )
    assert small_k_min < 5

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[20])
