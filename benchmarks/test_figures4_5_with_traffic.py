"""Figures 4 and 5 — Simulations C & D: churn 0/1, with data traffic.

Paper observations reproduced here: the setup phase looks like Simulations
A & B, but data traffic fixes the weakly-connected nodes during
stabilisation for *all* bucket sizes, pushes connectivity to ``k`` or above
earlier, and amplifies the connectivity increase during the 0/1 churn phase.
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario


@pytest.mark.parametrize(
    "figure, scenario_name, no_traffic_name",
    [("figure4", "C", "A"), ("figure5", "D", "B")],
)
def test_figures_4_5_with_traffic(figure, scenario_name, no_traffic_name,
                                  benchmark, scenario_cache, output_dir):
    base = get_scenario(scenario_name)
    results = {
        k: scenario_cache.run(base.with_overrides(bucket_size=k))
        for k in PAPER_BUCKET_SIZES
    }

    content = format_figure(
        results,
        f"{figure.capitalize()} (reproduced): Simulation {scenario_name}, "
        f"{base.size_class} network, churn 0/1, with data traffic",
    )
    write_artefact(output_dir, f"{figure}_simulation_{scenario_name}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    # With traffic, every bucket size is connected after stabilisation
    # (the paper: "this issue is resolved ... for all four k values").
    stabilized = {k: results[k].stabilized_minimum() for k in PAPER_BUCKET_SIZES}
    for k in PAPER_BUCKET_SIZES:
        assert stabilized[k] > 0, f"k={k} still disconnected after stabilisation"
    # Connectivity ordered by bucket size.
    assert stabilized[30] >= stabilized[10] >= stabilized[5]

    # Traffic improves connectivity compared to the no-traffic twin (same
    # size class, same churn).  The paper's end-of-run observation is the
    # robust form of this at bench scale: "with 10 nodes left in the network,
    # the network is now fully connected for each bucket size except the
    # smallest one" — whereas without traffic the small bucket sizes never
    # reach full connectivity.  (The stabilised minimum itself is not a
    # reliable discriminator at bench scale: the no-traffic runs fill their
    # tables via bucket refreshes alone, which in a network this small is
    # already enough to reach k; see EXPERIMENTS.md.)
    for k in (10, 20, 30):
        with_traffic_final = results[k].series.final_sample()
        full = with_traffic_final.network_size - 1
        assert with_traffic_final.minimum >= full, (
            f"k={k}: with traffic the surviving network should end fully connected"
        )
    no_traffic_small_k = scenario_cache.run(
        get_scenario(no_traffic_name).with_overrides(bucket_size=5)
    ).series.final_sample()
    with_traffic_small_k = results[5].series.final_sample()
    # The final sample observes the min_remaining-node residual network — a
    # single draw whose minimum moves by one connection between profiles, so
    # below bench scale the comparison carries a one-connection tolerance.
    slack = 0 if scenario_cache.profile.name == "bench" else 1
    assert with_traffic_small_k.minimum >= no_traffic_small_k.minimum - slack

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[20])
