"""Figure 14 — Simulation L: message loss with churn 10/10, s ∈ {1, 5}.

Paper observations reproduced: the strong churn counters the positive effect
of message loss even further than in Simulation K — now also the average
connectivity is reduced — and with the added damping of s=5 the minimum
connectivity stays below (or around) k throughout the churn phase.
"""

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import get_scenario

LOSS_LEVELS = ("low", "medium", "high")


def test_figure14_loss_with_churn_10_10(benchmark, scenario_cache, output_dir):
    base = get_scenario("L")
    results = {}
    for loss in LOSS_LEVELS:
        for s in (1, 5):
            scenario = base.with_overrides(loss=loss, staleness_limit=s)
            results[(loss, s)] = scenario_cache.run(scenario)

    for s in (1, 5):
        panel = {loss: results[(loss, s)] for loss in LOSS_LEVELS}
        content = format_figure(
            panel,
            f"Figure 14{'a' if s == 1 else 'b'} (reproduced): Simulation L, large "
            f"network, message loss, churn 10/10, k=20, s={s}",
        )
        write_artefact(output_dir, f"figure14_loss_churn_10_10_s{s}.txt", content)

    # --- qualitative shape assertions -------------------------------------
    # Stronger churn (10/10) counters the loss-driven connectivity gain even
    # more than 1/1 churn: the average connectivity is no higher than in the
    # corresponding Simulation K run.
    k_base = get_scenario("K")
    for loss in LOSS_LEVELS:
        here = results[(loss, 1)].churn_mean_average()
        with_weaker_churn = scenario_cache.run(
            k_base.with_overrides(loss=loss, staleness_limit=1)
        ).churn_mean_average()
        assert here <= with_weaker_churn * 1.15, loss

    # With the added damping of s=5 the minimum connectivity stays at or
    # below roughly k during the churn phase.
    for loss in LOSS_LEVELS:
        result = results[(loss, 5)]
        churn_min = result.series.window(
            result.phases.stabilization_end
        ).minimum_series()
        assert max(churn_min) <= result.scenario.bucket_size * 1.6, loss

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[("high", 5)])
