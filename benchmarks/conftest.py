"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures.
Simulations are expensive, so they are dispatched through
:class:`repro.runtime.Campaign`: an in-process memo plus a persistent
content-addressed :class:`~repro.runtime.cache.ResultCache` under
``benchmarks/.result-cache``, so repeated benchmark invocations of the same
figure reuse finished runs instead of re-simulating them.  The ``benchmark``
fixture then measures the paper's dominant cost — the connectivity analysis
of a routing-table snapshot — on the data produced by those simulations.

The harness runs on the ``smoke`` profile by default so the full suite
finishes in minutes; set ``REPRO_BENCH_PROFILE=bench`` to regenerate the
artefacts at the larger bench scale (each file records its profile in a
provenance header).  Other knobs:
``REPRO_BENCH_JOBS`` (worker processes), ``REPRO_BENCH_CACHE_DIR``
(alternative cache location, or ``off`` to disable caching entirely).

Each module writes its reproduced rows/series to
``benchmarks/output/<artefact>.txt`` so those numbers can be regenerated
with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro import obs
from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import Scenario
from repro.runtime import Campaign, ExperimentTask, ResultCache, make_executor

#: Root seed of every benchmark simulation (fixed for reproducibility).
BENCH_SEED = 42
#: Scale profile used by the harness (see module docstring).
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "smoke")
#: Directory that receives the reproduced tables/figures as text files.
OUTPUT_DIR = Path(__file__).parent / "output"
#: Persistent result cache shared by all benchmark runs.
DEFAULT_CACHE_DIR = Path(__file__).parent / ".result-cache"


def _configured_cache() -> Optional[ResultCache]:
    configured = os.environ.get("REPRO_BENCH_CACHE_DIR", "")
    if configured.lower() in ("off", "none", "0"):
        return None
    return ResultCache(configured or DEFAULT_CACHE_DIR)


class ScenarioCache:
    """Campaign-backed memo of scenario runs, keyed by the task content hash.

    Results live in two layers: a per-session dictionary (so one pytest
    session never loads the same result twice) and the persistent
    :class:`ResultCache` shared across sessions.
    """

    def __init__(self, profile_name: str = BENCH_PROFILE, seed: int = BENCH_SEED) -> None:
        self.profile = get_profile(profile_name)
        self.seed = seed
        self.campaign = Campaign(
            executor=make_executor(int(os.environ.get("REPRO_BENCH_JOBS", "1"))),
            cache=_configured_cache(),
        )
        self._results: Dict[str, ExperimentResult] = {}

    def run(self, scenario: Scenario) -> ExperimentResult:
        """Run ``scenario`` (or return the cached result of an earlier run)."""
        task = ExperimentTask.create(
            scenario=scenario,
            profile=self.profile,
            seed=self.seed,
            keep_snapshots=True,
        )
        key = task.key()
        if key not in self._results:
            self._results[key] = self.campaign.run_one(task)
        return self._results[key]

    def close(self) -> None:
        """Release the campaign's persistent worker session, if any.

        Relevant when ``REPRO_CAMPAIGN_BATCH`` enables batching: the
        campaign then owns a pinned worker pool for its whole lifetime.
        """
        self.campaign.close()

    def analyzer(self):
        """A fresh connectivity analyzer configured like the benchmark runs."""
        return ExperimentRunner(
            profile=self.profile, seed=self.seed, keep_snapshots=True
        ).build_analyzer()


@pytest.fixture(scope="session")
def scenario_cache():
    """Session-scoped cache of scenario runs shared by all benchmarks."""
    cache = ScenarioCache()
    yield cache
    cache.close()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory for the reproduced tables/figures."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def attach_obs_metrics(document: dict) -> dict:
    """Attach the live observability snapshot to a BENCH_* document.

    Under ``REPRO_OBS=1`` the benchmark run is instrumented; its counters
    (events, lookups, cache traffic) describe the run that produced the
    committed numbers, so they ride along under a top-level ``"metrics"``
    key.  The perf regression gates strip that key before extraction
    (``check_regression._strip_metrics``) — instrumented and plain
    documents gate identically.  A no-op when observability is off.
    """
    registry = obs.active()
    if registry is not None:
        from repro.obs.summary import METRICS_SCHEMA

        document["metrics"] = {
            "schema": METRICS_SCHEMA,
            "metrics": registry.snapshot(),
        }
    return document


def write_artefact(output_dir: Path, name: str, content: str) -> None:
    """Write a reproduced table/figure to the output directory and echo it.

    A provenance line records which profile/seed produced the numbers, so
    smoke-scale artefacts can never be mistaken for bench-scale ones.
    """
    path = output_dir / name
    provenance = f"[profile: {BENCH_PROFILE}, seed: {BENCH_SEED}]"
    path.write_text(f"{provenance}\n{content}\n", encoding="utf-8")
    print(f"\n[reproduced -> {path}]\n{content}")


def benchmark_final_snapshot_analysis(benchmark, cache: ScenarioCache, result):
    """Benchmark the connectivity analysis of a run's final snapshot.

    This is the step the paper spends cluster-hours on; benchmarking it per
    figure keeps the timing comparable across scenarios while the simulation
    itself runs only once (in the session cache).
    """
    snapshot = result.snapshots[-1]
    analyzer = cache.analyzer()
    report = benchmark.pedantic(
        lambda: analyzer.analyze_snapshot(snapshot.routing_tables),
        rounds=1,
        iterations=1,
    )
    return report
