"""Shared infrastructure for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures.
Simulations are expensive, so they run once per pytest session through the
``scenario_cache`` fixture (memoised by scenario label); the ``benchmark``
fixture then measures the paper's dominant cost — the connectivity analysis
of a routing-table snapshot — on the data produced by those simulations.

Each module writes its reproduced rows/series to
``benchmarks/output/<artefact>.txt`` so the numbers referenced in
EXPERIMENTS.md can be regenerated with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

from repro.experiments.profiles import get_profile
from repro.experiments.runner import ExperimentResult, ExperimentRunner
from repro.experiments.scenarios import Scenario

#: Root seed of every benchmark simulation (fixed for reproducibility).
BENCH_SEED = 42
#: Scale profile used by the harness; see DESIGN.md for the substitution.
BENCH_PROFILE = "bench"
#: Directory that receives the reproduced tables/figures as text files.
OUTPUT_DIR = Path(__file__).parent / "output"


class ScenarioCache:
    """Session-wide memo of scenario runs, keyed by the scenario label."""

    def __init__(self, profile_name: str = BENCH_PROFILE, seed: int = BENCH_SEED) -> None:
        self.profile = get_profile(profile_name)
        self.seed = seed
        self._runner = ExperimentRunner(
            profile=self.profile, seed=seed, keep_snapshots=True
        )
        self._results: Dict[str, ExperimentResult] = {}

    def run(self, scenario: Scenario) -> ExperimentResult:
        """Run ``scenario`` (or return the cached result of an earlier run)."""
        key = scenario.label()
        if key not in self._results:
            self._results[key] = self._runner.run(scenario)
        return self._results[key]

    def analyzer(self):
        """A fresh connectivity analyzer configured like the runner's."""
        return self._runner.build_analyzer()


@pytest.fixture(scope="session")
def scenario_cache() -> ScenarioCache:
    """Session-scoped cache of scenario runs shared by all benchmarks."""
    return ScenarioCache()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory for the reproduced tables/figures."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artefact(output_dir: Path, name: str, content: str) -> None:
    """Write a reproduced table/figure to the output directory and echo it."""
    path = output_dir / name
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n[reproduced -> {path}]\n{content}")


def benchmark_final_snapshot_analysis(benchmark, cache: ScenarioCache, result):
    """Benchmark the connectivity analysis of a run's final snapshot.

    This is the step the paper spends cluster-hours on; benchmarking it per
    figure keeps the timing comparable across scenarios while the simulation
    itself runs only once (in the session cache).
    """
    snapshot = result.snapshots[-1]
    analyzer = cache.analyzer()
    report = benchmark.pedantic(
        lambda: analyzer.analyze_snapshot(snapshot.routing_tables),
        rounds=1,
        iterations=1,
    )
    return report
