"""Figure 10 — mean minimum connectivity during churn vs bucket size and alpha.

Reproduces both panels (10a: small network, 10b: large network) with the
three curve families of the paper: churn 1/1 with alpha=3, churn 10/10 with
alpha=3 (both reused from Simulations E–H) and churn 10/10 with alpha=5.

Paper observations asserted: connectivity grows with k; 1/1 churn gives at
least the connectivity of 10/10 churn; raising alpha to 5 under 10/10 churn
does not help and hurts the small bucket sizes.
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import figure10_rows, format_figure10
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario

#: The three curve families of Figure 10, per panel: (churn, alpha, base scenario).
CURVES = {
    "small": [("1/1", 3, "E"), ("10/10", 3, "G"), ("10/10", 5, "G")],
    "large": [("1/1", 3, "F"), ("10/10", 3, "H"), ("10/10", 5, "H")],
}


@pytest.mark.parametrize("panel, size_class", [("figure10a", "small"), ("figure10b", "large")])
def test_figure10_request_parallelism(panel, size_class,
                                      benchmark, scenario_cache, output_dir):
    results = {}
    for churn, alpha, base_name in CURVES[size_class]:
        base = get_scenario(base_name)
        for k in PAPER_BUCKET_SIZES:
            scenario = base.with_overrides(bucket_size=k, alpha=alpha)
            results[(churn, alpha, k)] = scenario_cache.run(scenario)

    rows = figure10_rows(results)
    content = format_figure10(
        results,
        f"{panel} (reproduced): mean of the minimum connectivity during churn, "
        f"{size_class} network",
    )
    write_artefact(output_dir, f"{panel}_alpha.txt", content)

    by_key = {(row["churn"], row["alpha"], row["k"]): row["mean_min_connectivity"]
              for row in rows}

    # 1) Connectivity grows with the bucket size for every curve family.
    for churn, alpha, _base in CURVES[size_class]:
        assert by_key[(churn, alpha, 30)] >= by_key[(churn, alpha, 10)]
        assert by_key[(churn, alpha, 20)] >= by_key[(churn, alpha, 5)]

    # 2) 1/1 churn does not yield worse connectivity than 10/10 churn
    #    (paper: "scenarios with churn 1/1 show a higher connectivity").
    for k in (10, 20, 30):
        assert by_key[("1/1", 3, k)] >= by_key[("10/10", 3, k)] * 0.9

    # 3) Raising alpha from 3 to 5 under 10/10 churn does not improve the
    #    small-k connectivity (paper: "very negative impact ... for the
    #    smaller k values").
    assert by_key[("10/10", 5, 5)] <= by_key[("10/10", 3, 5)] + 1.0

    benchmark_final_snapshot_analysis(
        benchmark, scenario_cache, results[("10/10", 5, 20)]
    )
