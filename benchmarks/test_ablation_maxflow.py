"""Ablation — max-flow algorithm choice.

DESIGN.md calls out the max-flow solver as a substitution (pure-Python
push-relabel instead of the C HIPR binary) and as an internal design choice
(Dinic is the default engine of the connectivity search because it supports
cutoffs).  This benchmark times all three solvers on the same snapshot's
Even-transformed connectivity graph and checks they agree, quantifying the
cost of the choice.
"""

import pytest

from benchmarks.conftest import write_artefact
from repro.analysis.figures import format_table
from repro.core.vertex_connectivity import PairFlowEvaluator, lowest_in_degree_vertices, lowest_out_degree_vertices
from repro.experiments.scenarios import get_scenario

ALGORITHMS = ("dinic", "push_relabel", "edmonds_karp")


@pytest.fixture(scope="module")
def snapshot_graph(scenario_cache):
    """Connectivity graph of the final snapshot of Simulation E (k=20)."""
    result = scenario_cache.run(get_scenario("E").with_overrides(bucket_size=20))
    return result.snapshots[-1].to_connectivity_graph()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_ablation_maxflow_algorithm(algorithm, snapshot_graph, benchmark, output_dir):
    sources = lowest_out_degree_vertices(snapshot_graph, 3)
    targets = lowest_in_degree_vertices(snapshot_graph, 8)

    def run():
        evaluator = PairFlowEvaluator(snapshot_graph, algorithm=algorithm)
        minimum, pairs = evaluator.minimum_over(sources, targets, use_cutoff=False)
        return minimum, pairs

    minimum, pairs = benchmark.pedantic(run, rounds=1, iterations=1)

    # All solvers must find the same sampled minimum as the default engine.
    reference_evaluator = PairFlowEvaluator(snapshot_graph, algorithm="dinic")
    reference, _ = reference_evaluator.minimum_over(sources, targets, use_cutoff=False)
    assert minimum == reference

    content = format_table(
        ["algorithm", "sampled min connectivity", "pairs evaluated"],
        [[algorithm, minimum, pairs]],
    )
    write_artefact(output_dir, f"ablation_maxflow_{algorithm}.txt",
                   f"Max-flow algorithm ablation ({algorithm})\n{content}")
