"""Figure 1 — Even's transformation example.

Reproduces the paper's worked example: the 9-vertex graph whose edge max
flow from ``a`` to ``i`` is 3 while the vertex connectivity is 1, and shows
that the max flow on the transformed graph equals the vertex connectivity.
The benchmark measures the transformation + max-flow pipeline.
"""

from benchmarks.conftest import write_artefact
from repro.analysis.figures import format_table
from repro.graph.generators import figure1_example_graph
from repro.graph.maxflow import max_flow
from repro.graph.transform.even_transform import even_transform


def _figure1_pipeline():
    graph = figure1_example_graph()
    original_flow = max_flow(graph, "a", "i").as_int()
    transform = even_transform(graph)
    source, target = transform.flow_endpoints("a", "i")
    transformed_flow = max_flow(transform.graph, source, target).as_int()
    return graph, transform, original_flow, transformed_flow


def test_figure1_even_transform(benchmark, output_dir):
    graph, transform, original_flow, transformed_flow = benchmark(_figure1_pipeline)

    # Paper: max flow 3 on D, vertex connectivity kappa(a, i) = 1 on D'.
    assert original_flow == 3
    assert transformed_flow == 1
    # Structural claims of Section 4.3: 2n vertices, m + n edges.
    n = graph.number_of_vertices()
    m = graph.number_of_edges()
    assert transform.graph.number_of_vertices() == 2 * n
    assert transform.graph.number_of_edges() == m + n

    content = (
        "Figure 1 (reproduced): Even transformation example\n"
        + format_table(
            ["quantity", "paper", "measured"],
            [
                ["max flow a -> i on D", 3, original_flow],
                ["kappa(a, i) = max flow a'' -> i' on D'", 1, transformed_flow],
                ["vertices of D'", 2 * n, transform.graph.number_of_vertices()],
                ["edges of D'", m + n, transform.graph.number_of_edges()],
            ],
        )
    )
    write_artefact(output_dir, "figure1_even_transform.txt", content)
