"""Figure 11 — Simulation I: staleness limit s ∈ {1, 5} without message loss.

Paper observations reproduced: with 1/1 churn the two staleness limits are
essentially indistinguishable; with 10/10 churn the *average* connectivity
for s=5 falls below that of s=1 once churn sets in (stale entries linger in
the size-limited routing tables and keep new contacts out), while the
minimum connectivity is much less affected.
"""

import pytest

from benchmarks.conftest import benchmark_final_snapshot_analysis, write_artefact
from repro.experiments.report import format_figure
from repro.experiments.scenarios import PAPER_STALENESS_VALUES, get_scenario


@pytest.mark.parametrize("panel, churn", [("figure11a", "1/1"), ("figure11b", "10/10")])
def test_figure11_staleness_without_loss(panel, churn,
                                         benchmark, scenario_cache, output_dir):
    base = get_scenario("I").with_overrides(churn=churn)
    results = {
        s: scenario_cache.run(base.with_overrides(staleness_limit=s))
        for s in PAPER_STALENESS_VALUES
    }

    content = format_figure(
        results,
        f"{panel} (reproduced): Simulation I, large network, churn {churn}, "
        "no message loss, k=20, s in {1, 5}",
    )
    write_artefact(output_dir, f"{panel}_staleness_churn_{churn.replace('/', '_')}.txt", content)

    mean_avg = {s: results[s].churn_mean_average() for s in PAPER_STALENESS_VALUES}
    mean_min = {s: results[s].churn_mean_minimum() for s in PAPER_STALENESS_VALUES}

    if churn == "10/10":
        # Stronger churn: the greater staleness limit drags the average
        # connectivity down relative to s=1.
        assert mean_avg[5] <= mean_avg[1] * 1.05
    else:
        # 1/1 churn: no significant difference between the limits
        # (within 35 % of each other at bench scale).
        ratio = mean_avg[5] / max(mean_avg[1], 1e-9)
        assert 0.65 <= ratio <= 1.35

    # The minimum connectivity stays in the same ballpark for both limits
    # (the paper notes it is surprisingly unaffected).
    assert abs(mean_min[1] - mean_min[5]) <= max(mean_min[1], mean_min[5]) * 0.6 + 2

    benchmark_final_snapshot_analysis(benchmark, scenario_cache, results[5])
