"""Table 2 — means and relative variance of the minimum connectivity.

Reproduces the aggregation of Simulations E–H: for every (network size,
bucket size, churn scenario) combination, the mean and the relative
variance (variance / mean) of the minimum connectivity during the churn
phase.  The paper's headline reading of the table — increasing churn from
1/1 to 10/10 increases the relative variance — is asserted in aggregate.
"""

from benchmarks.conftest import write_artefact
from repro.analysis.statistics import relative_variance
from repro.experiments.report import format_table2, table2_rows
from repro.experiments.scenarios import PAPER_BUCKET_SIZES, get_scenario


def test_table2_churn_relative_variance(benchmark, scenario_cache, output_dir):
    results = []
    for scenario_name in ("E", "F", "G", "H"):
        base = get_scenario(scenario_name)
        for k in PAPER_BUCKET_SIZES:
            results.append(scenario_cache.run(base.with_overrides(bucket_size=k)))

    rows = benchmark.pedantic(lambda: table2_rows(results), rounds=1, iterations=1)
    content = "Table 2 (reproduced): mean and RV of min connectivity during churn\n" + \
        format_table2(results)
    write_artefact(output_dir, "table2_churn_rv.txt", content)

    # --- qualitative shape assertions -------------------------------------
    by_key = {(row["size_class"], row["k"], row["churn"]): row for row in rows}

    # Mean minimum connectivity grows with the bucket size for both churn
    # levels and both network sizes.
    for size_class in ("small", "large"):
        for churn in ("1/1", "10/10"):
            assert by_key[(size_class, 30, churn)]["mean"] >= by_key[(size_class, 10, churn)]["mean"]
            assert by_key[(size_class, 20, churn)]["mean"] >= by_key[(size_class, 5, churn)]["mean"]

    # Paper: "the increase in churn from 1/1 to 10/10 leads to an increased
    # RV in all simulations" (except all-zero rows).  At bench scale we
    # assert the aggregate version: the average RV over all (size, k) cells
    # is higher under 10/10 churn, and the mean connectivity does not
    # improve with stronger churn in aggregate.
    rv_1_1 = [by_key[(s, k, "1/1")]["rv"] for s in ("small", "large") for k in PAPER_BUCKET_SIZES]
    rv_10_10 = [by_key[(s, k, "10/10")]["rv"] for s in ("small", "large") for k in PAPER_BUCKET_SIZES]
    assert sum(rv_10_10) / len(rv_10_10) >= sum(rv_1_1) / len(rv_1_1) * 0.9
    mean_1_1 = [by_key[(s, k, "1/1")]["mean"] for s in ("small", "large") for k in PAPER_BUCKET_SIZES]
    mean_10_10 = [by_key[(s, k, "10/10")]["mean"] for s in ("small", "large") for k in PAPER_BUCKET_SIZES]
    assert sum(mean_10_10) <= sum(mean_1_1) * 1.1

    # Sanity: the RV definition used in the table matches the statistics module.
    sample = results[0]
    start, end = sample.phases.churn_window()
    values = sample.series.window(start, end + 1e-9).minimum_series()
    assert abs(relative_variance(values) - sample.churn_relative_variance_minimum()) < 1e-9
