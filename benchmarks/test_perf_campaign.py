"""Perf trajectory benchmark for the campaign execution backend.

Measures **tasks/sec of a smoke-profile sweep** — the paper's production
workload is sweep throughput, not single-run speed — and writes
``benchmarks/output/BENCH_campaign.json`` so future scaling PRs have a
trend line for the experiment-dispatch layer, like
``BENCH_connectivity.json`` does for the pair-flow hot path and
``BENCH_simulator.json`` for the event loop.

Three configurations over the same sweep (a bucket-size sweep of
scenario A on the ``smoke`` profile):

``serial_inprocess``
    :class:`SerialExecutor`: every task in the calling process.  The
    floor any dispatch overhead is measured against.

``per_task_pools``
    The pre-batching dispatch shape: one ``Campaign.run_one`` call per
    task against a 4-worker :class:`ParallelExecutor` — exactly how the
    benchmark harness's ``ScenarioCache`` drove its simulations — which
    creates (and tears down) a worker pool *per task*, so every task
    pays interpreter start-up and ``repro`` imports again.

``persistent_batched``
    The persistent-worker backend: one ``Campaign(batch="auto")`` whose
    :class:`TaskSession` pins a single 4-worker pool for the whole
    sweep and packs tasks into near-equal-cost worker batches.  The
    pool spin-up *is* included in the timing — it is paid once.

A fourth, ``distributed``, section records the same sweep through a
loopback :class:`DistributedExecutor` fleet (coordinator + spawned
``repro worker`` TCP processes): not a speed contender on one machine —
frames, pickling and heartbeats price in the network seam — but the
trend line that keeps the wire overhead honest, and the digest assert
proves the backend is identity-free like every other configuration.

All parallel configurations use the ``spawn`` start method, for two
reasons: it is the portable production default (the only method on
Windows, the default on macOS, and the direction CPython is moving on
Linux — ``fork`` is unsafe once threads exist), and it is the regime the
ROADMAP item targets ("batch several independent simulations per worker
process — amortise interpreter startup in sweeps").  Under ``fork``
workers inherit the parent's imported modules nearly for free, so the
same comparison narrows to pool-construction and per-task IPC overhead;
a ``fork`` section is recorded alongside for honesty.  The start method,
like batching itself, is identity-free: the configurations must agree on
every trajectory digest (asserted below).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List

from benchmarks.conftest import BENCH_SEED, attach_obs_metrics, write_artefact
from repro.experiments.persistence import trajectory_digest
from repro.experiments.scenarios import get_scenario
from repro.runtime import (
    BATCH_OFF,
    Campaign,
    DistributedExecutor,
    ExperimentTask,
    ParallelExecutor,
    SerialExecutor,
)

#: Swept bucket sizes: 20 smoke-profile tasks — enough that the one-time
#: pool spin-up of the persistent configuration amortises out (it is
#: included in its timing) while the whole benchmark stays under ~20s.
SWEEP_BUCKET_SIZES = (
    2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40,
)
#: Worker count of the pooled configurations (the ISSUE's reference run).
PARALLEL_JOBS = 4
#: Start method of the headline comparison (see module docstring).
START_METHOD = "spawn"


def sweep_tasks() -> List[ExperimentTask]:
    base = get_scenario("A")
    return [
        ExperimentTask.create(
            scenario=base.with_overrides(bucket_size=k),
            profile="smoke",
            seed=BENCH_SEED,
        )
        for k in SWEEP_BUCKET_SIZES
    ]


def _timed(fn) -> Dict[str, object]:
    started = time.perf_counter()
    results = fn()
    elapsed = time.perf_counter() - started
    return {
        "results": results,
        "seconds": round(elapsed, 6),
        "tasks_per_sec": round(len(results) / elapsed, 3),
    }


def run_serial(tasks: List[ExperimentTask]) -> Dict[str, object]:
    # batch=BATCH_OFF pins the pre-batching dispatch path: the baseline
    # configurations must stay per-task even under REPRO_CAMPAIGN_BATCH
    # (otherwise the headline would compare the new backend to itself).
    campaign = Campaign(executor=SerialExecutor(), batch=BATCH_OFF)
    return _timed(lambda: campaign.run(tasks))


def run_per_task_pools(
    tasks: List[ExperimentTask], start_method: str
) -> Dict[str, object]:
    campaign = Campaign(
        executor=ParallelExecutor(
            jobs=PARALLEL_JOBS, start_method=start_method
        ),
        batch=BATCH_OFF,
    )
    return _timed(lambda: [campaign.run_one(task) for task in tasks])


def run_persistent_batched(
    tasks: List[ExperimentTask], start_method: str
) -> Dict[str, object]:
    def run() -> List:
        with Campaign(
            executor=ParallelExecutor(
                jobs=PARALLEL_JOBS, start_method=start_method
            ),
            batch="auto",
        ) as campaign:
            return campaign.run(tasks)

    return _timed(run)


def run_distributed(tasks: List[ExperimentTask]) -> Dict[str, object]:
    def run() -> List:
        with Campaign(
            executor=DistributedExecutor(workers=PARALLEL_JOBS),
            batch="auto",
        ) as campaign:
            return campaign.run(tasks)

    return _timed(run)


def _strip_results(record: Dict[str, object]) -> Dict[str, object]:
    return {key: value for key, value in record.items() if key != "results"}


def test_perf_campaign_trajectory(output_dir):
    tasks = sweep_tasks()

    serial = run_serial(tasks)
    reference_digests = [
        trajectory_digest(result) for result in serial["results"]
    ]

    configs: Dict[str, Dict[str, object]] = {"serial_inprocess": serial}
    fork_section: Dict[str, Dict[str, object]] = {}
    for method, section in ((START_METHOD, configs), ("fork", fork_section)):
        section[f"per_task_pools{PARALLEL_JOBS}"] = run_per_task_pools(
            tasks, method
        )
        section[f"persistent_batched{PARALLEL_JOBS}"] = run_persistent_batched(
            tasks, method
        )

    distributed = run_distributed(tasks)

    # Batching, pooling, the start method and the executor backend are
    # identity-free: every configuration must reproduce the serial
    # trajectories bit for bit, in submission order.
    for section in (configs, fork_section, {"distributed": distributed}):
        for name, record in section.items():
            digests = [
                trajectory_digest(result) for result in record["results"]
            ]
            assert digests == reference_digests, f"{name} diverged"

    per_task_key = f"per_task_pools{PARALLEL_JOBS}"
    batched_key = f"persistent_batched{PARALLEL_JOBS}"

    def speedup(section, config, reference):
        return round(
            section[config]["tasks_per_sec"]
            / section[reference]["tasks_per_sec"],
            3,
        )

    headline = speedup(configs, batched_key, per_task_key)
    document = {
        "schema": 1,
        "created_unix": round(time.time(), 3),
        "sweep": {
            "scenario": "A",
            "profile": "smoke",
            "seed": BENCH_SEED,
            "bucket_sizes": list(SWEEP_BUCKET_SIZES),
            "tasks": len(tasks),
        },
        "parallel_jobs": PARALLEL_JOBS,
        "start_method": START_METHOD,
        "configs": {
            name: _strip_results(record) for name, record in configs.items()
        },
        "fork_configs": {
            name: _strip_results(record)
            for name, record in fork_section.items()
        },
        "distributed": {
            "workers": PARALLEL_JOBS,
            "transport": "loopback TCP frames (spawned repro workers)",
            **_strip_results(distributed),
            "vs_persistent_batched": round(
                distributed["tasks_per_sec"]
                / configs[f"persistent_batched{PARALLEL_JOBS}"][
                    "tasks_per_sec"
                ],
                3,
            ),
        },
        "speedups": {
            f"{batched_key}_vs_{per_task_key}": headline,
            f"{batched_key}_vs_serial": speedup(
                configs, batched_key, "serial_inprocess"
            ),
            f"{batched_key}_vs_{per_task_key}_fork": round(
                fork_section[batched_key]["tasks_per_sec"]
                / fork_section[per_task_key]["tasks_per_sec"],
                3,
            ),
        },
        "headline": {
            "description": (
                f"tasks/sec of a {len(tasks)}-task smoke sweep, persistent "
                f"batched {PARALLEL_JOBS}-worker pool vs per-task pools "
                f"({START_METHOD} start method)"
            ),
            "speedup": headline,
        },
        "results_bit_identical": True,
    }

    path = output_dir / "BENCH_campaign.json"
    path.write_text(
        json.dumps(attach_obs_metrics(document), indent=2) + "\n",
        encoding="utf-8",
    )

    lines = [f"{'config':<24} {'seconds':>10} {'tasks/sec':>10}"]
    for name, record in configs.items():
        lines.append(
            f"{name:<24} {record['seconds']:>10} {record['tasks_per_sec']:>10}"
        )
    for name, record in fork_section.items():
        lines.append(
            f"{name + ' (fork)':<24} {record['seconds']:>10} "
            f"{record['tasks_per_sec']:>10}"
        )
    lines.append(
        f"{'distributed' + str(PARALLEL_JOBS):<24} "
        f"{distributed['seconds']:>10} {distributed['tasks_per_sec']:>10}"
    )
    lines.append(
        f"headline speedup ({batched_key} vs {per_task_key}, "
        f"{START_METHOD}): {headline}x"
    )
    write_artefact(output_dir, "BENCH_campaign.txt", "\n".join(lines))

    # Tripwire, not the headline: the committed JSON records the real
    # ratio (>= 1.5x on the maintainer container, more on multi-core
    # hosts where the persistent pool adds true parallelism).  The
    # in-test floor is looser because single-shot wall-clock ratios on a
    # loaded shared host jitter by tens of percent — like the
    # connectivity benchmark, the trend line is the record and the
    # assert only catches the backend losing its advantage outright.
    assert headline >= 1.2, (
        f"persistent batched pool only {headline}x over per-task pools"
    )
